"""ShareBackup physical-network tests: wiring, inventory, failover mechanics."""

import pytest

from repro.core import ShareBackupNetwork, cs_name
from repro.core.failure_group import GroupLayer


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShareBackupNetwork(5)
        with pytest.raises(ValueError):
            ShareBackupNetwork(2)
        with pytest.raises(ValueError):
            ShareBackupNetwork(6, n=0)

    def test_circuit_switch_count(self, sb6):
        # 3 layers x k pods x k/2 per layer = 1.5 k^2
        assert sb6.num_circuit_switches == 3 * 6 * 3

    def test_backup_count(self, sb6n2):
        # 5k/2 groups x n
        assert sb6n2.num_backup_switches == 15 * 2

    def test_failure_group_count(self, sb6):
        # 2 per pod + k/2 core groups = 5k/2
        assert len(sb6.groups) == 15

    def test_circuit_port_sizing(self, sb6n2):
        # per-side ports = k/2 + n + 2
        assert sb6n2.circuit_ports_per_side == 3 + 2 + 2
        cs = sb6n2.circuit_switches[cs_name(1, 0, 0)]
        assert cs.ports_per_side == 7

    def test_core_groups_by_modulo(self, sb6):
        g = sb6.groups["FG.core.1"]
        assert g.logical_slots == ("C.1", "C.4", "C.7")
        assert g.layer is GroupLayer.CORE

    def test_edge_group_membership(self, sb6):
        g = sb6.group_of("E.2.1")
        assert g.group_id == "FG.edge.2"
        assert set(g.logical_slots) == {"E.2.0", "E.2.1", "E.2.2"}

    def test_logical_is_canonical_fattree(self, sb6):
        from repro.topology import validate_fattree

        validate_fattree(sb6.logical)
        assert sb6.logical.hosts_per_edge == 3

    def test_side_rings_closed(self, sb6):
        """Each pod-layer's circuit switches form a closed side-port ring."""
        for layer in (1, 2, 3):
            start = cs_name(layer, 0, 0)
            seen = [start]
            current = start
            for _ in range(sb6.half):
                cable = sb6.circuit_switches[current].cable(("ds", 1))
                assert cable is not None and cable[0] == "cs"
                current = cable[1][0]
                seen.append(current)
            assert current == start  # closed ring
            assert len(set(seen)) == sb6.half

    def test_backup_ports_initially_dark(self, sb6):
        """Paper: 'the ports to backup switches are unconnected internally'."""
        for group_id in sb6.groups:
            assert sb6.spare_ports_dark(group_id)


class TestEquivalence:
    def test_initial_equivalence(self, sb6):
        sb6.verify_fattree_equivalence()

    def test_equivalence_is_sensitive(self, sb6):
        """The checker actually detects drift (guard against vacuous pass)."""
        cs = sb6.circuit_switches[cs_name(1, 0, 0)]
        cs.disconnect(("d", 0))
        with pytest.raises(AssertionError):
            sb6.verify_fattree_equivalence()

    def test_physical_neighbor_host_to_edge(self, sb6):
        assert sb6.physical_neighbor("H.0.1.2", ("nic", 0)) == ("E.0.1", ("host", 2))

    def test_physical_neighbor_edge_to_agg_rotation(self, sb6):
        # CS.2.p.j connects edge m to agg (m+j) mod h
        got = sb6.physical_neighbor("E.0.1", ("up", 2))
        assert got == ("A.0.0", ("down", 2))

    def test_physical_neighbor_agg_to_core(self, sb6):
        # straight-through: agg a's up-if j reaches core a*h + j
        got = sb6.physical_neighbor("A.2.1", ("up", 2))
        assert got == ("C.5", ("pod", 2))

    def test_dark_spare_has_no_neighbor(self, sb6):
        assert sb6.physical_neighbor("BE.0.0", ("host", 0)) is None


class TestFailover:
    @pytest.mark.parametrize(
        "logical,expected_cs",
        [("E.1.0", 6), ("A.1.0", 6), ("C.4", 6)],  # k=6: 2x3, 2x3, k=6
    )
    def test_touch_counts(self, sb6, logical, expected_cs):
        group = sb6.group_of(logical)
        spare = group.allocate_spare()
        touched, latency = sb6.failover(logical, spare)
        assert touched == expected_cs
        assert latency == pytest.approx(70e-9)
        sb6.verify_fattree_equivalence()

    def test_spare_inherits_exact_connectivity(self, sb6):
        group = sb6.group_of("E.2.1")
        spare = group.allocate_spare()
        before = {
            iface: sb6.physical_neighbor("E.2.1", iface)
            for iface in [("host", j) for j in range(3)] + [("up", j) for j in range(3)]
        }
        sb6.failover("E.2.1", spare)
        after = {
            iface: sb6.physical_neighbor(spare, iface) for iface in before
        }
        assert before == after

    def test_failed_switch_goes_dark(self, sb6):
        group = sb6.group_of("A.0.0")
        spare = group.allocate_spare()
        sb6.failover("A.0.0", spare)
        for j in range(3):
            assert sb6.physical_neighbor("A.0.0", ("down", j)) is None
            assert sb6.physical_neighbor("A.0.0", ("up", j)) is None

    def test_two_failovers_same_group(self, sb6n2):
        group = sb6n2.group_of("E.0.0")
        sb6n2.failover("E.0.0", group.allocate_spare())
        sb6n2.failover("E.0.1", group.allocate_spare())
        sb6n2.verify_fattree_equivalence()
        group.validate()

    def test_failovers_across_all_groups(self, sb6):
        """One failover in every failure group simultaneously (n=1 each)."""
        for group_id in sorted(sb6.groups):
            group = sb6.groups[group_id]
            victim = group.logical_slots[0]
            sb6.failover(victim, group.allocate_spare())
        sb6.verify_fattree_equivalence()
        for group in sb6.groups.values():
            group.validate()

    def test_serving_switch_tracking(self, sb6):
        assert sb6.serving_switch("C.0") == "C.0"
        group = sb6.group_of("C.0")
        spare = group.allocate_spare()
        sb6.failover("C.0", spare)
        assert sb6.serving_switch("C.0") == spare
