"""Tests for :mod:`repro.chaos` — control-plane fault injection.

The acceptance scenario from the issue is pinned here: a seeded
campaign combining backup-pool exhaustion, a stuck circuit switch, and
a controller-replica crash completes without
:class:`HumanInterventionRequired`, ends with all traffic routed
(degraded flows absorbed by global rerouting), and the same seed
reproduces byte-identical campaign journals across two runs.
"""

import json

import pytest

from repro.chaos import (
    FAULT_KINDS,
    ChaosCampaignConfig,
    ChaosFault,
    ChaosHarness,
    ChaosScenarioConfig,
    FaultSchedule,
    ScenarioOutcome,
    generate_schedule,
    run_chaos_campaign,
    run_scenario,
)
from repro.cli import main
from repro.runner import NullCache, SweepRunner

SMALL = dict(k=6, n=1, duration=2.0, num_coflows=6)


def small_scenario(seed=0, profile="mixed"):
    return ChaosScenarioConfig(seed=seed, profile=profile, **SMALL)


# ----------------------------------------------------------------------
# fault vocabulary
# ----------------------------------------------------------------------


class TestChaosFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(1.0, "meteor-strike", "C.0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(-1.0, "pool-drain", "FG.agg.0")

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(1.0, "pool-drain", "FG.agg.0", count=0)

    def test_dict_roundtrip(self):
        fault = ChaosFault(0.5, "cs-reboot", "CS.2.0.0", duration=0.3)
        assert ChaosFault.from_dict(fault.to_dict()) == fault
        assert json.loads(json.dumps(fault.to_dict())) == fault.to_dict()


class TestFaultSchedule:
    def test_faults_sorted_by_time(self):
        schedule = FaultSchedule(
            seed=1,
            faults=(
                ChaosFault(2.0, "pool-drain", "FG.agg.0"),
                ChaosFault(0.5, "controller-crash", "primary"),
            ),
        )
        assert [f.time for f in schedule.faults] == [0.5, 2.0]

    def test_dict_roundtrip(self):
        schedule = generate_schedule(6, 1, seed=3)
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


class TestGenerateSchedule:
    def test_same_seed_same_schedule(self):
        assert generate_schedule(6, 1, seed=5) == generate_schedule(6, 1, seed=5)

    def test_different_seeds_differ(self):
        schedules = {generate_schedule(6, 1, seed=s) for s in range(8)}
        assert len(schedules) > 1

    def test_control_plane_profile_covers_every_kind(self):
        schedule = generate_schedule(6, 1, seed=0, profile="control-plane")
        assert set(schedule.kinds()) == set(FAULT_KINDS)

    def test_recovery_storm_is_silent_failures_only(self):
        schedule = generate_schedule(6, 1, seed=0, profile="recovery-storm")
        assert set(schedule.kinds()) == {"silent-node-failure"}
        assert len(schedule.faults) >= 2

    def test_silent_victims_never_edge_switches(self):
        for seed in range(6):
            schedule = generate_schedule(6, 1, seed=seed, profile="mixed")
            for fault in schedule.faults:
                if fault.kind == "silent-node-failure":
                    assert not fault.target.startswith("E.")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate_schedule(6, 1, seed=0, profile="volcanic")


# ----------------------------------------------------------------------
# scenario harness
# ----------------------------------------------------------------------


class TestScenarioOutcome:
    def test_dict_roundtrip(self):
        outcome = run_scenario(small_scenario(seed=2, profile="recovery-storm"))
        assert ScenarioOutcome.from_dict(outcome.to_dict()) == outcome
        # JSON-safe end to end (it rides a Task payload / cache entry).
        assert (
            ScenarioOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
            == outcome
        )


class TestAcceptanceScenario:
    def test_exhaustion_stuck_cs_and_controller_crash_survive(self):
        """The issue's acceptance scenario: pool exhaustion + a stuck
        circuit switch + a controller-replica crash, no
        HumanInterventionRequired, and all traffic routed at the end."""
        config = small_scenario(seed=11)
        harness = ChaosHarness(
            config,
            schedule=FaultSchedule(
                seed=11,
                faults=(
                    # Drain FG.agg.0's only spare, then kill two of its
                    # slots: the first eats nothing (pool empty), both
                    # must degrade to rerouting.
                    ChaosFault(0.05, "pool-drain", "FG.agg.0"),
                    ChaosFault(0.3, "silent-node-failure", "A.0.0"),
                    ChaosFault(0.6, "silent-node-failure", "A.0.1"),
                    # Jam the crosspoints of both spares on CS.2.1.0
                    # (edge and agg of pod 1) and kill an agg slot there:
                    # assign-backup fails, reroute absorbs it.
                    ChaosFault(0.1, "stuck-crosspoint", "CS.2.1.0", count=2),
                    ChaosFault(0.5, "silent-node-failure", "A.1.0"),
                    # And crash the primary controller mid-recovery.
                    ChaosFault(0.4, "controller-crash", "primary"),
                ),
            ),
        )
        outcome = harness.run()
        assert outcome.survived  # no HumanInterventionRequired escaped
        assert outcome.all_traffic_routed
        assert outcome.rerouted >= 2  # exhausted slots went to rerouting
        assert outcome.elections == 2  # initial election + crash failover
        assert harness.sim.router.degraded
        degr = [d["outcome"] for d in outcome.degradations]
        assert "rerouted" in degr

    def test_stuck_crosspoint_jams_failover_through_that_switch(self):
        config = small_scenario(seed=4)
        harness = ChaosHarness(
            config,
            schedule=FaultSchedule(
                seed=4,
                faults=(
                    # count=2: CS.2.0.0 carries the spares of both
                    # FG.edge.0 and FG.agg.0 — jam both.
                    ChaosFault(0.05, "stuck-crosspoint", "CS.2.0.0", count=2),
                    ChaosFault(0.3, "silent-node-failure", "A.0.0"),
                ),
            ),
        )
        outcome = harness.run()
        assert outcome.survived
        assert outcome.all_traffic_routed
        # The jammed spare was tried and failed; audit trail says why.
        failed = [
            step
            for d in outcome.degradations
            for step in d["steps"]
            if step["outcome"] == "failed"
        ]
        assert failed and "stuck" in failed[0]["detail"]

    def test_transient_reconfig_is_absorbed_by_retries(self):
        config = small_scenario(seed=6)
        harness = ChaosHarness(
            config,
            schedule=FaultSchedule(
                seed=6,
                faults=(
                    ChaosFault(
                        0.05, "transient-reconfig", "CS.2.0.0", count=1
                    ),
                    ChaosFault(0.3, "silent-node-failure", "A.0.0"),
                ),
            ),
        )
        outcome = harness.run()
        assert outcome.survived
        assert outcome.recovered >= 1  # the backup still took over
        assert outcome.retries >= 1  # ... after a retried reconfiguration

    def test_cs_reboot_restores_current_wiring(self):
        config = small_scenario(seed=9)
        harness = ChaosHarness(
            config,
            schedule=FaultSchedule(
                seed=9,
                faults=(
                    ChaosFault(0.3, "silent-node-failure", "A.0.0"),
                    ChaosFault(1.0, "cs-reboot", "CS.2.0.0", duration=0.2),
                ),
            ),
        )
        outcome = harness.run()
        assert outcome.survived
        cs = harness.net.circuit_switches["CS.2.0.0"]
        assert cs.up and cs.mapping()  # rebooted and re-pushed
        harness.net.verify_fattree_equivalence()


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------


def small_campaign(**overrides):
    base = dict(
        k=6, n=1, scenarios=2, seed=7, duration=2.0,
        num_coflows=6, profile="control-plane",
    )
    base.update(overrides)
    return ChaosCampaignConfig(**base)


def serial_runner():
    return SweepRunner(jobs=1, cache=NullCache())


class TestCampaign:
    def test_scenario_seeds_are_derived_and_distinct(self):
        config = small_campaign(scenarios=4)
        seeds = [config.scenario_config(i).seed for i in range(4)]
        assert len(set(seeds)) == 4

    def test_campaign_aggregates_scenarios(self):
        outcome = run_chaos_campaign(small_campaign(), runner=serial_runner())
        assert len(outcome.outcomes) == 2
        stats = outcome.stats
        assert stats.scenarios == 2
        assert stats.survived == 2
        assert stats.human_interventions == 0
        assert stats.traffic_routed == 2
        assert stats.survival_rate == 1.0

    def test_journal_byte_identical_across_runs(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_chaos_campaign(
            small_campaign(), runner=serial_runner(), journal_path=a
        )
        run_chaos_campaign(
            small_campaign(), runner=serial_runner(), journal_path=b
        )
        assert a.read_bytes() == b.read_bytes()
        records = [json.loads(line) for line in a.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert events[0] == "campaign_start"
        assert events[-1] == "campaign_finish"
        assert events[1:-1] == ["campaign_scenario"] * 2
        # Deterministic counter clock, not wall time.
        assert [r["ts"] for r in records] == [0.0, 1.0, 2.0, 3.0]

    def test_different_seed_changes_journal(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_chaos_campaign(
            small_campaign(), runner=serial_runner(), journal_path=a
        )
        run_chaos_campaign(
            small_campaign(seed=8), runner=serial_runner(), journal_path=b
        )
        assert a.read_bytes() != b.read_bytes()

    def test_zero_scenarios_rejected(self):
        with pytest.raises(ValueError):
            small_campaign(scenarios=0)


class TestChaosCli:
    def test_smoke_exits_zero(self, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        exit_code = main(
            ["chaos", "--smoke", "--no-cache", "--jobs", "1",
             "--journal", str(journal)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "survived (no human intervention): 2/2" in out
        assert journal.exists()
