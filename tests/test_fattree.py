"""Unit tests for the fat-tree builder."""

import pytest

from repro.topology import FatTree, NodeKind, validate_fattree


class TestStructure:
    @pytest.mark.parametrize("k", [4, 6, 8, 10])
    def test_inventory(self, k):
        t = FatTree(k)
        half = k // 2
        summary = validate_fattree(t)
        assert summary["edges"] == k * half
        assert summary["aggs"] == k * half
        assert summary["cores"] == half * half
        assert summary["hosts"] == k * half * half

    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_link_count(self, k):
        # k^3/2 switch-switch+host links at 1:1 (hosts k^3/4, edge-agg k^2/2 * ... )
        t = FatTree(k)
        half = k // 2
        expected = (
            k * half * half  # host links
            + k * half * half  # edge-agg
            + k * half * half  # agg-core
        )
        assert len(t.links) == expected

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            FatTree(5)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            FatTree(0)

    def test_rejects_bad_hosts_per_edge(self):
        with pytest.raises(ValueError):
            FatTree(4, hosts_per_edge=0)

    def test_core_wiring_row_pattern(self, ft4):
        # agg i connects to cores i*half .. i*half+half-1
        assert sorted(n for n in ft4.neighbors("A.0.0") if n.startswith("C")) == [
            "C.0",
            "C.1",
        ]
        assert sorted(n for n in ft4.neighbors("A.0.1") if n.startswith("C")) == [
            "C.2",
            "C.3",
        ]

    def test_every_core_touches_every_pod_once(self, ft6):
        for c in ft6.core_switches():
            pods = sorted(ft6.nodes[n].pod for n in ft6.neighbors(c))
            assert pods == list(range(6))

    def test_edge_agg_mesh(self, ft6):
        for pod in range(6):
            for e in ft6.edge_switches(pod):
                aggs = {n for n in ft6.neighbors(e) if n.startswith("A")}
                assert aggs == set(ft6.agg_switches(pod))

    def test_addresses_assigned(self, ft4):
        assert str(ft4.nodes["E.1.0"].attrs["address"]) == "10.1.0.1"
        assert str(ft4.nodes["A.1.1"].attrs["address"]) == "10.1.3.1"
        assert str(ft4.nodes["H.1.0.1"].attrs["address"]) == "10.1.0.3"
        assert str(ft4.nodes["C.0"].attrs["address"]) == "10.4.1.1"


class TestAccessors:
    def test_edge_of_host(self, ft4):
        assert ft4.edge_of_host("H.2.1.0") == "E.2.1"

    def test_edge_of_host_rejects_switch(self, ft4):
        with pytest.raises(ValueError):
            ft4.edge_of_host("E.0.0")

    def test_rack_mapping_roundtrip(self, ft6):
        for rack in range(ft6.num_racks):
            edge = ft6.rack_name(rack)
            host = ft6.hosts_of_edge(ft6.nodes[edge].pod, ft6.nodes[edge].index)[0]
            assert ft6.rack_of(host) == rack

    def test_num_hosts(self):
        assert FatTree(4).num_hosts == 16
        assert FatTree(48).plan.k == 48 if False else True  # cheap guard
        assert FatTree(8).num_hosts == 128

    def test_all_host_names_complete(self, ft4):
        names = ft4.all_host_names()
        assert len(names) == 16
        assert len(set(names)) == 16
        assert all(ft4.nodes[n].kind is NodeKind.HOST for n in names)

    def test_summary_keys(self, ft4):
        s = ft4.summary()
        assert s["hosts"] == 16
        assert s["oversubscription"] == 1.0


class TestOversubscription:
    def test_ten_to_one(self):
        t = FatTree(16, hosts_per_edge=80)
        assert t.oversubscription == 10.0
        assert t.num_hosts == 128 * 80

    def test_validates_with_oversubscription(self):
        t = FatTree(4, hosts_per_edge=10)
        validate_fattree(t)

    def test_paper_scale_mapping(self):
        """The failure study maps a 150-rack trace onto k=16 (128 racks)."""
        t = FatTree(16, hosts_per_edge=80)
        assert t.num_racks == 128

    def test_oversubscribed_host_addresses_unique_within_rack(self):
        t = FatTree(4, hosts_per_edge=50)
        addrs = {str(t.nodes[h].attrs["address"]) for h in t.hosts_of_edge(0, 0)}
        assert len(addrs) == 50
