"""Live-impersonation tests: combined tables, TCAM sizing, port maps, and
the end-to-end forwarding-equivalence proof over the physical wiring."""

import pytest

from repro.core import (
    DEFAULT_TCAM_CAPACITY,
    ImpersonationTables,
    PhysicalForwarder,
    ShareBackupController,
    ShareBackupNetwork,
    agg_downlink_interface,
    combined_edge_entry_count,
    edge_uplink_interface,
)
from repro.core.switchmodel import ForwardingError
from repro.topology import FatTree


def build_tables(net: ShareBackupNetwork) -> dict:
    imp = ImpersonationTables(net.logical)
    tables = {}
    for pod in range(net.k):
        tables[f"FG.edge.{pod}"] = imp.combined_edge_table(pod)
        tables[f"FG.agg.{pod}"] = imp.agg_group_table(pod)
    core = imp.core_group_table()
    for j in range(net.half):
        tables[f"FG.core.{j}"] = core
    return tables


class TestCombinedTables:
    def test_edge_entry_count_formula(self):
        """§4.3: k/2 in-bound + k²/4 out-bound."""
        for k in (4, 6, 8):
            tree = FatTree(k)
            imp = ImpersonationTables(tree)
            assert imp.combined_edge_table(0).size == combined_edge_entry_count(k)

    def test_paper_k64_claim(self):
        assert combined_edge_entry_count(64) == 1056

    def test_fits_commodity_tcam_up_to_k64(self):
        tree = FatTree(64)
        imp = ImpersonationTables(tree)
        report = imp.tcam_report(DEFAULT_TCAM_CAPACITY)
        assert report["fits"]
        assert report["edge_group_entries"] == 1056

    def test_inbound_entries_deduplicate(self):
        tree = FatTree(6)
        imp = ImpersonationTables(tree)
        combined = imp.combined_edge_table(0)
        untagged = [e for e in combined.suffix_entries if e.vlan is None]
        assert len(untagged) == 3  # one per host position, shared

    def test_outbound_entries_per_vlan(self):
        tree = FatTree(6)
        imp = ImpersonationTables(tree)
        combined = imp.combined_edge_table(0)
        tagged = [e for e in combined.suffix_entries if e.vlan is not None]
        vlans = {e.vlan for e in tagged}
        assert len(tagged) == 9 and len(vlans) == 3

    def test_agg_and_core_tables_are_group_shared(self):
        tree = FatTree(6)
        imp = ImpersonationTables(tree)
        assert imp.agg_group_table(0).size == 3 + 1 + 3
        assert imp.core_group_table().size == 6


class TestPortMaps:
    def test_rotation_inverse_relation(self):
        half = 4
        for edge in range(half):
            for agg in range(half):
                j = edge_uplink_interface(edge, agg, half)
                assert agg_downlink_interface(agg, edge, half) == j

    def test_port_maps_match_physical_wiring(self, sb6):
        """The arithmetic port map must agree with actual circuit traversal."""
        half = sb6.half
        for pod in range(2):
            for e in range(half):
                for a in range(half):
                    j = edge_uplink_interface(e, a, half)
                    got = sb6.physical_neighbor(f"E.{pod}.{e}", ("up", j))
                    assert got is not None
                    dev, iface = got
                    assert dev == f"A.{pod}.{a}"
                    assert iface == ("down", agg_downlink_interface(a, e, half))


class TestForwardingEquivalence:
    def all_pairs_trails(self, net, fwd, sample):
        trails = {}
        for src, dst in sample:
            trails[(src, dst)] = fwd.send(src, dst)
        return trails

    def sample_pairs(self, net):
        hosts = net.logical.all_host_names()
        return [
            (hosts[0], hosts[1]),  # same rack
            (hosts[0], hosts[4]),  # same pod
            (hosts[0], hosts[-1]),  # inter-pod
            (hosts[7], hosts[20]),
            (hosts[11], hosts[3]),
        ]

    def test_forwarding_matches_before_and_after_node_failovers(self, sb6):
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        ctrl = ShareBackupController(sb6)
        pairs = self.sample_pairs(sb6)
        before = self.all_pairs_trails(sb6, fwd, pairs)

        for victim in ("E.0.0", "A.0.1", "C.4", "E.5.2"):
            ctrl.handle_node_failure(victim)
        after = self.all_pairs_trails(sb6, fwd, pairs)
        assert before == after  # identical logical trails: impersonation works

    def test_forwarding_after_cascaded_failover(self, sb6):
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        ctrl = ShareBackupController(sb6)
        pairs = self.sample_pairs(sb6)
        before = self.all_pairs_trails(sb6, fwd, pairs)
        ctrl.handle_node_failure("A.0.0")
        ctrl.repair("A.0.0")  # becomes the spare
        ctrl.handle_node_failure("A.0.1")  # served by repaired A.0.0 hardware
        assert sb6.serving_switch("A.0.1") == "A.0.0"
        after = self.all_pairs_trails(sb6, fwd, pairs)
        assert before == after

    def test_all_intra_pod_pairs_after_edge_failover(self, sb6):
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        ShareBackupController(sb6).handle_node_failure("E.0.1")
        hosts = [h for h in sb6.logical.all_host_names() if h.startswith("H.0.")]
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    assert fwd.send(src, dst)[-1] == dst

    def test_vlan_tagging_disabled_breaks_interpod(self, sb6):
        """Negative control: without host tagging the combined table would
        deliver in-rack instead of routing out — proving the VLAN scheme
        is load-bearing, not decorative."""
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        src, dst = "H.0.0.0", "H.3.0.0"
        with pytest.raises(ForwardingError):
            fwd.send(src, dst, vlan_tagging=False)

    def test_dead_serving_switch_detected(self, sb6):
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        sb6.physical_health["E.0.0"] = False  # dead but not failed-over
        with pytest.raises(ForwardingError):
            fwd.send("H.0.0.0", "H.3.0.0")

    def test_trail_lengths_canonical(self, sb6):
        tables = build_tables(sb6)
        fwd = PhysicalForwarder(sb6, tables)
        assert len(fwd.send("H.0.0.0", "H.0.0.1")) == 3
        assert len(fwd.send("H.0.0.0", "H.0.1.0")) == 5
        assert len(fwd.send("H.0.0.0", "H.5.1.0")) == 7
