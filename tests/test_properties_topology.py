"""Property-based tests over topology builders and ShareBackup failovers."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ShareBackupController, ShareBackupNetwork
from repro.routing import enumerate_paths
from repro.topology import F10Tree, FatTree, validate_fattree

even_k = st.integers(min_value=2, max_value=6).map(lambda i: 2 * i)  # 4..12


@given(even_k)
@settings(max_examples=10, deadline=None)
def test_fattree_always_valid(k):
    validate_fattree(FatTree(k))


@given(even_k)
@settings(max_examples=10, deadline=None)
def test_f10_always_valid(k):
    validate_fattree(F10Tree(k))


@given(even_k, st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_path_count_formula(k, salt):
    """Inter-pod path count is exactly (k/2)^2; intra-pod k/2."""
    tree = FatTree(k)
    half = k // 2
    inter = enumerate_paths(tree, "H.0.0.0", f"H.{k - 1}.0.0")
    assert len(inter) == half * half
    if half > 1:
        intra = enumerate_paths(tree, "H.0.0.0", "H.0.1.0")
        assert len(intra) == half


@given(
    st.integers(min_value=2, max_value=4).map(lambda i: 2 * i),  # k in {4,6,8}
    st.integers(min_value=1, max_value=2),  # n
    st.data(),
)
@settings(max_examples=15, deadline=None)
def test_random_failover_sequences_preserve_fattree(k, n, data):
    """Any legal sequence of failovers/repairs keeps the logical topology a
    perfect fat-tree and every group's pools consistent — the core
    soundness property of the whole architecture."""
    net = ShareBackupNetwork(k, n=n)
    ctrl = ShareBackupController(net)
    switches = net.logical.packet_switches(include_backup=False)
    steps = data.draw(st.integers(min_value=1, max_value=6))
    for _ in range(steps):
        victim = data.draw(st.sampled_from([s.name for s in switches]))
        group = net.group_of(victim)
        report = ctrl.handle_node_failure(victim)
        if not report.fully_recovered:
            # pool exhausted: repair something to keep going
            if group.offline:
                ctrl.repair(sorted(group.offline)[0])
            continue
        if data.draw(st.booleans()) and group.offline:
            ctrl.repair(sorted(group.offline)[0])
    net.verify_fattree_equivalence()
    for group in net.groups.values():
        group.validate()


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_failover_preserves_interface_semantics(data):
    """After any single failover, the spare's interfaces carry exactly what
    the failed switch's same-positioned interfaces carried."""
    net = ShareBackupNetwork(6, n=1)
    switches = [s.name for s in net.logical.packet_switches(include_backup=False)]
    victim = data.draw(st.sampled_from(switches))
    ifaces = [
        iface for (dev, iface) in net._device_cable if dev == victim
    ]
    before = {i: net.physical_neighbor(victim, i) for i in ifaces}
    group = net.group_of(victim)
    spare = group.allocate_spare()
    net.failover(victim, spare)
    after = {i: net.physical_neighbor(spare, i) for i in ifaces}
    assert before == after
