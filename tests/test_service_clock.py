"""Tests for :mod:`repro.service.clock` — the service time authority.

The virtual clock is what turns the chaos-replay A/B comparison into a
determinism equation, so its scheduling contract is pinned here: sleeps
wake in deadline order, ties break by issue order, `run_until` honours
sleeps issued *by* woken coroutines, and `run_all` drains freshly
spawned tasks (their first sleeps are not on the heap until the loop
has settled once).
"""

import asyncio

from repro.service.clock import VirtualClock, WallClock


def drive(coro):
    return asyncio.run(coro)


class TestVirtualClock:
    def test_starts_at_origin_and_never_reads_host_time(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.next_deadline() is None
        assert clock.pending_sleepers == 0

    def test_sleepers_wake_in_deadline_order(self):
        async def scenario():
            clock = VirtualClock()
            woke = []

            async def sleeper(name, delay):
                await clock.sleep(delay)
                woke.append((name, clock.now()))

            tasks = [
                asyncio.ensure_future(sleeper("late", 3.0)),
                asyncio.ensure_future(sleeper("early", 1.0)),
                asyncio.ensure_future(sleeper("mid", 2.0)),
            ]
            await clock.run_all(10.0)
            await asyncio.gather(*tasks)
            return woke

        woke = drive(scenario())
        assert woke == [("early", 1.0), ("mid", 2.0), ("late", 3.0)]

    def test_same_deadline_ties_break_by_issue_order(self):
        async def scenario():
            clock = VirtualClock()
            woke = []

            async def sleeper(name):
                await clock.sleep(1.0)
                woke.append(name)

            tasks = [
                asyncio.ensure_future(sleeper(name))
                for name in ("a", "b", "c")
            ]
            await clock.run_all(2.0)
            await asyncio.gather(*tasks)
            return woke

        assert drive(scenario()) == ["a", "b", "c"]

    def test_run_until_honours_sleeps_issued_by_woken_coroutines(self):
        # A chain: each wake-up schedules the next sleep.  run_until
        # must interleave advance and settle or the chain stalls after
        # the first hop.
        async def scenario():
            clock = VirtualClock()
            ticks = []

            async def chain():
                for _ in range(4):
                    await clock.sleep(0.5)
                    ticks.append(clock.now())

            task = asyncio.ensure_future(chain())
            await clock.run_until(2.0)
            await task
            return ticks

        assert drive(scenario()) == [0.5, 1.0, 1.5, 2.0]

    def test_run_all_settles_before_first_deadline_check(self):
        # The regression behind the comment in run_all: a task spawned
        # immediately before run_all has not executed yet, so its first
        # sleep is not on the heap.  Without the leading settle the
        # driver would see an empty heap and return at t=0.
        async def scenario():
            clock = VirtualClock()
            done = []

            async def late_starter():
                await clock.sleep(1.5)
                done.append(clock.now())

            task = asyncio.ensure_future(late_starter())
            await clock.run_all(5.0)
            await task
            return clock.now(), done

        now, done = drive(scenario())
        assert done == [1.5]
        assert now == 5.0

    def test_run_all_leaves_sleepers_beyond_horizon(self):
        async def scenario():
            clock = VirtualClock()

            async def far_future():
                await clock.sleep(100.0)

            task = asyncio.ensure_future(far_future())
            await clock.run_all(5.0)
            remaining = clock.pending_sleepers
            deadline = clock.next_deadline()
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return clock.now(), remaining, deadline

        now, remaining, deadline = drive(scenario())
        assert now == 5.0
        assert remaining == 1
        assert deadline == 100.0

    def test_zero_sleep_is_a_scheduling_point_not_a_parking(self):
        async def scenario():
            clock = VirtualClock()
            await clock.sleep(0.0)
            await clock.sleep(-1.0)
            return clock.pending_sleepers, clock.now()

        assert drive(scenario()) == (0, 0.0)

    def test_cancelled_sleeper_does_not_wedge_the_driver(self):
        async def scenario():
            clock = VirtualClock()

            async def doomed():
                await clock.sleep(1.0)

            task = asyncio.ensure_future(doomed())
            await clock.settle()
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await clock.run_all(2.0)
            return clock.now(), clock.pending_sleepers

        assert drive(scenario()) == (2.0, 0)

    def test_two_runs_produce_identical_interleavings(self):
        async def scenario():
            clock = VirtualClock()
            trace = []

            async def worker(name, period):
                while True:
                    await clock.sleep(period)
                    trace.append((name, round(clock.now(), 6)))

            tasks = [
                asyncio.ensure_future(worker("fast", 0.3)),
                asyncio.ensure_future(worker("slow", 0.7)),
            ]
            await clock.run_all(3.0)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            return trace

        assert drive(scenario()) == drive(scenario())


class TestWallClock:
    def test_monotone_from_origin(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert first >= 0.0
        assert second >= first

    def test_sleep_clamps_negative_delay(self):
        async def scenario():
            clock = WallClock()
            await clock.sleep(-5.0)  # must not raise or hang
            return clock.now()

        assert drive(scenario()) >= 0.0
