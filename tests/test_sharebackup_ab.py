"""ShareBackup over the AB fat-tree (§6 generality exploration).

Tests both halves of the finding: edge/aggregation sharing carries over
verbatim (failovers, impersonation-compatible wiring, equivalence), and
core sharing is *structurally impossible* under AB wiring (unique
circuit-switch footprints), realised here as spare-less singleton groups.
"""

import pytest

from repro.core import ShareBackupController
from repro.core.sharebackup_ab import ShareBackupABNetwork
from repro.topology import F10Tree, validate_fattree


@pytest.fixture
def ab() -> ShareBackupABNetwork:
    return ShareBackupABNetwork(6, n=1)


class TestConstruction:
    def test_logical_substrate_is_f10(self, ab):
        assert isinstance(ab.logical, F10Tree)
        validate_fattree(ab.logical)

    def test_equivalence_against_ab_wiring(self, ab):
        ab.verify_fattree_equivalence()

    def test_group_inventory(self, ab):
        # 2 shared groups per pod + one singleton per core
        edges = [g for g in ab.groups.values() if g.group_id.startswith("FG.edge")]
        aggs = [g for g in ab.groups.values() if g.group_id.startswith("FG.agg")]
        cores = [g for g in ab.groups.values() if "core" in g.group_id]
        assert len(edges) == 6 and len(aggs) == 6 and len(cores) == 9
        assert all(g.n == 1 for g in edges + aggs)
        assert all(g.n == 0 for g in cores)

    def test_no_backup_cores_built(self, ab):
        assert not any(name.startswith("BC.") for name in ab.physical_health)
        assert ab.num_backup_switches == 2 * 6  # edge + agg spares only

    def test_rejects_core_spare_request(self):
        with pytest.raises(ValueError):
            ShareBackupABNetwork(6, n={"core": 2})

    def test_layer3_footprints_are_unique_per_core(self, ab):
        """The impossibility argument, checked mechanically: no two cores
        share the same circuit-switch set."""
        footprints = {}
        for c in range(9):
            group = ab.group_of(f"C.{c}")
            footprints[c] = frozenset(ab._group_css[group.group_id])
        assert len(set(footprints.values())) == 9

    def test_b_pod_wiring_is_column_skewed(self, ab):
        # pod 1 (type B): agg a's up-if j reaches core j*h + a
        for a in range(3):
            for j in range(3):
                got = ab.physical_neighbor(f"A.1.{a}", ("up", j))
                assert got == (f"C.{j * 3 + a}", ("pod", 1))

    def test_a_pod_wiring_is_row_standard(self, ab):
        for a in range(3):
            for j in range(3):
                got = ab.physical_neighbor(f"A.0.{a}", ("up", j))
                assert got == (f"C.{a * 3 + j}", ("pod", 0))


class TestRecoveryBehaviour:
    def test_edge_and_agg_failovers(self, ab):
        ctrl = ShareBackupController(ab)
        assert ctrl.handle_node_failure("E.0.0").fully_recovered
        assert ctrl.handle_node_failure("A.1.1").fully_recovered  # B pod
        assert ctrl.handle_node_failure("A.2.0").fully_recovered  # A pod
        ab.verify_fattree_equivalence()
        for group in ab.groups.values():
            group.validate()

    def test_spare_inherits_b_pod_skew(self, ab):
        """A spare replacing a B-pod aggregation must inherit the *column*
        core footprint — the acid test that failover re-pointing is
        wiring-agnostic."""
        before = {
            j: ab.physical_neighbor("A.1.1", ("up", j)) for j in range(3)
        }
        group = ab.group_of("A.1.1")
        spare = group.allocate_spare()
        ab.failover("A.1.1", spare)
        after = {j: ab.physical_neighbor(spare, ("up", j)) for j in range(3)}
        assert before == after

    def test_core_failure_unrecoverable_by_replacement(self, ab):
        ctrl = ShareBackupController(ab)
        report = ctrl.handle_node_failure("C.0")
        assert not report.fully_recovered
        assert report.unrecoverable == ("C.0",)
        assert not ab.core_is_replaceable("C.0")

    def test_core_failure_handled_by_f10_rerouting(self, ab):
        """The hybrid in action: core failures fall back to F10's local
        rerouting, which detours without upstream propagation."""
        from repro.routing import F10LocalRerouteRouter

        tree = ab.logical
        router = F10LocalRerouteRouter(tree)
        path = router.initial_path("H.0.0.0", "H.1.0.0", 1)
        tree.fail_node(path.nodes[3])
        router.on_topology_change()
        detour = router.repath("H.0.0.0", "H.1.0.0", 1, path, {})
        assert detour is not None and detour.is_operational(tree)
        assert detour.hops == path.hops + 2  # the 3-hop local detour
