"""Unit tests for FlowState transitions (stall bookkeeping idempotence)."""

import pytest

from repro.routing import Path
from repro.simulation import FlowPhase, FlowSpec, FlowState


def make_state() -> FlowState:
    spec = FlowSpec(1, 1, "H.0.0.0", "H.1.0.0", 1000.0)
    return FlowState(spec=spec, start=0.0, remaining_bits=spec.size_bits)


class TestStallBookkeeping:
    def test_begin_stall_records_phase(self):
        s = make_state()
        s.begin_stall(1.0)
        assert s.phase is FlowPhase.STALLED
        assert s.rate == 0.0

    def test_begin_stall_idempotent(self):
        s = make_state()
        s.begin_stall(1.0)
        s.begin_stall(2.0)  # second call must not reset the stall start
        s.end_stall(3.0)
        assert s.stalled_time == pytest.approx(2.0)

    def test_end_stall_without_begin_is_noop(self):
        s = make_state()
        s.end_stall(5.0)
        assert s.phase is FlowPhase.ACTIVE
        assert s.stalled_time == 0.0

    def test_multiple_stall_windows_accumulate(self):
        s = make_state()
        s.begin_stall(1.0)
        s.end_stall(2.0)
        s.begin_stall(4.0)
        s.end_stall(7.0)
        assert s.stalled_time == pytest.approx(4.0)

    def test_complete_clears_rate_and_remaining(self):
        s = make_state()
        s.rate = 5.0
        s.complete(9.0)
        assert s.phase is FlowPhase.DONE
        assert s.finish == 9.0
        assert s.rate == 0.0 and s.remaining_bits == 0.0


class TestPathAssignment:
    def test_assign_path_records_last_nodes(self):
        s = make_state()
        path = Path(("H.0.0.0", "E.0.0", "H.0.0.1"))
        s.assign_path(path, ())
        assert s.last_nodes == path.nodes
        s.assign_path(None, ())
        assert s.path is None
        assert s.last_nodes == path.nodes  # survives the stall window

    def test_hops_property(self):
        s = make_state()
        assert s.hops is None
        s.assign_path(Path(("H.0.0.0", "E.0.0", "H.0.0.1")), ())
        assert s.hops == 2

    def test_size_bits(self):
        assert make_state().spec.size_bits == 8000.0
