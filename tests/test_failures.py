"""Failure model and injector tests."""

import math

import numpy as np
import pytest

from repro.failures import (
    DEFAULT_FAILURE_MODEL,
    FailureInjector,
    FailureModel,
    FailureScenario,
)
from repro.topology import FatTree, NodeKind


class TestFailureModel:
    def test_default_matches_paper(self):
        # "most devices have over 99.99% availability" -> 0.01% failure rate
        assert DEFAULT_FAILURE_MODEL.unavailability == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(availability=1.5)
        with pytest.raises(ValueError):
            FailureModel(median_downtime=0)

    def test_mtbf_consistent_with_availability(self):
        m = FailureModel()
        implied = m.mean_downtime / (m.mean_downtime + m.mtbf)
        assert implied == pytest.approx(m.unavailability, rel=1e-6)

    def test_downtime_sampling_mostly_under_five_minutes(self):
        # the paper: "most failures last for less than 5 minutes"
        m = FailureModel()
        rng = np.random.default_rng(0)
        samples = [m.sample_downtime(rng) for _ in range(2000)]
        frac_short = sum(1 for s in samples if s < 300) / len(samples)
        assert frac_short > 0.8

    def test_concurrent_failure_probability_monotone_in_spares(self):
        m = FailureModel()
        p0 = m.concurrent_failure_probability(24, 0)
        p1 = m.concurrent_failure_probability(24, 1)
        p2 = m.concurrent_failure_probability(24, 2)
        assert p0 > p1 > p2 >= 0

    def test_section51_claim_n1_sufficient(self):
        """k=48 -> group of 24, n=1: residual risk orders of magnitude
        below the single-spare-exhausted threshold."""
        m = FailureModel()
        residual = m.concurrent_failure_probability(24, 1)
        assert residual < 1e-5

    def test_backup_ratio_vs_failure_rate(self):
        # n/(k/2) = 4.17% >> 0.01% for k=48, n=1 (the paper's comparison)
        k, n = 48, 1
        ratio = n / (k / 2)
        assert ratio == pytest.approx(0.0417, abs=1e-4)
        assert ratio > 400 * DEFAULT_FAILURE_MODEL.unavailability


class TestScenario:
    def test_apply_and_revert(self, ft4):
        link = next(iter(ft4.links.values()))
        sc = FailureScenario(nodes=("C.0",), links=(link.link_id,))
        sc.apply(ft4)
        assert not ft4.node_is_up("C.0") and not link.up
        sc.revert(ft4)
        assert ft4.node_is_up("C.0") and link.up

    def test_size_and_describe(self, ft4):
        sc = FailureScenario(nodes=("C.0",))
        assert sc.size == 1
        assert "C.0" in sc.describe(ft4)
        assert FailureScenario().describe(ft4) == "(no failures)"


class TestInjector:
    def test_populations(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        assert inj.switch_population == 18 + 18 + 9
        assert inj.link_population == len(ft6.links)

    def test_switch_kind_filter(self, ft6):
        inj = FailureInjector(ft6, seed=1, switch_kinds=(NodeKind.CORE,))
        assert inj.switch_population == 9
        sc = inj.single_node_failure()
        assert sc.nodes[0].startswith("C.")

    def test_link_scope_switch_only(self, ft6):
        inj = FailureInjector(ft6, seed=1, link_scope="switch")
        assert inj.link_population == len(ft6.links) - ft6.num_hosts
        sc = inj.single_link_failure()
        link = ft6.links[sc.links[0]]
        assert not link.a.startswith("H.") and not link.b.startswith("H.")

    def test_bad_scope_rejected(self, ft6):
        with pytest.raises(ValueError):
            FailureInjector(ft6, link_scope="weird")

    def test_rate_zero_empty(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        assert inj.node_failures_at_rate(0.0).size == 0

    def test_small_rate_fails_at_least_one(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        assert inj.node_failures_at_rate(1e-6).size == 1

    def test_rate_scales_count(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        sc = inj.node_failures_at_rate(0.2)
        assert sc.size == round(0.2 * inj.switch_population)

    def test_rate_bounds(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        with pytest.raises(ValueError):
            inj.node_failures_at_rate(1.5)

    def test_distinct_elements(self, ft6):
        inj = FailureInjector(ft6, seed=1)
        sc = inj.node_failures_at_rate(0.5)
        assert len(set(sc.nodes)) == len(sc.nodes)

    def test_deterministic_given_seed(self, ft6):
        a = FailureInjector(ft6, seed=9).single_node_failure()
        b = FailureInjector(ft6, seed=9).single_node_failure()
        assert a == b

    def test_concurrent_failures(self, ft6):
        inj = FailureInjector(ft6, seed=2)
        sc = inj.concurrent_node_failures(5)
        assert sc.size == 5
        with pytest.raises(ValueError):
            inj.concurrent_node_failures(10_000)

    def test_link_rate_sweep(self, ft6):
        inj = FailureInjector(ft6, seed=3)
        sc = inj.link_failures_at_rate(0.1)
        assert sc.size == round(0.1 * inj.link_population)
