"""Unit tests for the graph primitives (nodes, links, failure state)."""

import pytest

from repro.topology import Level, Link, Node, NodeKind, Topology, TopologyError


def tiny() -> Topology:
    t = Topology("tiny")
    t.add_node(Node("h1", NodeKind.HOST))
    t.add_node(Node("h2", NodeKind.HOST))
    t.add_node(Node("e1", NodeKind.EDGE, pod=0, index=0))
    t.add_link("h1", "e1")
    t.add_link("h2", "e1")
    return t


class TestNodeKind:
    def test_packet_switch_classification(self):
        assert NodeKind.EDGE.is_packet_switch
        assert NodeKind.AGGREGATION.is_packet_switch
        assert NodeKind.CORE.is_packet_switch
        assert not NodeKind.HOST.is_packet_switch
        assert not NodeKind.CIRCUIT.is_packet_switch

    def test_levels(self):
        assert Level.of(NodeKind.HOST) is Level.HOST
        assert Level.of(NodeKind.CORE) is Level.CORE

    def test_circuit_has_no_level(self):
        with pytest.raises(TopologyError):
            Level.of(NodeKind.CIRCUIT)


class TestConstruction:
    def test_duplicate_node_rejected(self):
        t = tiny()
        with pytest.raises(TopologyError):
            t.add_node(Node("h1", NodeKind.HOST))

    def test_self_loop_rejected(self):
        t = tiny()
        with pytest.raises(TopologyError):
            t.add_link("h1", "h1")

    def test_link_to_unknown_node_rejected(self):
        t = tiny()
        with pytest.raises(TopologyError):
            t.add_link("h1", "nope")

    def test_parallel_links_allowed(self):
        t = tiny()
        t.add_link("h1", "e1")
        assert len(t.links_between("h1", "e1")) == 2

    def test_link_ids_unique_and_stable(self):
        t = tiny()
        ids = [l.link_id for l in t.links.values()]
        assert len(ids) == len(set(ids))

    def test_remove_link(self):
        t = tiny()
        link = t.links_between("h1", "e1")[0]
        t.remove_link(link.link_id)
        assert t.links_between("h1", "e1") == []
        assert t.degree("h1") == 0

    def test_remove_one_parallel_link_keeps_other(self):
        t = tiny()
        extra = t.add_link("h1", "e1")
        t.remove_link(extra.link_id)
        assert len(t.links_between("h1", "e1")) == 1


class TestAccessors:
    def test_link_other(self):
        t = tiny()
        link = t.links_between("h1", "e1")[0]
        assert link.other("h1") == "e1"
        assert link.other("e1") == "h1"
        with pytest.raises(TopologyError):
            link.other("h2")

    def test_degree(self):
        t = tiny()
        assert t.degree("e1") == 2
        assert t.degree("h1") == 1

    def test_neighbors(self):
        t = tiny()
        assert sorted(t.neighbors("e1")) == ["h1", "h2"]

    def test_links_of(self):
        t = tiny()
        assert len(list(t.links_of("e1"))) == 2

    def test_nodes_of_kind_sorted(self):
        t = tiny()
        hosts = t.nodes_of_kind(NodeKind.HOST)
        assert [n.name for n in hosts] == ["h1", "h2"]

    def test_nodes_of_kind_backup_filter(self):
        t = tiny()
        t.add_node(Node("e2", NodeKind.EDGE, is_backup=True))
        assert len(t.nodes_of_kind(NodeKind.EDGE)) == 2
        assert len(t.nodes_of_kind(NodeKind.EDGE, include_backup=False)) == 1

    def test_path_links_resolution(self):
        t = tiny()
        links = t.path_links(["h1", "e1", "h2"])
        assert len(links) == 2

    def test_path_links_missing_hop(self):
        t = tiny()
        with pytest.raises(TopologyError):
            t.path_links(["h1", "h2"])


class TestFailureState:
    def test_fail_restore_node(self):
        t = tiny()
        t.fail_node("e1")
        assert not t.node_is_up("e1")
        t.restore_node("e1")
        assert t.node_is_up("e1")

    def test_link_operational_requires_endpoints_up(self):
        t = tiny()
        link = t.links_between("h1", "e1")[0]
        assert t.link_is_operational(link.link_id)
        t.fail_node("e1")
        assert not t.link_is_operational(link.link_id)
        assert link.up  # the cable itself is still healthy

    def test_fail_link_directly(self):
        t = tiny()
        link = t.links_between("h1", "e1")[0]
        t.fail_link(link.link_id)
        assert not t.link_is_operational(link.link_id)
        assert t.node_is_up("h1") and t.node_is_up("e1")

    def test_up_neighbors_skips_failed(self):
        t = tiny()
        t.fail_node("h2")
        names = [n for n, _ in t.up_neighbors("e1")]
        assert names == ["h1"]

    def test_up_neighbors_of_failed_node_empty(self):
        t = tiny()
        t.fail_node("e1")
        assert list(t.up_neighbors("e1")) == []

    def test_up_neighbors_skips_failed_link(self):
        t = tiny()
        link = t.links_between("h1", "e1")[0]
        t.fail_link(link.link_id)
        names = [n for n, _ in t.up_neighbors("e1")]
        assert names == ["h2"]

    def test_operational_links_between_with_parallel(self):
        t = tiny()
        extra = t.add_link("h1", "e1")
        first = t.links_between("h1", "e1")[0]
        t.fail_link(first.link_id)
        ops = t.operational_links_between("h1", "e1")
        assert [l.link_id for l in ops] == [extra.link_id]

    def test_failed_inventories(self):
        t = tiny()
        link = t.links_between("h2", "e1")[0]
        t.fail_node("h1")
        t.fail_link(link.link_id)
        assert t.failed_nodes() == ["h1"]
        assert t.failed_links() == [link.link_id]

    def test_clear_failures(self):
        t = tiny()
        t.fail_node("h1")
        t.fail_link(t.links_between("h2", "e1")[0].link_id)
        t.clear_failures()
        assert t.failed_nodes() == [] and t.failed_links() == []

    def test_path_is_operational(self):
        t = tiny()
        assert t.path_is_operational(["h1", "e1", "h2"])
        t.fail_node("e1")
        assert not t.path_is_operational(["h1", "e1", "h2"])


class TestInterop:
    def test_to_networkx_full(self):
        t = tiny()
        g = t.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2

    def test_to_networkx_operational_only(self):
        t = tiny()
        t.fail_node("h2")
        g = t.to_networkx(operational_only=True)
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 1

    def test_repr_mentions_counts(self):
        assert "3 nodes" in repr(tiny())
