"""Property tests for :mod:`repro.service.ingest` backpressure.

Two invariants, enforced under arbitrary arrival/drain interleavings:

* the bound holds — a :class:`ProbeQueue` never holds more than
  ``maxsize`` items, whatever the policy does to achieve that;
* the conservation law — every submitted probe is accounted for exactly
  once: ``submitted == rejected + dropped_oldest + dequeued
  + lost_on_crash + queued`` — including across crash/restart
  boundaries, where the queue's in-flight probes die with the process
  and must move to ``lost_on_crash`` rather than vanish from the books.

Plus the policy semantics those invariants do not pin on their own:
``reject`` refuses the newcomer (FIFO of survivors intact), while
``drop-oldest`` evicts the head, and a parked consumer receives its
probe by direct hand-off (counted as dequeued, never queued).
"""

import asyncio

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.service.ingest import (
    OVERFLOW_POLICIES,
    Heartbeat,
    ProbeQueue,
    QueueCounters,
)

# An interleaving is a sequence of producer offers and consumer drains.
operations = st.lists(
    st.sampled_from(["offer", "get"]), min_size=0, max_size=200
)
bounds = st.integers(min_value=1, max_value=8)
policies = st.sampled_from(OVERFLOW_POLICIES)


def replay(maxsize, policy, ops):
    """Run one interleaving synchronously; return the queue."""
    queue = ProbeQueue(maxsize, policy)
    for index, op in enumerate(ops):
        if op == "offer":
            queue.offer(Heartbeat(f"sw-{index}", float(index)))
        else:
            queue.get_nowait()
    return queue


@given(bounds, policies, operations)
@settings(max_examples=200, deadline=None)
def test_bound_never_exceeded(maxsize, policy, ops):
    queue = ProbeQueue(maxsize, policy)
    for index, op in enumerate(ops):
        if op == "offer":
            queue.offer(Heartbeat(f"sw-{index}", float(index)))
        else:
            queue.get_nowait()
        assert len(queue) <= maxsize  # after *every* step, not just at the end


@given(bounds, policies, operations)
@settings(max_examples=200, deadline=None)
def test_counters_conserve_every_probe(maxsize, policy, ops):
    queue = replay(maxsize, policy, ops)
    counters = queue.counters
    assert counters.submitted == sum(1 for op in ops if op == "offer")
    assert counters.submitted == counters.accounted(len(queue))
    # The partition is non-negative term by term.
    assert counters.rejected >= 0
    assert counters.dropped_oldest >= 0
    assert counters.dequeued >= 0
    # Policy exclusivity: a queue only ever uses its own overflow arm.
    if policy == "reject":
        assert counters.dropped_oldest == 0
    else:
        assert counters.rejected == 0


@given(bounds, operations)
@settings(max_examples=100, deadline=None)
def test_drop_oldest_preserves_the_newest_probes(maxsize, ops):
    queue = ProbeQueue(maxsize, "drop-oldest")
    alive = []
    for index, op in enumerate(ops):
        if op == "offer":
            probe = Heartbeat(f"sw-{index}", float(index))
            queue.offer(probe)
            alive.append(probe)
            if len(alive) > maxsize:
                alive.pop(0)
        elif alive:
            assert queue.get_nowait() == alive.pop(0)
        else:
            assert queue.get_nowait() is None
    # Whatever survives is exactly the newest suffix, in FIFO order.
    drained = []
    probe = queue.get_nowait()
    while probe is not None:
        drained.append(probe)
        probe = queue.get_nowait()
    assert drained == alive


def test_reject_refuses_newcomer_and_keeps_fifo():
    queue = ProbeQueue(2, "reject")
    first, second, third = (
        Heartbeat("a", 0.0), Heartbeat("b", 1.0), Heartbeat("c", 2.0)
    )
    assert queue.offer(first)
    assert queue.offer(second)
    assert not queue.offer(third)  # full: the newcomer bounces
    assert queue.counters.rejected == 1
    assert queue.get_nowait() == first
    assert queue.get_nowait() == second
    assert queue.get_nowait() is None


def test_parked_consumer_gets_direct_handoff():
    async def scenario():
        queue = ProbeQueue(1, "reject")
        getter = asyncio.ensure_future(queue.get())
        await asyncio.sleep(0)  # park the consumer
        probe = Heartbeat("sw", 0.5)
        assert queue.offer(probe)
        received = await getter
        return queue, received, probe

    queue, received, probe = asyncio.run(scenario())
    assert received == probe
    assert len(queue) == 0  # hand-off bypassed the buffer...
    assert queue.counters.dequeued == 1  # ...but is still accounted
    assert queue.counters.submitted == queue.counters.accounted(len(queue))


def test_cancelled_consumer_is_skipped_not_served():
    async def scenario():
        queue = ProbeQueue(4, "reject")
        doomed = asyncio.ensure_future(queue.get())
        await asyncio.sleep(0)
        doomed.cancel()
        await asyncio.gather(doomed, return_exceptions=True)
        probe = Heartbeat("sw", 1.0)
        assert queue.offer(probe)
        # The probe must be queued, not lost in the dead waiter.
        assert queue.get_nowait() == probe
        return queue

    queue = asyncio.run(scenario())
    assert queue.counters.submitted == queue.counters.accounted(len(queue))


def test_constructor_validates_bound_and_policy():
    with pytest.raises(ValueError):
        ProbeQueue(0)
    with pytest.raises(ValueError):
        ProbeQueue(4, policy="drop-newest")


def test_counters_to_dict_round_trip():
    counters = QueueCounters(submitted=5, rejected=1, dropped_oldest=2,
                             dequeued=1)
    assert counters.to_dict() == {
        "submitted": 5, "rejected": 1, "dropped_oldest": 2, "dequeued": 1,
        "lost_on_crash": 0,
    }
    assert counters.accounted(queued_now=1) == 5
    assert QueueCounters.from_dict(counters.to_dict()) == counters


# ----------------------------------------------------------------------
# the crash/restart boundary
# ----------------------------------------------------------------------

# An interleaving that may also crash: the queue snapshots and restarts,
# losing whatever was in flight — but never losing the accounting.
crash_operations = st.lists(
    st.sampled_from(["offer", "get", "crash"]), min_size=0, max_size=200
)


@given(bounds, policies, crash_operations)
@settings(max_examples=200, deadline=None)
def test_conservation_survives_crash_restart(maxsize, policy, ops):
    queue = ProbeQueue(maxsize, policy)
    expected_lost = 0
    submitted = 0
    for index, op in enumerate(ops):
        if op == "offer":
            queue.offer(Heartbeat(f"sw-{index}", float(index)))
            submitted += 1
        elif op == "get":
            queue.get_nowait()
        else:  # crash: snapshot the books, restart on an empty queue
            expected_lost += len(queue)
            queue = ProbeQueue.restore(queue.snapshot())
            assert len(queue) == 0  # queued probes are process memory
        # The law holds after *every* step, crashes included.
        counters = queue.counters
        assert counters.submitted == submitted
        assert counters.submitted == counters.accounted(len(queue))
        assert counters.lost_on_crash == expected_lost
    # Restart preserves configuration alongside the books.
    restored = ProbeQueue.restore(queue.snapshot())
    assert (restored.maxsize, restored.policy) == (maxsize, policy)
    assert restored.counters.submitted == submitted
    assert restored.counters.submitted == restored.counters.accounted(0)


def test_restore_books_in_flight_probes_as_lost():
    queue = ProbeQueue(4, "drop-oldest")
    for index in range(3):
        queue.offer(Heartbeat(f"sw-{index}", float(index)))
    queue.get_nowait()
    restored = ProbeQueue.restore(queue.snapshot())
    assert restored.counters.lost_on_crash == 2  # the two still queued
    assert restored.counters.dequeued == 1
    assert restored.counters.submitted == restored.counters.accounted(0)
