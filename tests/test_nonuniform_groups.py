"""Non-uniform failure groups (paper §6 extension): per-layer spare counts.

"we can have more backup on critical devices and less backup on
unimportant ones" — realised here as ``ShareBackupNetwork(k, n={"edge":
1, "agg": 2, "core": 1})``, with asymmetric circuit-switch sides where
adjacent layers differ.
"""

import pytest

from repro.core import (
    CircuitSwitch,
    CircuitSwitchError,
    ShareBackupController,
    ShareBackupNetwork,
)


class TestAsymmetricCrossbar:
    def test_sides_sized_independently(self):
        cs = CircuitSwitch("cs", radix=4, up_radix=6)
        cs.connect(("d", 3), ("u", 5))
        with pytest.raises(CircuitSwitchError):
            cs.connect(("d", 4), ("u", 0))  # beyond the down side
        with pytest.raises(CircuitSwitchError):
            cs.connect(("d", 0), ("u", 6))  # beyond the up side

    def test_default_is_symmetric(self):
        cs = CircuitSwitch("cs", radix=4)
        assert cs.up_radix == 4

    def test_ports_per_side_is_larger_side(self):
        assert CircuitSwitch("cs", radix=4, up_radix=6).ports_per_side == 8

    def test_port_inventory(self):
        cs = CircuitSwitch("cs", radix=2, up_radix=3)
        ports = cs.ports()
        assert ("d", 1) in ports and ("d", 2) not in ports
        assert ("u", 2) in ports and ("u", 3) not in ports


class TestNonUniformNetwork:
    def make(self) -> ShareBackupNetwork:
        return ShareBackupNetwork(6, n={"edge": 1, "agg": 2, "core": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            ShareBackupNetwork(6, n={"edge": 0})
        with pytest.raises(ValueError):
            ShareBackupNetwork(6, n={"spine": 1})

    def test_per_layer_counts(self):
        net = self.make()
        assert net.n_edge == 1 and net.n_agg == 2 and net.n_core == 1
        assert net.n == 2  # uniform view = max
        # 6 pods x (1 edge + 2 agg) + 3 core groups x 1
        assert net.num_backup_switches == 6 * 3 + 3

    def test_unspecified_layers_default_to_one(self):
        net = ShareBackupNetwork(6, n={"agg": 3})
        assert net.n_edge == 1 and net.n_agg == 3 and net.n_core == 1

    def test_circuit_switch_sides(self):
        net = self.make()
        # layer 2: edges below (n=1), aggs above (n=2)
        cs2 = net.circuit_switches["CS.2.0.0"]
        assert cs2.radix == 3 + 1 and cs2.up_radix == 3 + 2
        # layer 3: aggs below (n=2), cores above (n=1)
        cs3 = net.circuit_switches["CS.3.0.0"]
        assert cs3.radix == 3 + 2 and cs3.up_radix == 3 + 1

    def test_equivalence_holds(self):
        net = self.make()
        net.verify_fattree_equivalence()

    def test_group_capacities_differ(self):
        net = self.make()
        ctrl = ShareBackupController(net)
        # agg group absorbs two concurrent failures...
        assert ctrl.handle_node_failure("A.0.0").fully_recovered
        assert ctrl.handle_node_failure("A.0.1").fully_recovered
        assert not ctrl.handle_node_failure("A.0.2").fully_recovered
        # ...while the edge group absorbs exactly one
        assert ctrl.handle_node_failure("E.0.0").fully_recovered
        assert not ctrl.handle_node_failure("E.0.1").fully_recovered
        net.verify_fattree_equivalence()

    def test_failover_mechanics_unchanged(self):
        net = self.make()
        group = net.group_of("A.1.0")
        spare = group.allocate_spare()
        before = {
            iface: net.physical_neighbor("A.1.0", iface)
            for iface in [("down", j) for j in range(3)] + [("up", j) for j in range(3)]
        }
        net.failover("A.1.0", spare)
        after = {iface: net.physical_neighbor(spare, iface) for iface in before}
        assert before == after

    def test_backup_ratios_per_group(self):
        net = self.make()
        assert net.group_of("A.0.0").backup_ratio == pytest.approx(2 / 3)
        assert net.group_of("E.0.0").backup_ratio == pytest.approx(1 / 3)

    def test_scalar_n_unchanged(self):
        uniform = ShareBackupNetwork(6, n=2)
        assert uniform.n_edge == uniform.n_agg == uniform.n_core == 2
        assert uniform.num_backup_switches == 15 * 2
        uniform.verify_fattree_equivalence()
