"""Property-based tests on the cost model (monotonicity, consistency)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cost import (
    E_DC,
    O_DC,
    aspen_extra_cost,
    fattree_cost,
    one_to_one_extra_cost,
    relative_extra_cost,
    sharebackup_extra_cost,
    sharebackup_nonuniform_extra_cost,
)

even_k = st.integers(min_value=2, max_value=64).map(lambda i: 2 * i)
spares = st.integers(min_value=0, max_value=8)
prices = st.sampled_from([E_DC, O_DC])


@given(even_k, prices)
@settings(max_examples=60, deadline=None)
def test_fattree_cost_positive_and_cubic(k, book):
    cost = fattree_cost(k, book)
    assert cost > 0
    assert fattree_cost(2 * k, book) == pytest.approx(8 * cost)


@given(even_k, spares, prices)
@settings(max_examples=60, deadline=None)
def test_sharebackup_cost_monotone_in_n(k, n, book):
    a = sharebackup_extra_cost(k, n, book).total
    b = sharebackup_extra_cost(k, n + 1, book).total
    assert b > a


@given(even_k, st.integers(min_value=1, max_value=8), prices)
@settings(max_examples=60, deadline=None)
def test_sharebackup_relative_cost_decreases_with_scale(k, n, book):
    small = relative_extra_cost(sharebackup_extra_cost(k, n, book), k, book)
    big = relative_extra_cost(sharebackup_extra_cost(k + 2, n, book), k + 2, book)
    assert big < small


@given(even_k, prices)
@settings(max_examples=60, deadline=None)
def test_one_to_one_always_three_x(k, book):
    rel = relative_extra_cost(one_to_one_extra_cost(k, book), k, book)
    assert rel == pytest.approx(3.0)


@given(even_k, prices)
@settings(max_examples=60, deadline=None)
def test_aspen_relative_cost_scale_free(k, book):
    a = relative_extra_cost(aspen_extra_cost(k, book), k, book)
    b = relative_extra_cost(aspen_extra_cost(k + 10, book), k + 10, book)
    assert a == pytest.approx(b)


@given(even_k, st.integers(min_value=0, max_value=6), prices)
@settings(max_examples=60, deadline=None)
def test_nonuniform_reduces_to_uniform(k, n, book):
    uniform = sharebackup_extra_cost(k, n, book).total
    nonuniform = sharebackup_nonuniform_extra_cost(k, n, n, n, book).total
    assert nonuniform == pytest.approx(uniform)


@given(
    even_k,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    prices,
)
@settings(max_examples=60, deadline=None)
def test_nonuniform_bounded_by_uniform_envelope(k, ne, na, nc, book):
    """A mixed plan costs at least uniform(min n) and at most uniform(max n)."""
    lo = sharebackup_extra_cost(k, min(ne, na, nc), book).total
    hi = sharebackup_extra_cost(k, max(ne, na, nc), book).total
    mid = sharebackup_nonuniform_extra_cost(k, ne, na, nc, book).total
    assert lo - 1e-9 <= mid <= hi + 1e-9
