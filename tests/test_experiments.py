"""Tests of the experiment-pipeline package (tiny configurations)."""

import json
import math

import pytest

from repro.experiments import (
    AffectedSweepStudy,
    SlowdownStudy,
    StudyConfig,
    cdf_text,
    cdf_to_csv,
    csv_table,
    hottest_pod,
    series_to_csv,
)
from repro.topology import FatTree

TINY = StudyConfig(
    k=4,
    hosts_per_edge=4,
    num_coflows=20,
    duration=5.0,
    seed=3,
    failure_samples=2,
)


class TestStudyConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(k=5)
        with pytest.raises(ValueError):
            StudyConfig(failure_samples=0)

    def test_oversubscription(self):
        assert TINY.oversubscription == 2.0

    def test_build_specs_deterministic(self):
        tree = TINY.build_tree()
        a = TINY.build_specs(tree)
        b = TINY.build_specs(TINY.build_tree())
        assert [c.coflow_id for c in a] == [c.coflow_id for c in b]
        assert sum(f.size_bytes for c in a for f in c.flows) == pytest.approx(
            sum(f.size_bytes for c in b for f in c.flows)
        )


class TestAffectedSweep:
    def test_run_node_sweep(self):
        study = AffectedSweepStudy(TINY, rates=(0.05, 0.2))
        results = study.run("node")
        assert set(results) == {"fat-tree", "f10"}
        for result in results.values():
            assert len(result.points) == 2
            for p in result.points:
                assert 0 <= p.flow_fraction <= 1
                assert p.coflow_fraction >= p.flow_fraction
            assert result.single_failure_fractions

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            AffectedSweepStudy(TINY).run("switch")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            AffectedSweepStudy(TINY, rates=(0.0,))

    def test_table_renders(self):
        study = AffectedSweepStudy(TINY, rates=(0.1,))
        result = study.run("link")["fat-tree"]
        table = result.table()
        assert "fat-tree" in table and "link" in table

    def test_amplification_property(self):
        from repro.experiments import SweepPoint

        assert SweepPoint(0.1, 0.0, 0.0).amplification == 1.0
        assert SweepPoint(0.1, 0.0, 0.5).amplification == math.inf
        assert SweepPoint(0.1, 0.1, 0.5).amplification == pytest.approx(5.0)


class TestSlowdownStudy:
    def test_hottest_pod(self):
        tree = TINY.build_tree()
        specs = TINY.build_specs(tree)
        pod = hottest_pod(specs, tree)
        assert 0 <= pod < TINY.k

    def test_scenarios_include_hot_agg_and_link(self):
        study = SlowdownStudy(TINY)
        tree = TINY.build_tree()
        specs = TINY.build_specs(tree)
        scenarios = study.scenarios(tree, specs)
        assert scenarios[0].nodes[0].startswith("A.")
        assert scenarios[-1].links  # the agg-core link sample
        assert len(scenarios) == TINY.failure_samples + 1

    def test_full_run_tiny(self):
        results = SlowdownStudy(TINY).run()
        assert set(results) == {"fat-tree/global", "f10/local", "sharebackup"}
        sb = results["sharebackup"]
        assert sb.never_finished == 0
        assert max(sb.finite) < 1.05
        for digest in results.values():
            assert digest.row()  # renders

    def test_digest_handles_all_infinite(self):
        from repro.experiments import SlowdownDigest

        d = SlowdownDigest("x", (math.inf, math.inf))
        assert d.never_finished == 2
        assert "never finished" in d.row()


class TestReportHelpers:
    def test_csv_table(self):
        out = csv_table(["a", "b"], [(1, 2), (3, 4)])
        assert out.splitlines() == ["a,b", "1,2", "3,4"]

    def test_series_to_csv_long_form(self):
        out = series_to_csv({"s1": [(0.1, 0.5)], "s0": [(0.2, 0.7)]})
        lines = out.splitlines()
        assert lines[0] == "series,x,y"
        assert lines[1].startswith("s0,")  # sorted by series name

    def test_cdf_to_csv_keeps_inf(self):
        out = cdf_to_csv([1.0, math.inf])
        assert "inf" in out

    def test_cdf_text_samples(self):
        text = cdf_text(list(range(1, 101)), points=5)
        assert "P<=" in text
        assert "100.000x" in text  # the max is always included

    def test_cdf_text_empty(self):
        assert "no finite samples" in cdf_text([math.inf])


class TestPlannedTasks:
    """The planned-task dataclasses are the sweep's public currency:
    their payloads must stay JSON-safe (they cross the worker boundary
    and *are* the cache key)."""

    def test_affected_plan_is_planned_evaluations(self):
        from repro.experiments.affected import PlannedEvaluation

        plan = AffectedSweepStudy(TINY, rates=(0.1,)).plan("node")
        assert plan
        assert all(isinstance(task, PlannedEvaluation) for task in plan)
        ids = [task.task_id for task in plan]
        assert len(ids) == len(set(ids))
        payload = plan[0].payload(TINY)
        assert json.loads(json.dumps(payload)) == payload

    def test_slowdown_plan_is_planned_replays(self):
        from repro.experiments.slowdown import PlannedReplay

        plan = SlowdownStudy(TINY).plan()
        assert plan
        assert all(isinstance(task, PlannedReplay) for task in plan)
        sharebackup = [t for t in plan if t.architecture == "sharebackup"]
        rerouting = [t for t in plan if t.architecture != "sharebackup"]
        assert all(t.victim is not None for t in sharebackup)
        assert all(t.scenario is not None for t in rerouting)
        for task in (sharebackup + rerouting)[:2]:
            payload = task.payload(TINY)
            assert json.loads(json.dumps(payload)) == payload
