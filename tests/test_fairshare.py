"""Unit tests for the max-min fair allocator (hand-computable cases)."""

import pytest

from repro.simulation import FairShareError, max_min_rates


class TestBasics:
    def test_empty(self):
        assert max_min_rates({}, {}) == {}

    def test_single_flow_gets_link(self):
        rates = max_min_rates({1: ["L"]}, {"L": 10.0})
        assert rates[1] == 10.0

    def test_equal_split(self):
        rates = max_min_rates({1: ["L"], 2: ["L"]}, {"L": 10.0})
        assert rates[1] == rates[2] == 5.0

    def test_classic_three_flow_chain(self):
        """Textbook: flows A(L1), B(L1,L2), C(L2); caps L1=10, L2=10.
        Max-min: all saturate at 5 then A,C top up to... A: L1 shares with B;
        B bottlenecked by both; A=C=5? No: bottleneck link L1 has A,B ->
        fair 5; L2 has B,C -> fair 5; B frozen at 5, then A gets remaining
        5 more? L1 cap 10, B uses 5, A gets 5 -> both 5... Let's use caps
        making it interesting: L1=10, L2=4."""
        rates = max_min_rates(
            {"A": ["L1"], "B": ["L1", "L2"], "C": ["L2"]},
            {"L1": 10.0, "L2": 4.0},
        )
        assert rates["B"] == pytest.approx(2.0)  # L2 is the bottleneck
        assert rates["C"] == pytest.approx(2.0)
        assert rates["A"] == pytest.approx(8.0)  # takes L1's slack

    def test_parking_lot(self):
        """n local flows + 1 long flow across n links of capacity 1."""
        n = 4
        flows = {f"local{i}": [f"L{i}"] for i in range(n)}
        flows["long"] = [f"L{i}" for i in range(n)]
        caps = {f"L{i}": 1.0 for i in range(n)}
        rates = max_min_rates(flows, caps)
        assert rates["long"] == pytest.approx(0.5)
        for i in range(n):
            assert rates[f"local{i}"] == pytest.approx(0.5)

    def test_heterogeneous_capacities(self):
        rates = max_min_rates(
            {1: ["thin"], 2: ["thin", "fat"], 3: ["fat"]},
            {"thin": 2.0, "fat": 100.0},
        )
        assert rates[1] == pytest.approx(1.0)
        assert rates[2] == pytest.approx(1.0)
        assert rates[3] == pytest.approx(99.0)

    def test_zero_capacity_link_starves(self):
        rates = max_min_rates({1: ["dead"]}, {"dead": 0.0})
        assert rates[1] == 0.0

    def test_disjoint_flows_independent(self):
        rates = max_min_rates(
            {1: ["A"], 2: ["B"]}, {"A": 3.0, "B": 7.0}
        )
        assert rates == {1: 3.0, 2: 7.0}


class TestValidation:
    def test_empty_path_rejected(self):
        with pytest.raises(FairShareError):
            max_min_rates({1: []}, {})

    def test_unknown_segment_rejected(self):
        with pytest.raises(FairShareError):
            max_min_rates({1: ["L"]}, {})

    def test_negative_capacity_rejected(self):
        with pytest.raises(FairShareError):
            max_min_rates({1: ["L"]}, {"L": -1.0})


class TestScale:
    def test_many_flows_one_link(self):
        flows = {i: ["L"] for i in range(1000)}
        rates = max_min_rates(flows, {"L": 1000.0})
        assert all(abs(r - 1.0) < 1e-9 for r in rates.values())

    def test_wide_fanout_levels(self):
        # 10 groups of 10 flows; group i shares link Gi (cap i+1) and all
        # share a backbone of cap 30.
        flows = {}
        caps = {"BB": 30.0}
        for g in range(10):
            caps[f"G{g}"] = float(g + 1)
            for j in range(10):
                flows[(g, j)] = [f"G{g}", "BB"]
        rates = max_min_rates(flows, caps)
        # feasibility on every link
        for g in range(10):
            used = sum(rates[(g, j)] for j in range(10))
            assert used <= caps[f"G{g}"] + 1e-6
        assert sum(rates.values()) <= 30.0 + 1e-6
        # the backbone should be fully used (work conservation)
        assert sum(rates.values()) == pytest.approx(30.0, rel=1e-6)
