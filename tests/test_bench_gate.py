"""The shared regression-gate helper (benchmarks/_gate.py).

One copy of the best-of-N gate policy serves both check scripts
(``check_engine.py``, ``check_slo.py``); these tests pin the env-var
parsing, the regressed/ok decision, and the verdict-line format the CI
log greps for.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "_gate.py"
)
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
gate_mod = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_gate", gate_mod)
_spec.loader.exec_module(gate_mod)


class TestGateFromEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_GATE", raising=False)
        assert gate_mod.gate_from_env("REPRO_TEST_GATE") == (
            gate_mod.DEFAULT_GATE
        )

    def test_default_when_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "")
        assert gate_mod.gate_from_env("REPRO_TEST_GATE") == (
            gate_mod.DEFAULT_GATE
        )

    def test_explicit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "3.5")
        assert gate_mod.gate_from_env("REPRO_TEST_GATE") == 3.5

    def test_custom_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_GATE", raising=False)
        assert gate_mod.gate_from_env("REPRO_TEST_GATE", default=4.0) == 4.0

    @pytest.mark.parametrize("bad", ["1.0", "0.5", "-2"])
    def test_rejects_gates_at_or_below_one(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_TEST_GATE", bad)
        with pytest.raises(SystemExit, match="must be > 1.0"):
            gate_mod.gate_from_env("REPRO_TEST_GATE")

    def test_garbage_raises_value_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_GATE", "fast")
        with pytest.raises(ValueError):
            gate_mod.gate_from_env("REPRO_TEST_GATE")


class TestVerdict:
    def test_within_gate_is_ok(self, capsys):
        assert gate_mod.verdict("replay", 1.5, 1.0, 2.0) is False
        out = capsys.readouterr().out
        assert out == (
            "ok: replay 1.500 s vs committed 1.000 s (1.50x, gate 2.0x)\n"
        )

    def test_at_gate_regresses(self, capsys):
        assert gate_mod.verdict("replay", 2.0, 1.0, 2.0) is True
        assert capsys.readouterr().out.startswith("REGRESSION: replay")

    def test_ms_scaling_only_affects_display(self, capsys):
        assert (
            gate_mod.verdict(
                "service-slo p99", 0.0015, 0.001, 2.0, unit="ms", scale=1e3
            )
            is False
        )
        out = capsys.readouterr().out
        assert out == (
            "ok: service-slo p99 1.500 ms vs committed 1.000 ms "
            "(1.50x, gate 2.0x)\n"
        )

    def test_corrupt_baseline_always_regresses(self, capsys):
        assert gate_mod.verdict("replay", 0.1, 0.0, 2.0) is True
        assert "infx" in capsys.readouterr().out

    def test_faster_than_committed_is_ok(self, capsys):
        assert gate_mod.verdict("replay", 0.4, 1.0, 2.0) is False
        assert "(0.40x" in capsys.readouterr().out


class TestCheckScriptsShareTheHelper:
    """The two check scripts must not regrow private copies."""

    @pytest.mark.parametrize("script", ["check_engine.py", "check_slo.py"])
    def test_scripts_import_the_shared_gate(self, script):
        source = (_GATE_PATH.parent / script).read_text(encoding="utf-8")
        assert "from _gate import" in source
        assert "def _gate(" not in source
        assert "def _verdict(" not in source
