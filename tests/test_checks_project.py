"""Tests for the whole-program half of :mod:`repro.checks`.

Four layers:

* model-level: :meth:`ProjectModel.from_sources` builds a linked model
  straight from ``{module: source}`` fixtures, so every interprocedural
  rule is proven able to *fire* (the real tree is expected clean);
* cache-level: the incremental lint cache round-trips, invalidates on
  revision changes, and purges corrupt entries;
* pipeline-level: a warm ``lint_paths`` run replays diagnostics and
  summaries without calling the parser once (counted by monkeypatching
  ``FileContext.from_source``);
* output-level: ``--format sarif`` matches the SARIF 2.1.0 shape GitHub
  code scanning ingests, and the rule catalogue in
  ``docs/static-analysis.md`` stays in sync with the registry.
"""

import json
from pathlib import Path

from repro.checks import (
    CHECKS_REV,
    LintCache,
    ProjectModel,
    all_rule_codes,
    check_source,
    checks_rev,
    lint_paths,
    render_json,
    render_sarif,
)
from repro.checks.cache import CachedFile
from repro.checks.callgraph import (
    CallSite,
    DrawSite,
    ImportRecord,
    ModuleSummary,
    NonJsonReturn,
    PayloadSite,
    summarize,
)
from repro.checks.context import FileContext
from repro.checks.rules.interproc import (
    DeadExport,
    HelperCircuitMutation,
    ImportCycle,
    PayloadReachesNonJson,
    TransitiveUnseededEntropy,
)
from repro.checks.sarif import SARIF_SCHEMA, SARIF_VERSION

REPO_ROOT = Path(__file__).resolve().parent.parent


def model_of(**sources):
    """Build a model from ``module="source"`` kwargs (dots as ``__``)."""
    return ProjectModel.from_sources(
        {name.replace("__", "."): src for name, src in sources.items()}
    )


# ----------------------------------------------------------------------
# model mechanics
# ----------------------------------------------------------------------


class TestProjectModel:
    def test_known_module_longest_prefix(self):
        model = model_of(
            repro__core="",
            repro__core__network="def f():\n    return 1\n",
        )
        assert model.known_module("repro.core.network.f") == (
            "repro.core.network"
        )
        assert model.known_module("repro.core") == "repro.core"
        assert model.known_module("unrelated.mod") is None

    def test_resolve_local_ref(self):
        model = model_of(repro__m="def helper():\n    return 1\n")
        assert model.resolve_ref("repro.m", "local:helper") == (
            ("repro.m", "helper"),
        )
        assert model.resolve_ref("repro.m", "local:missing") == ()

    def test_resolve_abs_through_package_reexport(self):
        model = model_of(
            repro__pkg="from .engine import lint_all\n",
            repro__pkg__engine="def lint_all():\n    return []\n",
            repro__user=(
                "from repro.pkg import lint_all\n"
                "def go():\n"
                "    return lint_all()\n"
            ),
        )
        assert model.resolve_ref("repro.user", "abs:repro.pkg.lint_all") == (
            ("repro.pkg.engine", "lint_all"),
        )

    def test_method_refs_resolve_only_on_request(self):
        model = model_of(
            repro__plan=(
                "class Plan:\n"
                "    def payload(self):\n"
                "        return {}\n"
            ),
        )
        assert model.resolve_ref("repro.plan", "method:payload") == ()
        assert model.resolve_ref(
            "repro.plan", "method:payload", methods=True
        ) == (("repro.plan", "Plan.payload"),)


# ----------------------------------------------------------------------
# RNG010 — transitive seed taint
# ----------------------------------------------------------------------


class TestRng010:
    UTIL = (
        "from repro.rng import ensure_rng\n"
        "def _fresh():\n"
        "    return ensure_rng(None)\n"
    )

    def test_fires_across_module_boundary(self):
        model = model_of(
            repro__util=self.UTIL,
            repro__api=(
                "from repro.util import _fresh\n"
                "def sample(n):\n"
                "    return [_fresh().random() for _ in range(n)]\n"
            ),
        )
        diags = list(TransitiveUnseededEntropy().check(model))
        assert [d.code for d in diags] == ["RNG010"]
        assert diags[0].path == "src/repro/api.py"
        assert "'sample'" in diags[0].message
        assert "repro.util._fresh" in diags[0].message

    def test_direct_draws_left_to_per_file_rules(self):
        # _fresh itself draws directly: that is RNG001/RNG002 territory,
        # so the project rule must stay silent about it.
        model = model_of(repro__util=self.UTIL)
        assert list(TransitiveUnseededEntropy().check(model)) == []

    def test_seed_parameter_stops_the_taint(self):
        model = model_of(
            repro__util=self.UTIL,
            repro__api=(
                "from repro.util import _fresh\n"
                "def sample(n, seed):\n"
                "    return [_fresh().random() for _ in range(n)]\n"
            ),
        )
        assert list(TransitiveUnseededEntropy().check(model)) == []

    def test_threading_seed_state_stops_the_taint(self):
        model = model_of(
            repro__util=self.UTIL,
            repro__api=(
                "from repro.util import _fresh\n"
                "def sample(cfg):\n"
                "    return _fresh(cfg.seed)\n"
            ),
        )
        assert list(TransitiveUnseededEntropy().check(model)) == []

    def test_private_entry_points_not_reported(self):
        model = model_of(
            repro__util=self.UTIL,
            repro__api=(
                "from repro.util import _fresh\n"
                "def _sample():\n"
                "    return _fresh()\n"
            ),
        )
        assert list(TransitiveUnseededEntropy().check(model)) == []


# ----------------------------------------------------------------------
# PROC010 — payload chase
# ----------------------------------------------------------------------


class TestProc010:
    def test_fires_through_helper_in_other_module(self):
        model = model_of(
            repro__plans=(
                "def build_payload():\n"
                "    return {'fn': lambda x: x}\n"
            ),
            repro__sweep=(
                "from repro.plans import build_payload\n"
                "def enqueue(make_task):\n"
                "    return make_task(payload=build_payload())\n"
            ),
        )
        diags = list(PayloadReachesNonJson().check(model))
        assert [d.code for d in diags] == ["PROC010"]
        assert diags[0].path == "src/repro/sweep.py"
        assert "repro.plans.build_payload" in diags[0].message

    def test_fires_through_opaque_method_call(self):
        model = model_of(
            repro__plans=(
                "class Plan:\n"
                "    def payload(self, config):\n"
                "        return {'edges': {1, 2, 3}}\n"
            ),
            repro__sweep=(
                "def enqueue(plan, make_task):\n"
                "    return make_task(payload=plan.payload({}))\n"
            ),
        )
        diags = list(PayloadReachesNonJson().check(model))
        assert [d.code for d in diags] == ["PROC010"]
        assert "set" in diags[0].message

    def test_json_safe_helper_is_clean(self):
        model = model_of(
            repro__plans=(
                "def build_payload():\n"
                "    return {'k': 4, 'rate': 0.5}\n"
            ),
            repro__sweep=(
                "from repro.plans import build_payload\n"
                "def enqueue(make_task):\n"
                "    return make_task(payload=build_payload())\n"
            ),
        )
        assert list(PayloadReachesNonJson().check(model)) == []


# ----------------------------------------------------------------------
# CHS010 — helper circuit mutation
# ----------------------------------------------------------------------


class TestChs010:
    def test_fires_when_cs_state_passed_into_mutating_helper(self):
        # The helper's parameter name is deliberately generic: the
        # per-file CHS001 cannot see it, only the linked model can.
        model = model_of(
            repro__toolbox=(
                "def rewire(net):\n"
                "    force(net.circuit_switches['cs-E0'])\n"
                "def force(target):\n"
                "    target.connect(('d', 0), ('u', 0))\n"
            ),
        )
        diags = list(HelperCircuitMutation().check(model))
        assert [d.code for d in diags] == ["CHS010"]
        assert "repro.toolbox.force" in diags[0].message
        assert "'target'" in diags[0].message

    def test_fires_on_private_control_plane_call(self):
        model = model_of(
            repro__core__network=(
                "def _force_failover(net, spare):\n"
                "    net.failover('E.0.0', spare)\n"
            ),
            repro__chaosx=(
                "from repro.core.network import _force_failover\n"
                "def smash(net, spare):\n"
                "    _force_failover(net, spare)\n"
            ),
        )
        diags = list(HelperCircuitMutation().check(model))
        assert [d.code for d in diags] == ["CHS010"]
        assert diags[0].path == "src/repro/chaosx.py"
        assert "private control-plane" in diags[0].message

    def test_public_control_plane_api_is_sanctioned(self):
        model = model_of(
            repro__core__network=(
                "def force_failover(net, spare):\n"
                "    net.failover('E.0.0', spare)\n"
            ),
            repro__chaosx=(
                "from repro.core.network import force_failover\n"
                "def smash(net, spare):\n"
                "    force_failover(net, spare)\n"
            ),
        )
        assert list(HelperCircuitMutation().check(model)) == []

    def test_control_plane_callers_exempt(self):
        model = model_of(
            repro__core__patch=(
                "def rewire(net):\n"
                "    force(net.circuit_switches['cs-E0'])\n"
                "def force(target):\n"
                "    target.connect(('d', 0), ('u', 0))\n"
            ),
        )
        assert list(HelperCircuitMutation().check(model)) == []


# ----------------------------------------------------------------------
# IMP001 — import cycles
# ----------------------------------------------------------------------


class TestImp001:
    def test_two_module_cycle_reported_once(self):
        model = model_of(
            repro__a="import repro.b\n",
            repro__b="import repro.a\n",
        )
        diags = list(ImportCycle().check(model))
        assert [d.code for d in diags] == ["IMP001"]
        assert diags[0].path == "src/repro/a.py"
        assert "repro.a -> repro.b -> repro.a" in diags[0].message

    def test_deferred_import_breaks_the_cycle(self):
        model = model_of(
            repro__a="import repro.b\n",
            repro__b="def late():\n    import repro.a\n",
        )
        assert list(ImportCycle().check(model)) == []

    def test_type_checking_import_does_not_count(self):
        model = model_of(
            repro__a="import repro.b\n",
            repro__b=(
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.a\n"
            ),
        )
        assert list(ImportCycle().check(model)) == []


# ----------------------------------------------------------------------
# DEAD001 — dead exports
# ----------------------------------------------------------------------


class TestDead001:
    def test_unreferenced_export_fires(self):
        model = model_of(
            repro__lib=(
                "__all__ = ['used_thing', 'dead_thing']\n"
                "def used_thing():\n"
                "    return 1\n"
                "def dead_thing():\n"
                "    return 2\n"
            ),
            repro__client=(
                "from repro.lib import used_thing\n"
                "def go():\n"
                "    return used_thing()\n"
            ),
        )
        diags = list(DeadExport().check(model))
        assert [d.code for d in diags] == ["DEAD001"]
        assert "'dead_thing'" in diags[0].message

    def test_by_name_string_reference_counts_as_live(self):
        model = model_of(
            repro__workers=(
                "__all__ = ['payload_fn']\n"
                "def payload_fn():\n"
                "    return 1\n"
            ),
            repro__config="WORKER = 'repro.workers:payload_fn'\n",
        )
        assert list(DeadExport().check(model)) == []

    def test_self_registering_class_is_live(self):
        model = model_of(
            repro__rulesx=(
                "from repro.framework import register\n"
                "__all__ = ['MyRule']\n"
                "@register\n"
                "class MyRule:\n"
                "    pass\n"
            ),
        )
        assert list(DeadExport().check(model)) == []

    def test_package_reexport_surface_is_live(self):
        model = model_of(
            repro__pkg=(
                "from .impl import helper\n"
                "__all__ = ['helper']\n"
            ),
            repro__pkg__impl="def helper():\n    return 1\n",
        )
        assert list(DeadExport().check(model)) == []

    def test_unregistered_rule_module_fires(self):
        model = model_of(
            repro__checks__rules="from . import alpha\n",
            repro__checks__rules__alpha="X = 1\n",
            repro__checks__rules__beta="Y = 1\n",
        )
        diags = list(DeadExport().check(model))
        assert [d.code for d in diags] == ["DEAD001"]
        assert diags[0].path == "src/repro/checks/rules/beta.py"
        assert "never imported" in diags[0].message


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------

RICH_SOURCE = (
    "from repro.rng import ensure_rng\n"
    "__all__ = ['sample']\n"
    "def sample(n, seed):\n"
    "    rng = ensure_rng(seed)\n"
    "    return [rng.random() for _ in range(n)]  # repro: noqa[DET002]\n"
)


def _cached_entry(path="src/repro/fixture.py", module="repro.fixture"):
    ctx = FileContext.from_source(
        RICH_SOURCE, path=path, module=module, category="src"
    )
    return CachedFile(diagnostics=(), summary=summarize(ctx))


class TestLintCache:
    def test_round_trip_and_stats(self, tmp_path):
        cache = LintCache(root=tmp_path / "lint")
        entry = _cached_entry()
        assert cache.get(RICH_SOURCE, "repro.fixture", "src", "f.py") is None
        cache.put(RICH_SOURCE, "repro.fixture", "src", entry, "f.py")
        restored = cache.get(RICH_SOURCE, "repro.fixture", "src", "f.py")
        assert restored == entry
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1}

    def test_identical_content_distinct_paths_get_distinct_entries(
        self, tmp_path
    ):
        cache = LintCache(root=tmp_path / "lint")
        cache.put(RICH_SOURCE, None, "src", _cached_entry(path="a.py"), "a.py")
        assert cache.get(RICH_SOURCE, None, "src", "b.py") is None

    def test_rev_bump_invalidates(self, tmp_path, monkeypatch):
        cache = LintCache(root=tmp_path / "lint")
        cache.put(RICH_SOURCE, None, "src", _cached_entry(), "f.py")
        assert cache.get(RICH_SOURCE, None, "src", "f.py") is not None
        monkeypatch.setattr(
            "repro.checks.cache.CHECKS_REV", CHECKS_REV + ".bumped"
        )
        assert cache.get(RICH_SOURCE, None, "src", "f.py") is None

    def test_checks_rev_contains_every_registered_code(self):
        rev = checks_rev()
        assert rev.startswith(CHECKS_REV + ":")
        for code in all_rule_codes():
            assert code in rev

    def test_corrupt_entry_purged_and_treated_as_miss(self, tmp_path):
        cache = LintCache(root=tmp_path / "lint")
        cache.put(RICH_SOURCE, None, "src", _cached_entry(), "f.py")
        entry_path = cache._entry_path(
            cache.key(RICH_SOURCE, None, "src", "f.py")
        )
        entry_path.write_text("{not json", encoding="utf-8")
        assert cache.get(RICH_SOURCE, None, "src", "f.py") is None
        assert not entry_path.exists()
        assert cache.stats.misses == 1


# ----------------------------------------------------------------------
# pipeline: cold vs warm runs
# ----------------------------------------------------------------------


def _mini_repo(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text("def tidy():\n    return 1\n")
    (src / "noisy.py").write_text("import random\nV = random.random()\n")
    return src


class TestLintPipeline:
    def test_cold_run_parses_everything(self, tmp_path):
        src = _mini_repo(tmp_path)
        result = lint_paths([src], cache_dir=tmp_path / "cache")
        assert result.root == tmp_path
        assert result.stats.corpus_files == 2
        assert result.stats.parsed_files == 2
        assert result.stats.cache_misses == 2
        assert [d.code for d in result.diagnostics] == ["RNG001"]
        assert result.diagnostics[0].path == "src/noisy.py"

    def test_warm_run_never_parses(self, tmp_path, monkeypatch):
        src = _mini_repo(tmp_path)
        cold = lint_paths([src], cache_dir=tmp_path / "cache")

        parsed = []
        original = FileContext.from_source.__func__

        def counting(source, **kwargs):
            parsed.append(kwargs.get("path"))
            return original(FileContext, source, **kwargs)

        monkeypatch.setattr(FileContext, "from_source", counting)
        warm = lint_paths([src], cache_dir=tmp_path / "cache")
        assert parsed == []
        assert warm.stats.parsed_files == 0
        assert warm.stats.cache_hits == 2
        assert warm.diagnostics == cold.diagnostics

    def test_edited_file_alone_reparses(self, tmp_path):
        src = _mini_repo(tmp_path)
        lint_paths([src], cache_dir=tmp_path / "cache")
        (src / "noisy.py").write_text("def quiet():\n    return 2\n")
        warm = lint_paths([src], cache_dir=tmp_path / "cache")
        assert warm.stats.parsed_files == 1
        assert warm.stats.cache_hits == 1
        assert warm.diagnostics == []

    def test_stale_path_skipped_not_fatal(self, tmp_path):
        # ``lint --changed`` feeds paths from a git diff; a file
        # deleted or renamed since the diff must be skipped, not crash
        # the run, and must not distort the file accounting.
        src = _mini_repo(tmp_path)
        gone = src / "gone.py"
        result = lint_paths(
            [src, gone], cache_dir=tmp_path / "cache"
        )
        assert result.stats.corpus_files == 2
        assert result.stats.linted_files == 2
        assert result.stats.parsed_files == 2
        assert [d.code for d in result.diagnostics] == ["RNG001"]

    def test_cache_disabled_always_parses(self, tmp_path):
        src = _mini_repo(tmp_path)
        lint_paths([src], cache_dir=tmp_path / "cache")
        result = lint_paths([src], use_cache=False)
        assert result.stats.parsed_files == 2
        assert result.stats.cache_hits == 0
        assert not (tmp_path / ".repro-cache").exists()


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------


class TestRenderers:
    def _diagnostic(self):
        (diag,) = check_source(
            "import random\nrandom.seed(7)\n", path="src/x.py"
        )
        return diag

    def test_json_document_shape(self):
        diag = self._diagnostic()
        doc = json.loads(render_json([diag], stats={"parsed_files": 1}))
        assert doc["count"] == 1
        assert doc["stats"] == {"parsed_files": 1}
        assert doc["diagnostics"][0]["code"] == "RNG001"
        assert doc["diagnostics"][0]["path"] == "src/x.py"

    def test_sarif_envelope(self):
        doc = json.loads(render_sarif([self._diagnostic()]))
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert len(doc["runs"]) == 1

    def test_sarif_driver_carries_full_catalogue(self):
        doc = json.loads(render_sarif([]))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-checks"
        assert [r["id"] for r in driver["rules"]] == all_rule_codes()
        for rule in driver["rules"]:
            assert rule["name"]
            assert rule["shortDescription"]["text"]

    def test_sarif_result_shape_and_rule_index(self):
        doc = json.loads(render_sarif([self._diagnostic()]))
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "RNG001"
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"] == {"startLine": 2, "startColumn": 1}
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["rules"][result["ruleIndex"]]["id"] == "RNG001"

    def test_sarif_syntax_errors_carry_no_rule_index(self):
        (diag,) = check_source("def broken(:\n", path="bad.py")
        doc = json.loads(render_sarif([diag]))
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "SYN001"
        assert "ruleIndex" not in result

    def test_sarif_uris_relative_to_root(self, tmp_path):
        src = _mini_repo(tmp_path)
        result = lint_paths([src], use_cache=False)
        doc = json.loads(
            render_sarif(result.diagnostics, root=result.root)
        )
        (sarif_result,) = doc["runs"][0]["results"]
        uri = sarif_result["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "src/noisy.py"


# ----------------------------------------------------------------------
# summary serialisation
# ----------------------------------------------------------------------


class TestSummaryRoundTrips:
    def test_module_summary_round_trips_through_json(self):
        source = (
            "from repro.rng import ensure_rng\n"
            "from repro.core import network\n"
            "__all__ = ['build', 'enqueue']\n"
            "def build(make_task):\n"
            "    return make_task(payload={'blob': b'raw'})\n"
            "def enqueue(pool, seed):\n"
            "    rng = ensure_rng(seed)\n"
            "    return helper(rng)  # repro: noqa[RNG001]\n"
        )
        ctx = FileContext.from_source(
            source, path="src/repro/m.py", module="repro.m", category="src"
        )
        summary = summarize(ctx)
        restored = ModuleSummary.from_json(
            json.loads(json.dumps(summary.to_json()))
        )
        assert restored == summary

    def test_summary_suppression_spans(self):
        summary = ModuleSummary(
            path="m.py",
            module="repro.m",
            category="src",
            is_package=False,
            noqa={4: frozenset({"DEAD001"})},
        )
        assert summary.is_suppressed(4, "dead001")
        assert not summary.is_suppressed(2, "DEAD001")
        assert summary.is_suppressed(2, "DEAD001", end_line=5)
        assert not summary.is_suppressed(4, "RNG001")

    def test_site_dataclasses_round_trip(self):
        sites = [
            CallSite(
                ref="abs:repro.m.f",
                lineno=3,
                col=5,
                threads_seed=True,
                cs_arg_positions=(0, 2),
            ),
            DrawSite(what="ensure_rng", lineno=4, col=1, threads_seed=False),
            PayloadSite(lineno=5, col=9, call_refs=("local:g",)),
            NonJsonReturn(label="lambda", lineno=6, col=2),
            ImportRecord(target="repro.core.network", fallback="repro.core", lineno=1),
        ]
        for site in sites:
            restored = type(site).from_json(
                json.loads(json.dumps(site.to_json()))
            )
            assert restored == site


# ----------------------------------------------------------------------
# documentation sync
# ----------------------------------------------------------------------


class TestDocSync:
    CATALOGUE = REPO_ROOT / "docs" / "static-analysis.md"

    def test_every_registered_code_documented_exactly_once(self):
        text = self.CATALOGUE.read_text(encoding="utf-8")
        for code in all_rule_codes():
            assert text.count(f"| `{code}` ") == 1, (
                f"{code} must appear exactly once in the rule catalogue"
            )

    def test_syntax_pseudo_code_documented(self):
        text = self.CATALOGUE.read_text(encoding="utf-8")
        assert "SYN001" in text
