"""Shared fixtures: small topologies and networks reused across the suite.

Everything here is function-scoped *except* a few expensive read-only
objects (marked session-scoped) that tests must not mutate; mutating
tests build their own instances.
"""

from __future__ import annotations

import pytest

from repro.core import ShareBackupNetwork
from repro.topology import F10Tree, FatTree


@pytest.fixture
def ft4() -> FatTree:
    """A minimal k=4 fat-tree (fresh per test, safe to mutate)."""
    return FatTree(4)


@pytest.fixture
def ft6() -> FatTree:
    return FatTree(6)


@pytest.fixture
def ft8() -> FatTree:
    return FatTree(8)


@pytest.fixture
def f10_6() -> F10Tree:
    return F10Tree(6)


@pytest.fixture
def sb6() -> ShareBackupNetwork:
    """A k=6, n=1 ShareBackup network (fresh per test)."""
    return ShareBackupNetwork(6, n=1)


@pytest.fixture
def sb6n2() -> ShareBackupNetwork:
    return ShareBackupNetwork(6, n=2)


@pytest.fixture(scope="session")
def ft16_oversub() -> FatTree:
    """The failure study's k=16, 10:1 oversubscribed tree — session-scoped
    and READ-ONLY (building it is ~0.5 s; tests must not mutate it)."""
    return FatTree(16, hosts_per_edge=80)
