"""repro.runner: sharding, caching, journalling, fault tolerance, and
serial/parallel bit-equivalence on a seeded mini Figure 1(a) sweep.

The fault-injection workers live in :mod:`repro.runner.testing` (inside
the package, so pool subprocesses can import them under any start
method); every test runs a real :class:`SweepRunner`, not mocks.
"""

import json
import os

import pytest

from repro.experiments import AffectedSweepStudy, StudyConfig
from repro.runner import (
    EVENTS,
    MISS,
    AvailabilityPoint,
    NullCache,
    ResultCache,
    RunJournal,
    RunnerError,
    SweepRunner,
    Task,
    cache_key,
    plan_shards,
    run_affected_sweep,
    run_availability_sweep,
)
from repro.runner.testing import attempt_count

#: A Fig-1(a) sweep small enough for the test suite (seconds, not minutes).
MINI = StudyConfig(
    k=4, hosts_per_edge=8, num_coflows=20, duration=5.0,
    seed=97, failure_seed=5, failure_samples=2,
)
MINI_RATES = (0.02, 0.05)


def make_runner(tmp_path, **kw):
    """A runner with test-friendly defaults: no real backoff sleeps,
    journal + cache confined to ``tmp_path``."""
    kw.setdefault("cache", ResultCache(tmp_path / "cache"))
    kw.setdefault("journal", RunJournal(None))
    kw.setdefault("sleep", lambda s: None)
    return SweepRunner(**kw)


def tiny_tasks(n=6):
    return [
        Task(f"t{i}", "testing-flaky", {"counter_file": "", "fail_times": 0})
        for i in range(n)
    ]


class TestShardPlanning:
    def test_contiguous_cover_and_balance(self):
        tasks = tiny_tasks(11)
        shards = plan_shards(tasks, jobs=2, shards_per_job=2)
        flat = [t for s in shards for t in s.tasks]
        assert flat == tasks  # order-preserving, exactly once each
        sizes = [s.size for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert len(shards) == 4

    def test_never_more_shards_than_tasks(self):
        assert len(plan_shards(tiny_tasks(3), jobs=8)) == 3

    def test_seeds_are_distinct_and_deterministic(self):
        a = plan_shards(tiny_tasks(8), jobs=4, root_seed=1)
        b = plan_shards(tiny_tasks(8), jobs=4, root_seed=1)
        c = plan_shards(tiny_tasks(8), jobs=4, root_seed=2)
        assert [s.seed for s in a] == [s.seed for s in b]
        assert len({s.seed for s in a}) == len(a)
        assert [s.seed for s in a] != [s.seed for s in c]

    def test_max_shard_size_caps(self):
        shards = plan_shards(tiny_tasks(10), jobs=1, shards_per_job=1,
                             max_shard_size=3)
        assert all(s.size <= 3 for s in shards)

    def test_duplicate_task_ids_rejected(self):
        tasks = tiny_tasks(2) + tiny_tasks(1)
        with pytest.raises(ValueError, match="duplicate task_id"):
            plan_shards(tasks, jobs=2)

    def test_empty_plan(self):
        assert plan_shards([], jobs=4) == []


class TestResultCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("k", {"a": 1})
        assert cache.get("k", key) is MISS
        cache.put("k", key, {"a": 1}, {"out": [1, 2]})
        assert cache.get("k", key) == {"out": [1, 2]}
        assert len(cache) == 1

    def test_key_depends_on_kind_payload_and_version(self):
        base = cache_key("k", {"a": 1})
        assert cache_key("k2", {"a": 1}) != base
        assert cache_key("k", {"a": 2}) != base
        assert cache_key("k", {"a": 1}, version=99) != base
        # key order in the payload dict must not matter
        assert cache_key("k", {"a": 1, "b": 2}) == cache_key("k", {"b": 2, "a": 1})

    def test_key_depends_on_engine_rev(self, monkeypatch):
        base = cache_key("k", {"a": 1})
        assert cache_key("k", {"a": 1}, engine_rev=999) != base
        # The default rev is read late from repro.simulation, so a code
        # change there (modelled by monkeypatching) re-keys everything.
        monkeypatch.setattr("repro.simulation.ENGINE_REV", 999)
        assert cache_key("k", {"a": 1}) != base
        assert cache_key("k", {"a": 1}) == cache_key("k", {"a": 1}, engine_rev=999)

    def test_engine_rev_bump_misses_warm_cache(self, tmp_path, monkeypatch):
        import repro.simulation

        runner = make_runner(tmp_path)
        tasks = [
            Task(f"t{i}", "testing-flaky",
                 {"counter_file": str(tmp_path / f"c{i}"), "fail_times": 0})
            for i in range(3)
        ]
        cold = runner.run(tasks)
        assert cold.summary.cache_hits == 0
        warm = runner.run(tasks)
        assert warm.summary.cache_hits == len(tasks)
        monkeypatch.setattr(
            repro.simulation, "ENGINE_REV", repro.simulation.ENGINE_REV + 1
        )
        bumped = runner.run(tasks)  # same payloads, new engine rev
        assert bumped.summary.cache_hits == 0
        assert bumped.summary.cache_misses == len(tasks)

    def test_corrupt_entry_reads_as_miss_and_is_purged(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("k", {})
        cache.put("k", key, {}, 42)
        path = next(p for p in tmp_path.rglob("*.json"))
        path.write_text("{truncated")
        assert cache.get("k", key) is MISS
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("k", cache_key("k", {"i": i}), {"i": i}, i)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_null_cache_never_hits(self, tmp_path):
        cache = NullCache()
        cache.put("k", "key", {}, 1)
        assert cache.get("k", "key") is MISS
        assert len(cache) == 0


class TestJournal:
    def test_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown journal event"):
            RunJournal(None).record("made_up_event")

    def test_counters_and_events(self):
        journal = RunJournal(None, clock=lambda: 123.0)
        journal.record("run_start", tasks=1)
        journal.record("cache_miss", task_id="t")
        assert journal.counters["run_start"] == 1
        assert journal.events[1] == {"ts": 123.0, "event": "cache_miss",
                                     "task_id": "t"}

    def test_file_is_parseable_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("run_start", tasks=0)
            journal.record("run_finish", tasks=0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in lines] == ["run_start", "run_finish"]


class TestEquivalence:
    """The ISSUE's headline guarantee: parallel == serial, bit for bit."""

    def test_parallel_matches_serial_and_legacy_pipeline(self, tmp_path):
        serial = run_affected_sweep(
            MINI, "node", rates=MINI_RATES,
            runner=make_runner(tmp_path / "s", jobs=1, cache=NullCache()),
        ).values
        parallel = run_affected_sweep(
            MINI, "node", rates=MINI_RATES,
            runner=make_runner(tmp_path / "p", jobs=4, cache=NullCache()),
        ).values
        legacy = AffectedSweepStudy(MINI, rates=MINI_RATES).run("node")

        assert set(parallel) == set(serial) == set(legacy) >= {"fat-tree", "f10"}
        # dataclass equality is exact float equality — bit-identical
        assert parallel == serial == legacy

    def test_parallel_matches_serial_for_links(self, tmp_path):
        serial = run_affected_sweep(
            MINI, "link", rates=MINI_RATES,
            runner=make_runner(tmp_path / "s", jobs=1, cache=NullCache()),
        ).values
        parallel = run_affected_sweep(
            MINI, "link", rates=MINI_RATES,
            runner=make_runner(tmp_path / "p", jobs=3, cache=NullCache()),
        ).values
        assert parallel == serial

    def test_availability_sweep_results_in_point_order(self, tmp_path):
        points = [AvailabilityPoint(4, 1, years=0.5, seed=s) for s in (1, 2)]
        outcome = run_availability_sweep(
            points, runner=make_runner(tmp_path, jobs=2)
        )
        rerun = run_availability_sweep(
            points, runner=make_runner(tmp_path, jobs=1)
        )
        assert outcome.values == rerun.values  # second run from cache
        assert rerun.summary.cache_hits == len(points)


class TestCaching:
    def test_warm_rerun_touches_zero_simulations(self, tmp_path):
        cold = run_affected_sweep(
            MINI, "node", rates=MINI_RATES,
            runner=make_runner(tmp_path, jobs=2),
        )
        assert cold.summary.cache_hits == 0
        assert cold.summary.executed == cold.summary.tasks > 0

        journal = RunJournal(None)
        warm = run_affected_sweep(
            MINI, "node", rates=MINI_RATES,
            runner=make_runner(tmp_path, jobs=2, journal=journal),
        )
        assert warm.values == cold.values
        assert warm.summary.cache_hits == warm.summary.tasks
        assert warm.summary.executed == 0
        assert warm.summary.shards == 0  # no shard ever started
        assert warm.summary.hit_rate == 1.0
        assert journal.counters["shard_start"] == 0
        assert journal.counters["cache_hit"] == warm.summary.tasks

    def test_no_cache_mode_always_recomputes(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1, cache=NullCache())
        tasks = [Task("a", "testing-flaky",
                      {"counter_file": str(tmp_path / "c"), "fail_times": 0})]
        runner.run(tasks)
        second = runner.run(tasks)
        assert second.summary.cache_hits == 0
        assert attempt_count(tmp_path / "c") == 2

    def test_payload_change_changes_key(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1)
        base = {"counter_file": str(tmp_path / "c"), "fail_times": 0}
        runner.run([Task("a", "testing-flaky", base)])
        bumped = runner.run([Task("a", "testing-flaky",
                                  {**base, "value": "other"})])
        assert bumped.summary.cache_misses == 1  # different payload → miss


class TestFaultTolerance:
    def test_flaky_shard_retried_until_success(self, tmp_path):
        counter = tmp_path / "attempts"
        journal = RunJournal(None)
        runner = make_runner(tmp_path, jobs=1, journal=journal, max_retries=2)
        result = runner.run([
            Task("flaky", "testing-flaky",
                 {"counter_file": str(counter), "fail_times": 2}),
        ])
        assert result["flaky"]["attempts"] == 3
        assert attempt_count(counter) == 3
        assert result.summary.retries == 2
        assert result.summary.failed_shards == 0
        assert journal.counters["shard_retry"] == 2
        retry = next(e for e in journal.events if e["event"] == "shard_retry")
        assert "InjectedFault" in retry["error"]
        assert retry["backoff"] == pytest.approx(0.5)

    def test_exhausted_retries_raise_runner_error(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1, max_retries=1)
        always_failing = Task(
            "doomed", "testing-flaky",
            {"counter_file": str(tmp_path / "c"), "fail_times": 99},
        )
        with pytest.raises(RunnerError, match="InjectedFault"):
            runner.run([always_failing])

    def test_raise_on_failure_false_returns_partial(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1, max_retries=0,
                             shards_per_job=1, max_shard_size=1)
        tasks = [
            Task("ok", "testing-flaky",
                 {"counter_file": str(tmp_path / "a"), "fail_times": 0}),
            Task("doomed", "testing-flaky",
                 {"counter_file": str(tmp_path / "b"), "fail_times": 99}),
        ]
        result = runner.run(tasks, raise_on_failure=False)
        assert result["ok"]["attempts"] == 1
        assert "doomed" not in result.results
        assert result.summary.failed_shards == 1

    def test_crashing_subprocess_degrades_to_serial(self, tmp_path):
        """A shard poisonous to the pool but fine in-process must land via
        the serial fallback, not take the sweep down."""
        journal = RunJournal(None)
        runner = make_runner(tmp_path, jobs=2, journal=journal, max_retries=1)
        result = runner.run([
            Task("poison", "testing-subprocess-crash",
                 {"main_pid": os.getpid()}),
        ])
        assert result["poison"]["pid"] == os.getpid()  # ran in-process
        assert result.summary.serial_fallbacks == 1
        assert result.summary.retries == 1
        assert result.summary.failed_shards == 0
        assert journal.counters["shard_serial_fallback"] == 1

    def test_shard_timeout_recovers_the_sweep(self, tmp_path):
        """A hung shard is abandoned at the deadline and (here) finishes
        via the serial fallback; innocents still complete."""
        journal = RunJournal(None)
        runner = make_runner(
            tmp_path, jobs=2, journal=journal, max_retries=0,
            shard_timeout=0.35, shards_per_job=1, max_shard_size=1,
        )
        result = runner.run([
            Task("slow", "testing-sleep", {"seconds": 1.5}),
            Task("fast", "testing-sleep", {"seconds": 0.0}),
        ])
        assert result["slow"]["slept"] == 1.5
        assert result["fast"]["slept"] == 0.0
        assert result.summary.serial_fallbacks >= 1
        assert any(e["event"] == "shard_serial_fallback"
                   for e in journal.events)


class TestJournalSchema:
    def test_end_to_end_journal_schema(self, tmp_path):
        """Run a real mini-sweep with a journal file and validate every
        record against the documented schema."""
        path = tmp_path / "journal.jsonl"
        outcome = run_affected_sweep(
            MINI, "node", rates=(0.02,),
            runner=make_runner(tmp_path, jobs=2, journal=RunJournal(path)),
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]

        for record in records:
            assert record["event"] in EVENTS
            assert isinstance(record["ts"], float)
        assert records[0]["event"] == "run_start"
        assert records[-1]["event"] == "run_finish"

        for record in records:
            if record["event"] in ("cache_hit", "cache_miss", "cache_store"):
                assert record["task_id"]
            if record["event"] in ("shard_start", "shard_finish"):
                assert isinstance(record["shard_id"], int)
                assert isinstance(record["attempt"], int)

        # the run_finish record embeds the summary verbatim
        finish = records[-1]
        for field, value in outcome.summary.to_dict().items():
            assert finish[field] == value

        # journal counters agree with the summary
        events = [r["event"] for r in records]
        assert events.count("cache_miss") == outcome.summary.cache_misses
        assert events.count("shard_start") == outcome.summary.shards
        assert events.count("shard_finish") == outcome.summary.shards
        assert events.count("cache_store") == outcome.summary.tasks


class TestRunnerValidation:
    def test_bad_constructor_args_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=-1)
        with pytest.raises(ValueError):
            SweepRunner(max_retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(shard_timeout=0)

    def test_empty_task_list(self, tmp_path):
        result = make_runner(tmp_path, jobs=2).run([])
        assert result.results == {}
        assert result.summary.tasks == 0

    def test_task_validation(self):
        with pytest.raises(ValueError, match="task_id"):
            Task("", "kind", {})
        with pytest.raises(ValueError, match="kind"):
            Task("id", "", {})


class TestWorkers:
    """Direct coverage of the worker-dispatch API (resolve/execute)."""

    def test_resolve_worker_alias(self):
        from repro.runner.testing import flaky_payload
        from repro.runner.workers import resolve_worker

        assert resolve_worker("testing-flaky") is flaky_payload

    def test_resolve_worker_explicit_path(self):
        from repro.runner.testing import sleep_payload
        from repro.runner.workers import resolve_worker

        fn = resolve_worker("repro.runner.testing:sleep_payload")
        assert fn is sleep_payload

    def test_resolve_worker_rejects_garbage(self):
        from repro.runner.workers import resolve_worker

        with pytest.raises(ValueError, match="unknown worker kind"):
            resolve_worker("not-an-alias-or-path")
        with pytest.raises(ValueError, match="does not exist"):
            resolve_worker("repro.runner.testing:no_such_worker")

    def test_execute_task_runs_in_process(self, tmp_path):
        from repro.runner.workers import execute_task

        counter = tmp_path / "attempts"
        result = execute_task(
            "testing-flaky",
            {"counter_file": str(counter), "fail_times": 0, "value": "v"},
        )
        assert result == {"attempts": 1, "value": "v"}
        assert attempt_count(counter) == 1

    def test_shard_seed_scoped_to_shard_execution(self):
        from repro.runner.workers import execute_shard, shard_seed

        assert shard_seed() is None
        shard = {
            "seed": 1234,
            "tasks": [
                {
                    "task_id": "t0",
                    "kind": "repro.runner.testing:sleep_payload",
                    "payload": {"seconds": 0.0},
                }
            ],
        }
        results = execute_shard(shard)
        assert results == {"t0": {"slept": 0.0}}
        # The ambient seed is cleared once the shard finishes.
        assert shard_seed() is None
