"""Seed plumbing: ensure_rng / derive_seed, and the end-to-end RNG
threading through the stochastic components (FailureInjector, workload
distributions, CoflowTraceGenerator) — no module-global randomness."""

import random

import numpy as np
import pytest

from repro.failures import FailureInjector
from repro.rng import derive_seed, ensure_rng
from repro.topology.fattree import FatTree
from repro.workload.coflow_trace import CoflowTraceGenerator, WorkloadConfig
from repro.workload.distributions import (
    bounded_pareto_bytes,
    categorical,
    exponential_gaps,
    lognormal_bytes,
    sample_without_replacement,
)


class TestEnsureRng:
    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(5).integers(1 << 30) == ensure_rng(5).integers(1 << 30)

    def test_stdlib_random_is_deterministic(self):
        a = ensure_rng(random.Random(3)).integers(1 << 30)
        b = ensure_rng(random.Random(3)).integers(1 << 30)
        assert a == b

    def test_none_gives_entropy_stream(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot build a Generator"):
            ensure_rng("seed")


class TestDeriveSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "shard", 3) == derive_seed(1, "shard", 3)
        assert derive_seed(1, "shard", 3) != derive_seed(1, "shard", 4)
        assert derive_seed(1, "shard", 3) != derive_seed(2, "shard", 3)
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_fits_numpy_seed_range(self):
        for i in range(64):
            seed = derive_seed(0, i)
            assert 0 <= seed < 2**63
            np.random.default_rng(seed)  # must be a legal seed

    def test_no_collisions_across_a_big_sweep(self):
        seeds = {derive_seed(0, "shard", i) for i in range(10_000)}
        assert len(seeds) == 10_000


class TestDistributionsAcceptAnySeed:
    """Every distribution takes an int, a Generator, or a random.Random."""

    def test_int_seed_reproducible(self):
        assert np.array_equal(
            exponential_gaps(11, 2.0, 5), exponential_gaps(11, 2.0, 5)
        )
        assert lognormal_bytes(11, 1e6) == lognormal_bytes(11, 1e6)
        assert bounded_pareto_bytes(11, 1e6, 1e9) == bounded_pareto_bytes(
            11, 1e6, 1e9
        )
        assert categorical(11, {"a": 0.5, "b": 0.5}) == categorical(
            11, {"a": 0.5, "b": 0.5}
        )
        assert sample_without_replacement(11, 100, 5) == (
            sample_without_replacement(11, 100, 5)
        )

    def test_stdlib_random_accepted(self):
        gaps = exponential_gaps(random.Random(1), 2.0, 5)
        assert np.array_equal(gaps, exponential_gaps(random.Random(1), 2.0, 5))

    def test_shared_generator_advances(self):
        rng = np.random.default_rng(0)
        assert lognormal_bytes(rng, 1e6) != lognormal_bytes(rng, 1e6)


class TestFailureInjectorSeeding:
    def test_equivalent_streams_from_any_seed_type(self):
        tree = FatTree(4, hosts_per_edge=2)
        by_int = FailureInjector(tree, seed=9)
        by_gen = FailureInjector(tree, seed=np.random.default_rng(9))
        assert (
            by_int.node_failures_at_rate(0.1)
            == by_gen.node_failures_at_rate(0.1)
        )

    def test_stdlib_random_seed_accepted(self):
        tree = FatTree(4, hosts_per_edge=2)
        a = FailureInjector(tree, seed=random.Random(4)).single_node_failure()
        b = FailureInjector(tree, seed=random.Random(4)).single_node_failure()
        assert a == b


class TestTraceGeneratorSeeding:
    def test_explicit_rng_overrides_config_seed(self):
        cfg = WorkloadConfig(num_racks=8, num_coflows=10, seed=1)
        default = CoflowTraceGenerator(cfg).generate()
        same_seed = CoflowTraceGenerator(cfg, rng=1).generate()
        other = CoflowTraceGenerator(cfg, rng=2).generate()
        assert default == same_seed
        assert other != default

    def test_stdlib_random_threads_through(self):
        cfg = WorkloadConfig(num_racks=8, num_coflows=10, seed=1)
        a = CoflowTraceGenerator(cfg, rng=random.Random(5)).generate()
        b = CoflowTraceGenerator(cfg, rng=random.Random(5)).generate()
        assert a == b

    def test_no_module_global_random_in_src(self):
        """The structural guarantee: nothing under src/repro draws from
        module-global random state (it would be invisible to the sweep
        runner's seed derivation)."""
        import re
        from pathlib import Path

        import repro

        src = Path(repro.__file__).parent
        offenders = []
        pattern = re.compile(
            r"(?<![\w.])(random\.(random|randint|choice|shuffle|sample|uniform|"
            r"getrandbits|randrange)|np\.random\.(rand|randn|randint|choice|"
            r"seed|random))\("
        )
        for path in src.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
