"""The numeric kernel analyzer: NUM001–NUM004 (repro.checks.numeric).

Three layers, mirroring the analyzer's own structure:

* extraction — ``collect_kernel_specs`` / ``analyze_kernels`` over
  synthetic fixtures, plus JSON round-trips of the cached facts;
* judgement — the project rules over small in-repo-shaped packages
  (a ``repro/simulation/columnar.py`` written into a temp dir so the
  module name, and therefore the rule scope, resolves for real);
* the seeded-bug gauntlet — four mutations of the *actual* shipped
  water-fill kernel, each of which must trip exactly its rule, plus the
  warm-cache replay that must reproduce the findings with zero parses.
"""

from pathlib import Path
from textwrap import dedent

import pytest

from repro.checks import lint_paths
from repro.checks.context import FileContext
from repro.checks.numeric import (
    KernelCall,
    NumericIssue,
    NumericSummary,
    ParsedKernelSpec,
    analyze_kernels,
    collect_kernel_specs,
)
from repro.simulation.kernels import (
    KERNEL_REGISTRY,
    ArraySpec,
    KernelSpec,
    kernel,
)

COLUMNAR = Path(__file__).resolve().parent.parent / (
    "src/repro/simulation/columnar.py"
)


def ctx_for(source, module="repro.simulation.columnar"):
    return FileContext.from_source(
        dedent(source), path="columnar.py", module=module
    )


def lint_package(tmp_path, sources):
    """Lint ``{relpath: source}`` laid out as a repro package tree."""
    paths = []
    for rel, source in sources.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        for ancestor in target.parents:
            if ancestor == tmp_path:
                break
            init = ancestor / "__init__.py"
            if not init.exists():
                init.write_text("")
        target.write_text(dedent(source))
        paths.append(target)
    return lint_paths(paths, cache_dir=tmp_path / ".cache")


def codes(result):
    return {d.code for d in result.diagnostics}


# ----------------------------------------------------------------------
# the runtime registry decorator
# ----------------------------------------------------------------------


class TestKernelRegistry:
    def test_registration_is_inert_and_recorded(self):
        spec: ArraySpec = ("float64", ("n",))

        @kernel(arrays={"x": spec}, returns=("float64", ("n",)))
        def doubled(x):
            return x + x

        key = f"{doubled.__module__}.{doubled.__qualname__}"
        assert doubled.__repro_kernel__ is True
        assert doubled(2) == 4  # the function object is unchanged
        recorded = KERNEL_REGISTRY[key]
        assert isinstance(recorded, KernelSpec)
        assert recorded.arrays == {"x": ("float64", ("n",))}
        assert recorded.returns == ("float64", ("n",))

    def test_bare_kernel_registers_empty_contract(self):
        @kernel()
        def scalar_only(a, b):
            return a + b

        key = f"{scalar_only.__module__}.{scalar_only.__qualname__}"
        assert KERNEL_REGISTRY[key].arrays == {}
        assert KERNEL_REGISTRY[key].returns is None

    def test_shipped_kernels_are_registered(self):
        import repro.simulation.columnar  # noqa: F401
        import repro.simulation.fairshare  # noqa: F401

        assert (
            "repro.simulation.columnar._waterfill_passes" in KERNEL_REGISTRY
        )
        assert (
            "repro.simulation.fairshare._solve_component" in KERNEL_REGISTRY
        )


# ----------------------------------------------------------------------
# spec parsing (decorator literals, no import)
# ----------------------------------------------------------------------


class TestCollectKernelSpecs:
    def test_parses_dtypes_dims_and_offsets(self):
        ctx = ctx_for(
            """
            from .kernels import kernel

            @kernel(
                arrays={
                    "m": ("int64", ("rows", "width")),
                    "r": ("float64", ("segments+1",)),
                    "w": ("float64", (8,)),
                },
                returns=("float64", ("rows",)),
            )
            def f(m, r, w):
                pass
            """
        )
        specs = collect_kernel_specs(ctx)
        spec = specs["f"]
        assert isinstance(spec, ParsedKernelSpec)
        assert spec.arrays["m"] == ("int64", (("rows", 0), ("width", 0)))
        assert spec.arrays["r"] == ("float64", (("segments", 1),))
        assert spec.arrays["w"] == ("float64", (8,))
        assert spec.returns == ("float64", (("rows", 0),))

    def test_bare_decorator_and_non_kernels(self):
        ctx = ctx_for(
            """
            from .kernels import kernel

            @kernel()
            def bare(xs):
                pass

            def plain(xs):
                pass
            """
        )
        specs = collect_kernel_specs(ctx)
        assert specs["bare"].arrays == {}
        assert "plain" not in specs

    def test_computed_specs_degrade_to_unknown(self):
        ctx = ctx_for(
            """
            from .kernels import kernel

            DIMS = ("rows",)

            @kernel(arrays={"x": ("float64", DIMS)})
            def f(x):
                pass
            """
        )
        # The dims tuple is not a literal: dtype survives, dims do not.
        assert collect_kernel_specs(ctx)["f"].arrays["x"] == (
            "float64",
            None,
        )


# ----------------------------------------------------------------------
# cached-fact JSON round-trips
# ----------------------------------------------------------------------


class TestFactRoundTrips:
    def test_summary_round_trip(self):
        summary = NumericSummary(
            issues=(
                NumericIssue(
                    kind="narrowing", lineno=3, col=5, detail="x into y"
                ),
                NumericIssue(kind="shape", lineno=9, col=1, detail="a vs b"),
            ),
            unresolved_calls=(
                KernelCall(ref="abs:repro.simulation.x.f", lineno=4, col=2),
            ),
        )
        assert NumericSummary.from_json(summary.to_json()) == summary

    def test_empty_summary_round_trip(self):
        assert NumericSummary.from_json(NumericSummary().to_json()) == (
            NumericSummary()
        )

    def test_real_kernel_facts_survive_the_cache_shape(self):
        import json

        ctx = FileContext.from_source(
            COLUMNAR.read_text(encoding="utf-8"),
            path=str(COLUMNAR),
            module="repro.simulation.columnar",
        )
        facts = analyze_kernels(ctx)
        assert set(facts) == {
            "_waterfill_passes",
            "_column_min",
            "_column_any",
        }
        for name, summary in facts.items():
            assert summary.issues == (), (name, summary.issues)
            wire = json.loads(json.dumps(summary.to_json()))
            assert NumericSummary.from_json(wire) == summary


# ----------------------------------------------------------------------
# extraction findings on synthetic kernels
# ----------------------------------------------------------------------


def kernel_issues(source, name="f"):
    summary = analyze_kernels(ctx_for(source))[name]
    return [(issue.kind, issue.detail) for issue in summary.issues]


class TestAbstractInterpretation:
    def test_clean_kernel_has_no_issues(self):
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(arrays={
                    "a": ("float64", ("n",)),
                    "b": ("float64", ("n",)),
                    "out": ("float64", ("n",)),
                })
                def f(a, b, out):
                    np.divide(a, b, out=out)
                    np.maximum(out, 0.0, out=out)
                    total = out.sum()
                    alias = out
                    return alias[0] + total
                """
            )
            == []
        )

    def test_float_into_int_out_is_narrowing(self):
        issues = kernel_issues(
            """
            import numpy as np
            from .kernels import kernel

            @kernel(arrays={
                "a": ("int64", ("n",)),
                "b": ("int64", ("n",)),
            })
            def f(a, b):
                np.divide(a, b, out=a)
            """
        )
        assert [kind for kind, _ in issues] == ["narrowing"]

    def test_subscript_store_narrowing(self):
        issues = kernel_issues(
            """
            import numpy as np
            from .kernels import kernel

            @kernel(arrays={
                "a": ("float64", ("n",)),
                "out": ("int32", ("n",)),
            })
            def f(a, out):
                out[:] = a
            """
        )
        assert [kind for kind, _ in issues] == ["narrowing"]

    def test_symbolic_broadcast_mismatch(self):
        issues = kernel_issues(
            """
            import numpy as np
            from .kernels import kernel

            @kernel(arrays={
                "m": ("float64", ("rows", "width")),
                "v": ("float64", ("rows",)),
            })
            def f(m, v):
                return m + v
            """
        )
        assert [kind for kind, _ in issues] == ["shape"]
        assert "(rows, width) vs (rows,)" in issues[0][1]

    def test_newaxis_fixes_the_broadcast(self):
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(arrays={
                    "m": ("float64", ("rows", "width")),
                    "v": ("float64", ("rows",)),
                })
                def f(m, v):
                    return m + v[:, None]
                """
            )
            == []
        )

    def test_shape_arithmetic_unifies_with_offsets(self):
        # remaining.shape[0] - 1 == segments, so minlength=segments + 1
        # lines the bincount result back up with the declared arrays.
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(arrays={
                    "ids": ("int64", ("n",)),
                    "remaining": ("float64", ("segments+1",)),
                })
                def f(ids, remaining):
                    num_segments = remaining.shape[0] - 1
                    counts = np.bincount(ids, minlength=num_segments + 1)
                    remaining -= counts
                """
            )
            == []
        )

    def test_axis_out_of_range(self):
        issues = kernel_issues(
            """
            import numpy as np
            from .kernels import kernel

            @kernel(arrays={"m": ("float64", ("rows", "width"))})
            def f(m):
                return np.sum(m, axis=2)
            """
        )
        assert [kind for kind, _ in issues] == ["shape"]

    def test_view_aliased_out_is_a_hazard(self):
        issues = kernel_issues(
            """
            import numpy as np
            from .kernels import kernel

            @kernel(arrays={"m": ("float64", ("rows", "width"))})
            def f(m):
                acc = m[:, 0]
                np.minimum(acc, m[:, 1], out=acc)
                return m.sum()
            """
        )
        assert "alias" in [kind for kind, _ in issues]

    def test_copy_breaks_the_alias(self):
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(arrays={"m": ("float64", ("rows", "width"))})
                def f(m):
                    acc = m[:, 0].copy()
                    np.minimum(acc, m[:, 1], out=acc)
                    return m.sum()
                """
            )
            == []
        )

    def test_disjoint_columns_do_not_alias(self):
        # Writes to column 0, reads column 1: provably disjoint.
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(arrays={
                    "m": ("float64", ("rows", "width")),
                    "v": ("float64", ("rows",)),
                })
                def f(m, v):
                    np.maximum(m[:, 0], v, out=m[:, 0])
                    return m[:, 1]
                """
            )
            == []
        )

    def test_nopython_constructs(self):
        issues = kernel_issues(
            """
            from .kernels import kernel

            @kernel()
            def f(xs):
                seen = {}
                try:
                    return sorted(xs)
                except TypeError:
                    return xs
            """
        )
        kinds = [kind for kind, _ in issues]
        assert kinds.count("nopython") == len(kinds) == 3  # dict, try, call
        assert any("sorted" in detail for _, detail in issues)

    def test_raise_context_calls_are_exempt(self):
        assert (
            kernel_issues(
                """
                from .kernels import kernel

                @kernel()
                def f(xs):
                    if not xs:
                        raise RuntimeError("empty input")
                    return xs[0]
                """
            )
            == []
        )

    def test_local_kernel_calls_are_safe_and_shapes_flow(self):
        assert (
            kernel_issues(
                """
                import numpy as np
                from .kernels import kernel

                @kernel(
                    arrays={"m": ("float64", ("rows", "width"))},
                    returns=("float64", ("rows",)),
                )
                def col_min(m):
                    out = m[:, 0].copy()
                    for column in range(1, m.shape[1]):
                        np.minimum(out, m[:, column], out=out)
                    return out

                @kernel(arrays={"m": ("float64", ("rows", "width"))})
                def f(m):
                    level = col_min(m)
                    return m - level[:, None]
                """
            )
            == []
        )


# ----------------------------------------------------------------------
# whole-program judgement (rule scope, cross-module calls)
# ----------------------------------------------------------------------


SAFE_KERNEL = """
    import numpy as np
    from .kernels import kernel

    @kernel(arrays={"a": ("float64", ("n",)), "b": ("float64", ("n",))})
    def f(a, b):
        np.divide(a, b, out=b)
"""


class TestNumericRules:
    def test_scope_excludes_other_modules(self, tmp_path):
        bad = """
            from .kernels import kernel

            @kernel()
            def f(xs):
                return {x: x for x in xs}
        """
        in_scope = lint_package(
            tmp_path / "a", {"repro/simulation/columnar.py": bad}
        )
        out_of_scope = lint_package(
            tmp_path / "b", {"repro/simulation/elsewhere.py": bad}
        )
        assert "NUM004" in codes(in_scope)
        assert "NUM004" not in codes(out_of_scope)

    def test_cross_module_non_kernel_call_flagged(self, tmp_path):
        result = lint_package(
            tmp_path,
            {
                "repro/simulation/columnar.py": """
                    from .kernels import kernel
                    from .helpers import clamp

                    @kernel()
                    def f(x):
                        return clamp(x)
                """,
                "repro/simulation/helpers.py": """
                    def clamp(x):
                        return max(x, 0)
                """,
            },
        )
        hits = [d for d in result.diagnostics if d.code == "NUM004"]
        assert len(hits) == 1
        assert "clamp" in hits[0].message
        assert "columnar.py" in hits[0].path

    def test_cross_module_kernel_call_allowed(self, tmp_path):
        result = lint_package(
            tmp_path,
            {
                "repro/simulation/columnar.py": """
                    from .kernels import kernel
                    from .helpers import clamp

                    @kernel()
                    def f(x):
                        return clamp(x)
                """,
                "repro/simulation/helpers.py": """
                    from .kernels import kernel

                    @kernel()
                    def clamp(x):
                        return max(x, 0)
                """,
            },
        )
        assert "NUM004" not in codes(result)

    def test_noqa_suppresses_with_audit_trail(self, tmp_path):
        result = lint_package(
            tmp_path,
            {
                "repro/simulation/columnar.py": """
                    from .kernels import kernel

                    @kernel()
                    def f(xs):
                        # interim: dict goes away with the dense remap
                        seen = {}  # repro: noqa[NUM004]
                        return seen
                """,
            },
        )
        assert "NUM004" not in codes(result)


# ----------------------------------------------------------------------
# the seeded-bug gauntlet over the real shipped kernel
# ----------------------------------------------------------------------


MUTATIONS = {
    "NUM001": (
        "        np.divide(remaining, counts, out=share)",
        "        share32 = np.empty(share.shape[0], dtype=np.float32)\n"
        "        np.divide(remaining, counts, out=share32)\n"
        "        share[:] = share32",
    ),
    "NUM002": (
        "        tight = shares == level[:, None]",
        "        tight = shares == level",
    ),
    "NUM003": (
        "    out = matrix[:, 0].copy()",
        "    out = matrix[:, 0]",
    ),
    "NUM004": (
        "    rows, width = seg_matrix.shape",
        "    cache = {}\n    rows, width = seg_matrix.shape",
    ),
}


def mutated_columnar(code):
    source = COLUMNAR.read_text(encoding="utf-8")
    old, new = MUTATIONS[code]
    assert old in source, f"mutation anchor for {code} drifted"
    return source.replace(old, new)


class TestSeededBugs:
    @pytest.mark.parametrize("code", sorted(MUTATIONS))
    def test_mutation_trips_exactly_its_rule(self, tmp_path, code):
        result = lint_package(
            tmp_path,
            {"repro/simulation/columnar.py": mutated_columnar(code)},
        )
        num_codes = {c for c in codes(result) if c.startswith("NUM")}
        assert code in num_codes
        # The mutation must not shotgun unrelated kernel rules; NUM002's
        # broken broadcast legitimately cascades (the mis-shaped mask
        # feeds a 2-D bincount) but stays within its own code.
        assert num_codes == {code}

    def test_shipped_kernel_is_clean(self, tmp_path):
        result = lint_package(
            tmp_path,
            {
                "repro/simulation/columnar.py": COLUMNAR.read_text(
                    encoding="utf-8"
                )
            },
        )
        assert not {c for c in codes(result) if c.startswith("NUM")}

    def test_warm_replay_reproduces_findings_without_parsing(
        self, tmp_path
    ):
        target = tmp_path / "repro" / "simulation" / "columnar.py"
        target.parent.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (target.parent / "__init__.py").write_text("")
        target.write_text(mutated_columnar("NUM003"))
        cache = tmp_path / ".cache"
        cold = lint_paths([target], cache_dir=cache)
        warm = lint_paths([target], cache_dir=cache)
        assert cold.stats.parsed_files == 1
        assert warm.stats.parsed_files == 0
        as_tuples = lambda result: [  # noqa: E731
            (d.code, d.path, d.line, d.col, d.message)
            for d in result.diagnostics
        ]
        assert as_tuples(warm) == as_tuples(cold)
        assert any(d.code == "NUM003" for d in warm.diagnostics)
