"""Controller tests: detection, recovery, capacity limits, circuit-switch
failure policy, and controller replication."""

import pytest

from repro.core import (
    ControllerCluster,
    EpochFencedError,
    HumanInterventionRequired,
    RecoveryTimeModel,
    ShareBackupController,
    ShareBackupNetwork,
)


@pytest.fixture
def ctrl(sb6) -> ShareBackupController:
    return ShareBackupController(sb6)


class TestKeepAlive:
    def test_heartbeats_keep_switch_alive(self, sb6, ctrl):
        for t in (0.001, 0.002, 0.003):
            ctrl.heartbeat("E.0.0", t)
        assert "E.0.0" not in ctrl.detect_silent_switches(0.004)

    def test_silence_detected_after_threshold(self, sb6, ctrl):
        ctrl.heartbeat("E.0.0", 0.0)
        deadline = ctrl.miss_threshold * ctrl.timing.probe_interval
        assert "E.0.0" not in ctrl.detect_silent_switches(deadline * 0.9)
        assert "E.0.0" in ctrl.detect_silent_switches(deadline * 1.5)

    def test_unknown_switch_heartbeat_rejected(self, ctrl):
        with pytest.raises(KeyError):
            ctrl.heartbeat("SW.imaginary", 0.0)

    def test_spares_not_watched(self, sb6, ctrl):
        silent = ctrl.detect_silent_switches(10.0)
        assert all(not s.startswith(("BE.", "BA.", "BC.")) for s in silent)

    def test_detection_follows_assignment(self, sb6, ctrl):
        """After failover the *spare* is watched for the slot."""
        ctrl.handle_node_failure("E.0.0")
        for name in sb6.physical_health:
            ctrl.heartbeat(name, 100.0)
        ctrl._last_heartbeat["BE.0.0"] = 0.0  # backup goes silent
        assert "BE.0.0" in ctrl.detect_silent_switches(100.0)


class TestNodeRecovery:
    def test_basic_failover(self, sb6, ctrl):
        report = ctrl.handle_node_failure("A.3.1")
        assert report.kind == "node"
        assert report.replaced == (("A.3.1", "BA.3.0"),)
        assert report.fully_recovered
        assert report.circuit_switches_touched == 6
        sb6.verify_fattree_equivalence()

    def test_failed_marked_unhealthy(self, sb6, ctrl):
        ctrl.handle_node_failure("A.3.1")
        assert not sb6.physical_health["A.3.1"]

    def test_recovery_time_is_submillisecond_plus_probe(self, ctrl):
        report = ctrl.handle_node_failure("C.0")
        # probe interval dominates; everything else is sub-ms
        assert report.recovery_time < 2 * ctrl.timing.probe_interval

    def test_spare_exhaustion_reported(self, sb6, ctrl):
        ctrl.handle_node_failure("E.0.0")
        report = ctrl.handle_node_failure("E.0.1")  # n=1: pool empty
        assert not report.fully_recovered
        assert report.unrecoverable == ("E.0.1",)
        assert report.replaced == ()

    def test_n_failures_per_group_capacity(self, sb6n2):
        """Section 5.1: n concurrent switch failures per group."""
        ctrl = ShareBackupController(sb6n2)
        r1 = ctrl.handle_node_failure("C.0")
        r2 = ctrl.handle_node_failure("C.3")  # same group FG.core.0
        assert r1.fully_recovered and r2.fully_recovered
        r3 = ctrl.handle_node_failure("C.6")
        assert not r3.fully_recovered
        sb6n2.verify_fattree_equivalence()

    def test_failures_in_different_groups_independent(self, sb6, ctrl):
        for logical in ("E.0.0", "E.1.0", "A.0.0", "C.0", "C.1"):
            assert ctrl.handle_node_failure(logical).fully_recovered
        sb6.verify_fattree_equivalence()

    def test_log_written(self, ctrl):
        ctrl.handle_node_failure("E.0.0")
        assert any("E.0.0" in line for line in ctrl.log)


class TestLinkRecovery:
    def test_both_sides_replaced(self, sb6, ctrl):
        report = ctrl.handle_link_failure(
            ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0))
        )
        assert dict(report.replaced) == {"E.0.0": "BE.0.0", "A.0.0": "BA.0.0"}
        sb6.verify_fattree_equivalence()

    def test_host_link_replaces_only_switch(self, sb6, ctrl):
        report = ctrl.handle_link_failure(
            ("H.0.0.0", ("nic", 0)), ("E.0.0", ("host", 0))
        )
        assert dict(report.replaced) == {"E.0.0": "BE.0.0"}
        sb6.verify_fattree_equivalence()

    def test_diagnosis_returns_healthy_side(self, sb6, ctrl):
        ctrl.handle_link_failure(
            ("E.0.0", ("up", 0)),
            ("A.0.0", ("down", 0)),
            true_faulty_interfaces=((("E.0.0", ("up", 0))),),
        )
        results = ctrl.run_pending_diagnoses()
        assert results[0].condemned_devices() == ["E.0.0"]
        assert results[0].exonerated_devices() == ["A.0.0"]
        # exonerated switch is back in the agg spare pool
        assert "A.0.0" in sb6.group_of("A.0.1").spares
        # condemned switch stays offline
        assert "E.0.0" in sb6.group_of("E.0.1").offline

    def test_cable_fault_exonerates_both(self, sb6, ctrl):
        ctrl.handle_link_failure(
            ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), true_faulty_interfaces=()
        )
        results = ctrl.run_pending_diagnoses()
        assert sorted(results[0].exonerated_devices()) == ["A.0.0", "E.0.0"]

    def test_repair_reinstates_condemned(self, sb6, ctrl):
        ctrl.handle_link_failure(
            ("E.0.0", ("up", 0)),
            ("A.0.0", ("down", 0)),
            true_faulty_interfaces=((("E.0.0", ("up", 0))),),
        )
        ctrl.run_pending_diagnoses()
        ctrl.repair("E.0.0")
        group = sb6.group_of("E.0.1")
        assert "E.0.0" in group.spares
        assert sb6.physical_health["E.0.0"]
        # and its fault annotation is cleared
        assert all(dev != "E.0.0" for dev, _ in sb6.interface_faults)

    def test_consumes_one_spare_after_diagnosis(self, sb6, ctrl):
        """Paper: 'we consume only one backup switch at the faulty end'."""
        ctrl.handle_link_failure(
            ("E.1.0", ("up", 1)),
            ("A.1.1", ("down", 0)),
            true_faulty_interfaces=((("A.1.1", ("down", 0))),),
        )
        ctrl.run_pending_diagnoses()
        edge_group = sb6.group_of("E.1.0")
        agg_group = sb6.group_of("A.1.1")
        assert edge_group.available_spares == 1  # E.1.0 returned
        assert agg_group.available_spares == 0  # BA.1.0 serving, A.1.1 offline


class TestCircuitSwitchPolicy:
    def test_report_burst_halts_recovery(self, sb6):
        ctrl = ShareBackupController(sb6, cs_report_threshold=3, cs_report_window=1.0)
        # three reports mapping to circuit switch CS.2.0.0 within the window
        for i, edge in enumerate(("E.0.0", "E.0.1", "E.0.2")):
            try:
                ctrl.handle_link_failure(
                    (edge, ("up", 0)), (f"A.0.{i}", ("down", 0)), now=0.1 * i
                )
            except HumanInterventionRequired:
                pass
        assert ctrl.halted
        with pytest.raises(HumanInterventionRequired):
            ctrl.handle_node_failure("C.0")

    def test_old_reports_age_out(self, sb6):
        ctrl = ShareBackupController(sb6, cs_report_threshold=3, cs_report_window=0.5)
        ctrl.handle_link_failure(("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), now=0.0)
        ctrl.handle_link_failure(("E.0.1", ("up", 0)), ("A.0.1", ("down", 0)), now=10.0)
        assert not ctrl.halted

    def test_reboot_restores_config_and_resumes(self, sb6):
        ctrl = ShareBackupController(sb6, cs_report_threshold=2, cs_report_window=1.0)
        ctrl.snapshot_intended_configs()
        cs = sb6.circuit_switches["CS.2.0.0"]
        ctrl.handle_link_failure(("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), now=0.0)
        try:
            ctrl.handle_link_failure(
                ("E.0.1", ("up", 0)), ("A.0.1", ("down", 0)), now=0.1
            )
        except HumanInterventionRequired:
            pass
        assert ctrl.halted
        # the suspect circuit switch is wiped and rebooted
        cs.up = False
        for port in list(cs.mapping()):
            cs.disconnect(port)
        cs.up = True
        ctrl.circuit_switch_rebooted("CS.2.0.0")
        assert not ctrl.halted
        assert cs.mapping()  # configuration re-pushed
        assert ctrl.handle_node_failure("C.0").fully_recovered


class TestCapacitySummary:
    def test_summary_numbers(self, sb6, ctrl):
        s = ctrl.capacity_summary()
        assert s["failure_groups"] == 15
        assert s["backup_ratio"] == pytest.approx(1 / 3)
        assert s["circuit_ports_per_side"] == 6


class TestControllerCluster:
    def test_initial_primary(self):
        c = ControllerCluster()
        assert c.primary == "ctrl-0"
        assert c.available

    def test_failover_elects_next(self):
        c = ControllerCluster()
        c.fail_replica("ctrl-0")
        assert c.primary == "ctrl-1"

    def test_all_dead(self):
        c = ControllerCluster(("a", "b"))
        c.fail_replica("a")
        c.fail_replica("b")
        assert c.primary is None and not c.available

    def test_restore_reelects_deterministically(self):
        c = ControllerCluster()
        c.fail_replica("ctrl-0")
        c.restore_replica("ctrl-0")
        assert c.primary == "ctrl-0"

    def test_election_counter(self):
        c = ControllerCluster()
        start = c.elections
        c.fail_replica("ctrl-1")  # not primary: no new election
        assert c.elections == start
        c.fail_replica("ctrl-0")
        assert c.elections == start + 1

    def test_needs_replicas(self):
        with pytest.raises(ValueError):
            ControllerCluster(())

    def test_epoch_is_monotonic_across_churn(self):
        c = ControllerCluster()
        assert c.epoch == 1  # the initial election seats an epoch
        seen = [c.epoch]
        for _ in range(3):
            c.fail_primary()
            seen.append(c.epoch)
            c.restore_replica(sorted(c.replicas)[0])
            seen.append(c.epoch)
        assert seen == sorted(seen)  # never goes backwards
        assert c.epoch == 7  # every primary change bumps it exactly once
        c.fail_replica("ctrl-2")  # not primary: no election, no bump
        assert c.epoch == 7

    def test_check_fence_passes_then_rejects_deposed_holder(self):
        c = ControllerCluster()
        held = c.epoch
        c.check_fence(held)  # current holder: passes silently
        c.fail_primary()
        with pytest.raises(EpochFencedError) as excinfo:
            c.check_fence(held, context="g:0")
        assert excinfo.value.holder_epoch == held
        assert excinfo.value.current_epoch == c.epoch
        # The rejection is audited, not just raised.
        assert c.fencing_rejections == [{
            "type": "fencing-rejected",
            "holder_epoch": held,
            "current_epoch": c.epoch,
            "primary": c.primary,
            "context": "g:0",
        }]

    def test_check_fence_rejects_when_no_primary(self):
        c = ControllerCluster(("a", "b"))
        c.fail_primary()
        c.fail_primary()
        assert c.primary is None
        with pytest.raises(EpochFencedError):
            c.check_fence(c.epoch)

    def test_election_listener_sees_each_seating(self):
        c = ControllerCluster()
        seatings: list[tuple[str | None, int]] = []
        c.add_election_listener(
            lambda primary, epoch: seatings.append((primary, epoch))
        )
        c.fail_primary()
        c.fail_primary()
        c.restore_replica("ctrl-0")
        assert seatings == [
            ("ctrl-1", 2), ("ctrl-2", 3), ("ctrl-0", 4),
        ]
