"""Tests for the concurrency analysis layer (SVC010–SVC013).

Five layers, mirroring the architecture:

* CFG-level: :func:`repro.checks.cfg.build_cfg` segments an
  ``async def`` at its awaits, tracks lexical lock regions, and emits
  shared-state reads/writes in evaluation order;
* extraction-level: :func:`repro.checks.concurrency.analyze_function`
  turns one coroutine into stale-write candidates, spawn sites, lock
  violations, and global mutations — positive *and* negative fixtures
  per fact, plus JSON round-trips for the lint cache;
* judgement-level: the :class:`InterferenceEngine` closure over
  ``ProjectModel`` fixtures — who interleaves with whom, and when a
  stale-write candidate gains a witness;
* mutation-level: seeded interleaving bugs injected into the *real*
  ``repro.service`` sources (a sequence counter split across an await;
  a leaked ``ensure_future``) must be flagged by the new rules, and the
  unmutated sources must stay clean;
* pipeline-level: scope filtering, noqa auditability, warm-cache
  replay of concurrency facts, SARIF catalogue coverage, and the
  ``repro lint --changed`` git-scoped fast path.
"""

import ast
import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.checks import lint_paths
from repro.checks.cfg import (
    Block,
    ControlFlowGraph,
    Op,
    blocking_call_reason,
    build_cfg,
    dotted_name,
)
from repro.checks.concurrency import (
    ConcurrencySummary,
    GlobalMutation,
    InterferenceEngine,
    LockViolation,
    SpawnSite,
    StaleWrite,
    lock_attribute_names,
    module_global_names,
)
from repro.checks.context import FileContext
from repro.checks.engine import changed_source_files
from repro.checks.project import ProjectModel
from repro.checks.rules.concurrency import (
    AwaitInterference,
    CoroutineGlobalMutation,
    FireAndForgetTask,
    LockDiscipline,
)
from repro.checks.sarif import render_sarif
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SERVICE_DIR = REPO_ROOT / "src" / "repro" / "service"

NEW_CODES = ("SVC010", "SVC011", "SVC012", "SVC013")


def ctx_of(source, module="repro.service.fix"):
    return FileContext.from_source(
        source,
        path="src/" + (module or "fix").replace(".", "/") + ".py",
        module=module,
        category="src",
    )


def cfg_of(source, *, module_globals=frozenset(), lock_names=frozenset()):
    ctx = ctx_of(source)
    fn = next(
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.AsyncFunctionDef)
    )
    return build_cfg(
        fn,
        resolve=ctx.resolve,
        module_globals=module_globals,
        lock_names=lock_names,
        blocking_call=lambda node: blocking_call_reason(ctx.resolve, node),
    )


def summary_of(source, qualname, module="repro.service.fix"):
    """The ConcurrencySummary of one function, through the real
    callgraph extraction plumbing (module globals, class lock names)."""
    from repro.checks.callgraph import summarize

    module_summary = summarize(ctx_of(source, module))
    (fn,) = [f for f in module_summary.functions if f.qualname == qualname]
    assert fn.is_async and fn.concurrency is not None
    return fn.concurrency


def model_of(**sources):
    return ProjectModel.from_sources(
        {name.replace("__", "."): src for name, src in sources.items()}
    )


def rule_codes(model):
    found = []
    for rule in (
        AwaitInterference(),
        FireAndForgetTask(),
        LockDiscipline(),
        CoroutineGlobalMutation(),
    ):
        found.extend(d.code for d in rule.check(model))
    return sorted(found)


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


class TestCfg:
    def test_straight_line_segments(self):
        cfg = cfg_of(
            "async def f(self):\n"
            "    a = self.x\n"
            "    await self.q.get()\n"
            "    self.x = a\n"
        )
        assert isinstance(cfg, ControlFlowGraph)
        assert cfg.await_count == 1
        assert cfg.segment_count() == 2
        # (self.q is also read as the awaited call's receiver)
        kinds = [
            (op.kind, op.var)
            for op in cfg.all_ops()
            if op.var in ("self.x", "")
        ]
        assert kinds == [("read", "self.x"), ("await", ""), ("write", "self.x")]

    def test_blocks_carry_explicit_successors(self):
        cfg = cfg_of(
            "async def f(self, flag):\n"
            "    if flag:\n"
            "        await self.q.get()\n"
            "    self.x = 1\n"
        )
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry, Block)
        assert len(entry.succs) == 2  # then / else arms
        # Every block index referenced actually exists.
        for block in cfg.blocks:
            for succ in block.succs:
                assert 0 <= succ < len(cfg.blocks)

    def test_augassign_is_read_then_write(self):
        cfg = cfg_of("async def f(self):\n    self.count += 1\n")
        kinds = [(op.kind, op.var) for op in cfg.all_ops()]
        assert kinds == [("read", "self.count"), ("write", "self.count")]

    def test_mutator_method_is_atomic_read_write(self):
        cfg = cfg_of("async def f(self):\n    self.items.append(1)\n")
        kinds = [(op.kind, op.var) for op in cfg.all_ops()]
        assert ("write", "self.items") in kinds

    def test_subscript_store_mutates_container(self):
        cfg = cfg_of("async def f(self, k):\n    self.table[k] = 1\n")
        assert [(op.kind, op.var) for op in cfg.all_ops()] == [
            ("read", "self.table"),
            ("write", "self.table"),
        ]

    def test_module_global_reads_and_shadowing(self):
        src = (
            "async def f():\n"
            "    x = LIMIT\n"          # module global: read
            "    LIMIT2 = 5\n"         # local binding shadows
            "    y = LIMIT2\n"
            "    return x + y\n"
        )
        cfg = cfg_of(src, module_globals=frozenset({"LIMIT", "LIMIT2"}))
        vars_read = [op.var for op in cfg.all_ops() if op.kind == "read"]
        assert vars_read == ["g:LIMIT"]

    def test_lock_region_tracks_held_locks(self):
        cfg = cfg_of(
            "async def f(self):\n"
            "    async with self._lock:\n"
            "        await self.q.get()\n"
            "    await self.q.get()\n"
        )
        awaits = [op for op in cfg.all_ops() if op.kind == "await"]
        # enter, guarded get, unguarded get
        assert [op.locks for op in awaits] == [
            (), ("self._lock",), ()
        ]

    def test_constructor_known_lock_names_extend_heuristic(self):
        cfg = cfg_of(
            "async def f(self):\n"
            "    async with self._gate:\n"
            "        await self.q.get()\n",
            lock_names=frozenset({"_gate"}),
        )
        guarded = [op for op in cfg.all_ops() if op.locks]
        assert guarded and guarded[0].locks == ("self._gate",)

    def test_unbounded_await_classification(self):
        src = (
            "import asyncio\n"
            "async def f(self, fut):\n"
            "    await fut\n"
            "    await self.q.get()\n"
            "    await asyncio.wait_for(self.q.get(), timeout=1)\n"
            "    await asyncio.gather(self.a(), self.b())\n"
        )
        ctx = ctx_of(src)
        fn = next(
            n for n in ast.walk(ctx.tree)
            if isinstance(n, ast.AsyncFunctionDef)
        )
        cfg = build_cfg(fn, resolve=ctx.resolve)
        reasons = [op.unbounded for op in cfg.all_ops() if op.kind == "await"]
        assert reasons == [
            "a bare future/awaitable", ".get()", "", "asyncio.gather()"
        ]

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of(
            "async def f(self):\n"
            "    a = self.x\n"
            "    await self.q.get()\n"
            "    return None\n"
            "    self.x = a\n"
        )
        # The write exists but sits in a block no edge reaches.
        write_blocks = [
            block.index
            for block in cfg.blocks
            if any(op.kind == "write" for op in block.ops)
        ]
        reachable = {cfg.entry}
        frontier = [cfg.entry]
        while frontier:
            for succ in cfg.blocks[frontier.pop()].succs:
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        assert write_blocks and not set(write_blocks) <= reachable

    def test_async_for_iteration_is_a_suspension_point(self):
        cfg = cfg_of(
            "async def f(self):\n"
            "    async for item in self.stream:\n"
            "        self.x = item\n"
        )
        assert cfg.await_count >= 1

    def test_dotted_name_helper(self):
        expr = ast.parse("self._lock.inner", mode="eval").body
        assert dotted_name(expr) == "self._lock.inner"
        call = ast.parse("f()", mode="eval").body
        assert dotted_name(call) == ""

    def test_op_is_frozen_and_hashable(self):
        op = Op("await", "", 3, 1, locks=("self._lock",), unbounded=".get()")
        assert {op: "x"}[op] == "x"


# ----------------------------------------------------------------------
# stale-write extraction (SVC010 candidates)
# ----------------------------------------------------------------------


class TestStaleWrites:
    def stale(self, body):
        return summary_of(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            + "".join(f"        {line}\n" for line in body),
            "S.f",
        ).stale_writes

    def test_split_counter_across_await(self):
        (cand,) = self.stale(
            ["current = self.total",
             "await self.q.get()",
             "self.total = current + 1"]
        )
        assert cand.var == "self.total"
        assert cand.read_line == 4
        assert cand.lineno == 6

    def test_reread_after_await_is_clean(self):
        assert self.stale(
            ["await self.q.get()",
             "self.total = self.total + 1"]
        ) == ()

    def test_atomic_augassign_is_clean(self):
        assert self.stale(
            ["await self.q.get()",
             "self.total += 1"]
        ) == ()

    def test_lock_region_suppresses_promotion(self):
        assert self.stale(
            ["async with self._lock:",
             "    current = self.total",
             "    await asyncio.wait_for(self.q.get(), 1)",
             "    self.total = current + 1"]
        ) == ()

    def test_await_on_one_branch_still_flags(self):
        (cand,) = self.stale(
            ["current = self.total",
             "if self.flag:",
             "    await self.q.get()",
             "self.total = current + 1"]
        )
        assert cand.var == "self.total"

    def test_loop_carried_staleness(self):
        (cand,) = self.stale(
            ["current = self.total",
             "while True:",
             "    await self.q.get()",
             "    self.total = current + 1"]
        )
        assert cand.var == "self.total"

    def test_write_before_await_is_clean(self):
        assert self.stale(
            ["self.total = 1",
             "await self.q.get()"]
        ) == ()

    def test_await_expression_value_feeding_write(self):
        # ``self._wakeup = None`` after ``await self._wakeup`` — the
        # resolver's real shape; a candidate, silenced only by the
        # interference engine when no second writer exists.
        (cand,) = self.stale(
            ["await self._wakeup",
             "self._wakeup = None"]
        )
        assert cand.var == "self._wakeup"


# ----------------------------------------------------------------------
# spawn-site extraction (SVC011 material + engine roots)
# ----------------------------------------------------------------------


class TestSpawnScan:
    def spawns(self, source, qualname="S.f"):
        return summary_of(source, qualname).spawns

    def test_discarded_create_task(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        asyncio.create_task(self.worker())\n"
        )
        assert site.discarded and site.via == "asyncio.create_task"
        assert site.refs == ("method:worker",)

    def test_kept_handle_is_not_discarded(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        self._task = asyncio.create_task(self.worker())\n"
        )
        assert not site.discarded

    def test_handle_stored_via_append_is_not_discarded(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        self._tasks.append(asyncio.create_task(self.worker()))\n"
        )
        assert not site.discarded

    def test_bare_comprehension_discards_every_handle(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        [asyncio.ensure_future(c) for c in (self.a(), self.b())]\n"
        )
        assert site.discarded
        # statement-level fallback names the coroutines being launched
        assert site.refs == ("method:a", "method:b")

    def test_awaited_gather_is_not_discarded_but_still_spawns(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        await asyncio.gather(self.a(), self.b())\n"
        )
        assert not site.discarded
        assert site.via == "asyncio.gather"
        assert site.refs == ("method:a", "method:b")

    def test_taskgroup_spawn_is_supervised(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        async with asyncio.TaskGroup() as tg:\n"
            "            tg.create_task(self.worker())\n"
        )
        assert not site.discarded and site.via == ".create_task()"

    def test_spawn_in_loop_is_multi(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        for _ in range(3):\n"
            "            self._ts.append(asyncio.create_task(self.worker()))\n"
        )
        assert site.multi

    def test_comprehension_with_direct_call_args_is_multi(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self, items):\n"
            "        self._ts = [asyncio.create_task(self.w(i)) for i in items]\n"
        )
        assert site.multi and site.refs == ("method:w",)

    def test_duplicate_gather_targets_are_multi(self):
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        await asyncio.gather(self.w(), self.w())\n"
        )
        assert site.multi

    def test_singleton_fanout_comprehension_is_not_multi(self):
        # The RecoveryService.start shape: each coroutine named once.
        (site,) = self.spawns(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        self._ts = [\n"
            "            asyncio.ensure_future(c)\n"
            "            for c in (self.a(), self.b())\n"
            "        ]\n"
        )
        assert not site.multi and not site.discarded


# ----------------------------------------------------------------------
# lock discipline extraction (SVC012)
# ----------------------------------------------------------------------


class TestLockViolations:
    def violations(self, source, qualname="S.f"):
        return summary_of(source, qualname).lock_violations

    def test_unbounded_get_under_lock(self):
        (violation,) = self.violations(
            "class S:\n"
            "    async def f(self):\n"
            "        async with self._lock:\n"
            "            item = await self.q.get()\n"
        )
        assert violation.kind == "unbounded-await"
        assert violation.lock == "self._lock"
        assert violation.what == ".get()"

    def test_bounded_wait_under_lock_is_fine(self):
        assert self.violations(
            "import asyncio\n"
            "class S:\n"
            "    async def f(self):\n"
            "        async with self._lock:\n"
            "            item = await asyncio.wait_for(self.q.get(), 1)\n"
        ) == ()

    def test_blocking_call_under_lock(self):
        (violation,) = self.violations(
            "import time\n"
            "class S:\n"
            "    async def f(self):\n"
            "        async with self._lock:\n"
            "            time.sleep(1)\n"
        )
        assert violation.kind == "blocking-call"
        assert "time.sleep" in violation.what

    def test_lock_from_constructor_evidence(self):
        # ``_gate`` carries no lock-ish name; only the ``asyncio.Lock()``
        # assignment in __init__ marks it — the callgraph plumbing must
        # thread that through to the CFG.
        (violation,) = self.violations(
            "import asyncio\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._gate = asyncio.Lock()\n"
            "    async def f(self):\n"
            "        async with self._gate:\n"
            "            item = await self.q.get()\n"
        )
        assert violation.lock == "self._gate"

    def test_bare_acquire_without_release_path(self):
        (violation,) = self.violations(
            "class S:\n"
            "    async def f(self):\n"
            "        await self._lock.acquire()\n"
            "        self.total += 1\n"
            "        self._lock.release()\n"
        )
        assert violation.kind == "unreleased-acquire"
        assert violation.lock == "self._lock"

    def test_acquire_followed_by_try_finally_is_fine(self):
        assert self.violations(
            "class S:\n"
            "    async def f(self):\n"
            "        await self._lock.acquire()\n"
            "        try:\n"
            "            self.total += 1\n"
            "        finally:\n"
            "            self._lock.release()\n"
        ) == ()

    def test_acquire_inside_guarded_try_is_fine(self):
        assert self.violations(
            "class S:\n"
            "    async def f(self):\n"
            "        try:\n"
            "            await self._lock.acquire()\n"
            "            self.total += 1\n"
            "        finally:\n"
            "            self._lock.release()\n"
        ) == ()


# ----------------------------------------------------------------------
# module-global mutation extraction (SVC013)
# ----------------------------------------------------------------------


class TestGlobalMutations:
    def mutations(self, source, qualname="f"):
        return summary_of(source, qualname).global_mutations

    def test_global_augassign(self):
        (mutation,) = self.mutations(
            "COUNT = 0\n"
            "async def f():\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
        )
        assert mutation.name == "COUNT"
        assert mutation.how == "augmented assignment"

    def test_mutator_call_on_module_global(self):
        (mutation,) = self.mutations(
            "PENDING = []\n"
            "async def f(item):\n"
            "    PENDING.append(item)\n"
        )
        assert mutation.how == ".append() call"

    def test_item_assignment_on_module_global(self):
        (mutation,) = self.mutations(
            "TABLE = {}\n"
            "async def f(k, v):\n"
            "    TABLE[k] = v\n"
        )
        assert mutation.how == "item assignment"

    def test_local_shadow_is_clean(self):
        assert self.mutations(
            "PENDING = []\n"
            "async def f(item):\n"
            "    PENDING = []\n"
            "    PENDING.append(item)\n"
        ) == ()

    def test_read_only_use_is_clean(self):
        assert self.mutations(
            "LIMIT = 10\n"
            "async def f(n):\n"
            "    return n < LIMIT\n"
        ) == ()

    def test_module_global_names_excludes_all_and_imports(self):
        tree = ast.parse(
            "import os\n__all__ = ['f']\nX = 1\nY: int = 2\n"
        )
        assert module_global_names(tree) == frozenset({"X", "Y"})

    def test_lock_attribute_names_from_constructors(self):
        source = (
            "import asyncio\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._gate = asyncio.Lock()\n"
            "        self._cond = asyncio.Condition()\n"
            "        self.data = {}\n"
        )
        ctx = ctx_of(source)
        cls = next(
            n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        )
        assert lock_attribute_names(cls, ctx.resolve) == frozenset(
            {"_gate", "_cond"}
        )


# ----------------------------------------------------------------------
# the interference engine
# ----------------------------------------------------------------------


PUMP_DRAIN = (
    "import asyncio\n"
    "class S:\n"
    "    async def start(self):\n"
    "        self._t = asyncio.create_task(self.pump())\n"
    "        await self.drain()\n"
    "    async def pump(self):\n"
    "        while True:\n"
    "            self.pending.append(1)\n"
    "            await self.q.get()\n"
    "    async def drain(self):\n"
    "        items = list(self.pending)\n"
    "        await self.q.get()\n"
    "        self.pending = []\n"
)


class TestInterferenceEngine:
    def test_concurrent_closure_from_spawn_roots(self):
        model = model_of(repro__service__fix=PUMP_DRAIN)
        engine = InterferenceEngine(model)
        names = {key[1] for key in engine.concurrent}
        assert "S.pump" in names
        assert "S.start" not in names  # nothing spawns start

    def test_witness_across_coroutines(self):
        model = model_of(repro__service__fix=PUMP_DRAIN)
        engine = InterferenceEngine(model)
        key = ("repro.service.fix", "S.drain")
        witness = engine.interference_witness(key, "self.pending")
        assert witness == ("repro.service.fix", "S.pump")

    def test_single_instance_sole_writer_has_no_witness(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class R:\n"
                "    async def start(self):\n"
                "        self._task = asyncio.create_task(self.run())\n"
                "    async def run(self):\n"
                "        await self._wakeup\n"
                "        self._wakeup = None\n"
            )
        )
        engine = InterferenceEngine(model)
        key = ("repro.service.fix", "R.run")
        assert engine.interference_witness(key, "self._wakeup") is None

    def test_multi_spawned_coroutine_interferes_with_itself(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def start(self, items):\n"
                "        ts = [asyncio.create_task(self.w(i)) for i in items]\n"
                "        await asyncio.gather(*ts)\n"
                "    async def w(self, i):\n"
                "        current = self.total\n"
                "        await self.q.get()\n"
                "        self.total = current + i\n"
            )
        )
        engine = InterferenceEngine(model)
        key = ("repro.service.fix", "S.w")
        assert engine.concurrent[key] is True
        assert engine.interference_witness(key, "self.total") == key

    def test_multiness_propagates_through_calls(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def start(self, items):\n"
                "        for i in items:\n"
                "            self._ts.append(asyncio.create_task(self.w(i)))\n"
                "    async def w(self, i):\n"
                "        await self.inner()\n"
                "    async def inner(self):\n"
                "        current = self.total\n"
                "        await self.q.get()\n"
                "        self.total = current + 1\n"
            )
        )
        engine = InterferenceEngine(model)
        key = ("repro.service.fix", "S.inner")
        assert engine.concurrent[key] is True

    def test_same_attribute_in_different_classes_never_interferes(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class A:\n"
                "    async def start(self):\n"
                "        self._t = asyncio.create_task(self.w())\n"
                "    async def w(self):\n"
                "        self.total = 1\n"
                "        await self.q.get()\n"
                "class B:\n"
                "    async def f(self):\n"
                "        current = self.total\n"
                "        await self.q.get()\n"
                "        self.total = current + 1\n"
            )
        )
        engine = InterferenceEngine(model)
        key = ("repro.service.fix", "B.f")
        assert engine.interference_witness(key, "self.total") is None


# ----------------------------------------------------------------------
# the four rules, over model fixtures
# ----------------------------------------------------------------------


class TestSvc010:
    def test_fires_with_cross_coroutine_witness(self):
        model = model_of(repro__service__fix=PUMP_DRAIN)
        (diag,) = AwaitInterference().check(model)
        assert diag.code == "SVC010"
        assert diag.path == "src/repro/service/fix.py"
        assert "self.pending" in diag.message
        assert "S.pump" in diag.message

    def test_silent_without_spawns(self):
        model = model_of(
            repro__service__fix=(
                "class S:\n"
                "    async def f(self):\n"
                "        current = self.total\n"
                "        await self.q.get()\n"
                "        self.total = current + 1\n"
            )
        )
        assert list(AwaitInterference().check(model)) == []

    def test_silent_for_single_instance_sole_writer(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class R:\n"
                "    async def start(self):\n"
                "        self._task = asyncio.create_task(self.run())\n"
                "    async def run(self):\n"
                "        await self._wakeup\n"
                "        self._wakeup = None\n"
            )
        )
        assert list(AwaitInterference().check(model)) == []

    def test_names_self_interference(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def start(self, items):\n"
                "        ts = [asyncio.create_task(self.w(i)) for i in items]\n"
                "        await asyncio.gather(*ts)\n"
                "    async def w(self, i):\n"
                "        current = self.total\n"
                "        await self.q.get()\n"
                "        self.total = current + i\n"
            )
        )
        (diag,) = AwaitInterference().check(model)
        assert "another instance of itself" in diag.message


class TestSvc011:
    def test_fires_on_discarded_task(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def f(self):\n"
                "        asyncio.create_task(self.worker())\n"
                "    async def worker(self):\n"
                "        await self.q.get()\n"
            )
        )
        (diag,) = FireAndForgetTask().check(model)
        assert diag.code == "SVC011"
        assert diag.line == 4

    def test_silent_when_handle_kept(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def f(self):\n"
                "        self._t = asyncio.create_task(self.worker())\n"
                "    async def worker(self):\n"
                "        await self.q.get()\n"
            )
        )
        assert list(FireAndForgetTask().check(model)) == []


class TestSvc012:
    def test_fires_on_unbounded_await_under_lock(self):
        model = model_of(
            repro__service__fix=(
                "class S:\n"
                "    async def f(self):\n"
                "        async with self._lock:\n"
                "            item = await self.q.get()\n"
            )
        )
        (diag,) = LockDiscipline().check(model)
        assert diag.code == "SVC012"
        assert "self._lock" in diag.message

    def test_fires_on_unreleased_acquire(self):
        model = model_of(
            repro__service__fix=(
                "class S:\n"
                "    async def f(self):\n"
                "        await self._lock.acquire()\n"
                "        self._lock.release()\n"
            )
        )
        (diag,) = LockDiscipline().check(model)
        assert "deadlocks" in diag.message

    def test_silent_for_disciplined_lock_use(self):
        model = model_of(
            repro__service__fix=(
                "import asyncio\n"
                "class S:\n"
                "    async def f(self):\n"
                "        async with self._lock:\n"
                "            self.total += 1\n"
            )
        )
        assert list(LockDiscipline().check(model)) == []


class TestSvc013:
    def test_fires_on_coroutine_global_mutation(self):
        model = model_of(
            repro__service__fix=(
                "PENDING = []\n"
                "async def f(item):\n"
                "    PENDING.append(item)\n"
            )
        )
        (diag,) = CoroutineGlobalMutation().check(model)
        assert diag.code == "SVC013"
        assert "PENDING" in diag.message

    def test_silent_for_sync_function_mutation(self):
        # Module state mutated from *sync* code is the registry pattern
        # (rules register at import time) — not this rule's business.
        model = model_of(
            repro__service__fix=(
                "PENDING = []\n"
                "def f(item):\n"
                "    PENDING.append(item)\n"
            )
        )
        assert list(CoroutineGlobalMutation().check(model)) == []


# ----------------------------------------------------------------------
# seeded-bug mutations of the real service sources
# ----------------------------------------------------------------------


def _real_source(name):
    return (SERVICE_DIR / name).read_text(encoding="utf-8")


def _service_model(**overrides):
    sources = {
        f"repro.service.{path.stem}": _real_source(path.name)
        for path in sorted(SERVICE_DIR.glob("*.py"))
    }
    sources.update(overrides)
    return ProjectModel.from_sources(sources)


class TestSeededBugMutations:
    def test_unmutated_service_sources_are_clean(self):
        assert rule_codes(_service_model()) == []

    def test_seq_counter_split_across_await_is_flagged(self):
        source = _real_source("resolver.py")
        anchor = (
            "            self._on_decision(decision)\n"
            "            await asyncio.sleep(0)\n"
        )
        assert anchor in source, "resolver decision loop moved; update test"
        buggy = source.replace(
            anchor,
            "            self._on_decision(decision)\n"
            "            seq_snapshot = self._seq\n"
            "            await asyncio.sleep(0)\n"
            "            self._seq = seq_snapshot + 1\n",
        )
        codes = rule_codes(
            _service_model(**{"repro.service.resolver": buggy})
        )
        assert "SVC010" in codes

    def test_leaked_ensure_future_is_flagged(self):
        source = _real_source("service.py")
        anchor = "        self._tasks = [\n"
        assert anchor in source, "service start() moved; update test"
        buggy = source.replace(anchor, "        [\n")
        codes = rule_codes(
            _service_model(**{"repro.service.service": buggy})
        )
        assert "SVC011" in codes


# ----------------------------------------------------------------------
# summary round-trips (lint-cache food)
# ----------------------------------------------------------------------


class TestRoundTrips:
    def test_concurrency_summary_round_trips_through_json(self):
        summary = summary_of(
            "import asyncio\n"
            "PENDING = []\n"
            "class S:\n"
            "    async def f(self):\n"
            "        global PENDING\n"
            "        PENDING = []\n"
            "        asyncio.create_task(self.w())\n"
            "        current = self.total\n"
            "        async with self._lock:\n"
            "            await self.q.get()\n"
            "        await self.q.get()\n"
            "        self.total = current + 1\n",
            "S.f",
        )
        restored = ConcurrencySummary.from_json(
            json.loads(json.dumps(summary.to_json()))
        )
        assert restored == summary
        assert summary.spawns and summary.stale_writes
        assert summary.lock_violations and summary.global_mutations

    def test_site_dataclasses_round_trip(self):
        sites = [
            StaleWrite(var="self.total", read_line=3, lineno=5, col=9),
            SpawnSite(
                lineno=4, col=9, via="asyncio.create_task",
                refs=("method:w",), multi=True, discarded=False,
            ),
            LockViolation(
                kind="unbounded-await", lock="self._lock",
                what=".get()", lineno=6, col=20,
            ),
            GlobalMutation(
                name="PENDING", how=".append() call", lineno=7, col=9
            ),
        ]
        for site in sites:
            restored = type(site).from_json(
                json.loads(json.dumps(site.to_json()))
            )
            assert restored == site

    def test_sync_function_has_no_concurrency_summary(self):
        from repro.checks.callgraph import summarize

        module_summary = summarize(
            ctx_of("def f():\n    return 1\n")
        )
        (fn,) = module_summary.functions
        assert not fn.is_async and fn.concurrency is None


# ----------------------------------------------------------------------
# pipeline: scope, suppression, warm cache, SARIF
# ----------------------------------------------------------------------


LEAKY = (
    "import asyncio\n"
    "class S:\n"
    "    async def f(self):\n"
    "        asyncio.create_task(self.worker())\n"
    "    async def worker(self):\n"
    "        await asyncio.sleep(0)\n"
)


def _repo_with(tmp_path, rel_path, source):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestPipeline:
    def test_svc_rules_report_in_service_scope(self, tmp_path):
        _repo_with(tmp_path, "src/repro/service/leaky.py", LEAKY)
        result = lint_paths([tmp_path / "src"], cache_dir=tmp_path / "c")
        assert [d.code for d in result.diagnostics] == ["SVC011"]

    def test_svc_rules_silent_outside_scope(self, tmp_path):
        # Same bug under repro.runner — not these rules' beat.
        _repo_with(tmp_path, "src/repro/runner/leaky.py", LEAKY)
        result = lint_paths([tmp_path / "src"], cache_dir=tmp_path / "c")
        assert result.diagnostics == []

    def test_noqa_audits_a_finding(self, tmp_path):
        audited = LEAKY.replace(
            "asyncio.create_task(self.worker())",
            "asyncio.create_task(self.worker())  # repro: noqa[SVC011]",
        )
        _repo_with(tmp_path, "src/repro/service/leaky.py", audited)
        result = lint_paths([tmp_path / "src"], cache_dir=tmp_path / "c")
        assert result.diagnostics == []

    def test_warm_run_replays_concurrency_facts_without_parsing(
        self, tmp_path, monkeypatch
    ):
        _repo_with(tmp_path, "src/repro/service/leaky.py", LEAKY)
        cold = lint_paths([tmp_path / "src"], cache_dir=tmp_path / "c")
        assert [d.code for d in cold.diagnostics] == ["SVC011"]

        def exploding(*args, **kwargs):
            raise AssertionError("warm lint run must not parse")

        monkeypatch.setattr(FileContext, "from_source", exploding)
        warm = lint_paths([tmp_path / "src"], cache_dir=tmp_path / "c")
        assert warm.stats.parsed_files == 0
        assert warm.diagnostics == cold.diagnostics

    def test_sarif_catalogue_includes_concurrency_rules(self):
        doc = json.loads(render_sarif([]))
        listed = {
            rule["id"] for rule in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert set(NEW_CODES) <= listed


# ----------------------------------------------------------------------
# repro lint --changed
# ----------------------------------------------------------------------

needs_git = pytest.mark.skipif(
    shutil.which("git") is None, reason="git not installed"
)


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@e.st", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def _git_repo(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    src = tmp_path / "src"
    src.mkdir()
    (src / "committed.py").write_text("import random\nV = random.random()\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")
    return src


@needs_git
class TestLintChanged:
    def test_changed_source_files_sees_modified_and_untracked(self, tmp_path):
        src = _git_repo(tmp_path)
        assert changed_source_files(tmp_path) == []
        (src / "committed.py").write_text("def quiet():\n    return 1\n")
        (src / "fresh.py").write_text("def f():\n    return 2\n")
        (src / "notes.txt").write_text("not python\n")
        changed = {p.name for p in changed_source_files(tmp_path)}
        assert changed == {"committed.py", "fresh.py"}

    def test_changed_raises_outside_a_work_tree(self, tmp_path):
        with pytest.raises(RuntimeError):
            changed_source_files(tmp_path)

    def test_cli_changed_scopes_to_modified_files(
        self, tmp_path, monkeypatch, capsys
    ):
        src = _git_repo(tmp_path)
        # committed.py keeps its RNG001; the new file carries its own.
        (src / "fresh.py").write_text("import random\nW = random.random()\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out  # unchanged → out of scope

    def test_cli_changed_clean_tree_exits_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        _git_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "--no-cache"]) == 0
        assert "no changed Python files" in capsys.readouterr().out

    def test_cli_changed_rejects_explicit_paths(self, tmp_path, monkeypatch):
        _git_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed", "src"]) == 2

    def test_cli_changed_outside_work_tree_is_usage_error(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--changed"]) == 2
