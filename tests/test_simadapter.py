"""ShareBackup-in-the-simulator tests: the Table 3 properties must *emerge*
from the model (no reroutes, millisecond stalls, full bandwidth)."""

import pytest

from repro.core import ShareBackupNetwork, ShareBackupSimulation
from repro.simulation import CoflowSpec, FlowSpec

GBIT = 1.25e8


def one_flow_net(k=8, size_gbit=100):
    net = ShareBackupNetwork(k, n=1)
    spec = CoflowSpec(
        1, 0.0, (FlowSpec(1, 1, "H.0.0.0", f"H.{k-1}.0.0", size_gbit * GBIT),)
    )
    return net, ShareBackupSimulation(net, [spec])


class TestSwitchFailureRecovery:
    @pytest.mark.parametrize("hop", [1, 2, 3, 4, 5])  # every switch on the path
    def test_any_switch_failure_costs_only_recovery_window(self, hop):
        net, sbs = one_flow_net()
        path = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        sbs.inject_switch_failure(3.0, path.nodes[hop])
        res = sbs.run()
        rec = res.flows[1]
        assert rec.reroutes == 0
        assert rec.stalled_time < 0.01
        assert rec.finish == pytest.approx(10.0 + rec.stalled_time)
        assert rec.initial_hops == rec.final_hops
        net.verify_fattree_equivalence()

    def test_edge_switch_failure_recoverable(self):
        """The headline advantage: even single-homed racks survive edge
        failures, which no rerouting scheme can do."""
        net, sbs = one_flow_net()
        sbs.inject_switch_failure(3.0, "E.7.0")  # destination edge!
        res = sbs.run()
        assert res.flows[1].finish is not None
        assert res.flows[1].stalled_time < 0.01

    def test_spare_exhaustion_degrades_gracefully(self):
        net = ShareBackupNetwork(8, n=1)
        spec = CoflowSpec(
            1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.7.0.0", 100 * GBIT),)
        )
        sbs = ShareBackupSimulation(net, [spec], horizon=60.0)
        path = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        agg = path.nodes[2]
        pod = net.logical.nodes[agg].pod
        siblings = [a for a in net.logical.agg_switches(pod)]
        # exhaust the pod's single agg spare, then kill the path's agg
        other = next(a for a in siblings if a != agg)
        sbs.inject_switch_failure(1.0, other)
        sbs.inject_switch_failure(2.0, agg)
        res = sbs.run()
        # second failure unrecoverable: static pin stalls forever
        assert res.flows[1].finish is None
        assert len([r for r in sbs.reports if not r.fully_recovered]) == 1

    def test_recovery_reports_collected(self):
        net, sbs = one_flow_net()
        path = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        sbs.inject_switch_failure(3.0, path.nodes[3])
        sbs.run()
        assert len(sbs.reports) == 1
        assert sbs.reports[0].kind == "node"


class TestLinkFailureRecovery:
    def test_link_failure_stalls_briefly(self):
        net, sbs = one_flow_net()
        path = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        link = net.logical.links_between(path.nodes[2], path.nodes[3])[0]
        sbs.inject_link_failure(
            3.0, link.link_id,
            true_faulty_interfaces=((path.nodes[3], ("pod", 0)),),
        )
        res = sbs.run()
        rec = res.flows[1]
        assert rec.finish == pytest.approx(10.0 + rec.stalled_time)
        assert rec.stalled_time < 0.01
        # diagnosis ran at the end of the run
        assert any("diagnosis" in line for line in sbs.controller.log)

    def test_host_link_failure(self):
        net, sbs = one_flow_net()
        link = net.logical.links_between("H.0.0.0", "E.0.0")[0]
        sbs.inject_link_failure(3.0, link.link_id)
        res = sbs.run()
        assert res.flows[1].finish is not None

    @pytest.mark.parametrize(
        "a,b",
        [("E.0.0", "A.0.0"), ("A.0.0", "C.0"), ("H.0.0.0", "E.0.0")],
    )
    def test_interface_end_resolution_matches_wiring(self, a, b):
        """_interface_end must name real cabled interfaces."""
        net = ShareBackupNetwork(8, n=1)
        sbs = ShareBackupSimulation(
            net, [CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.7.0.0", GBIT),))]
        )
        end = sbs._interface_end(a, b)
        assert end in net._device_cable
        # and the cable really leads to b
        far = net.physical_neighbor(*end)
        assert far is not None and far[0] == b


class TestNoBandwidthLoss:
    def test_competing_flows_keep_full_rate_after_recovery(self):
        """Two flows through the same agg; failure+recovery of that agg
        leaves both at their pre-failure rates (no capacity lost)."""
        net = ShareBackupNetwork(8, n=1)
        flows = (
            FlowSpec(1, 1, "H.0.0.0", "H.7.0.0", 100 * GBIT),
            FlowSpec(2, 1, "H.0.1.0", "H.6.0.0", 100 * GBIT),
        )
        sbs = ShareBackupSimulation(net, [CoflowSpec(1, 0.0, flows)])
        p = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        sbs.inject_switch_failure(2.0, p.nodes[2])
        res = sbs.run()
        for fid in (1, 2):
            rec = res.flows[fid]
            assert rec.finish == pytest.approx(10.0 + rec.stalled_time, rel=1e-6)
            assert rec.stalled_time < 0.01
