"""Utilization-monitor tests (exact time-weighted accounting)."""

import pytest

from repro.routing import GlobalOptimalRerouteRouter
from repro.simulation import (
    CoflowSpec,
    FlowSpec,
    FluidSimulation,
    UtilizationMonitor,
)
from repro.topology import FatTree

GBIT = 1.25e8


def run_with_monitor(trace):
    tree = FatTree(4)
    monitor = UtilizationMonitor()
    sim = FluidSimulation(
        tree, GlobalOptimalRerouteRouter(tree), trace, monitor=monitor
    )
    result = sim.run()
    return result, monitor.report()


class TestUtilizationMonitor:
    def test_single_flow_line_rate(self):
        trace = [CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),))]
        _result, report = run_with_monitor(trace)
        assert report.peak_concurrent_flows == 1
        assert report.peak_throughput == pytest.approx(10e9)
        # one flow at 10 Gbps for its whole 1s life
        assert report.mean_throughput == pytest.approx(10e9, rel=1e-6)
        assert report.busy_time == pytest.approx(1.0)

    def test_two_flows_sharing_host_link(self):
        trace = [
            CoflowSpec(
                1,
                0.0,
                (
                    FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),
                    FlowSpec(2, 1, "H.0.0.0", "H.2.0.0", 10 * GBIT),
                ),
            )
        ]
        _result, report = run_with_monitor(trace)
        assert report.peak_concurrent_flows == 2
        # aggregate = the shared host uplink's 10 Gbps
        assert report.peak_throughput == pytest.approx(10e9)
        assert report.peak_segment_flows == 2
        assert report.peak_segment is not None

    def test_staggered_arrivals_weighting(self):
        """1s at 10G, then nothing, then 1s at 10G: time-weighted mean over
        the busy span [0, 3] is 20/3 Gbps."""
        trace = [
            CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),)),
            CoflowSpec(2, 2.0, (FlowSpec(2, 2, "H.1.0.0", "H.2.0.0", 10 * GBIT),)),
        ]
        _result, report = run_with_monitor(trace)
        assert report.busy_time == pytest.approx(3.0)
        assert report.mean_throughput == pytest.approx(20e9 / 3.0, rel=1e-6)

    def test_empty_run(self):
        monitor = UtilizationMonitor()
        report = monitor.report()
        assert report.peak_concurrent_flows == 0
        assert report.mean_throughput == 0.0
        assert report.peak_segment is None

    def test_monitor_optional(self):
        """Engine default (no monitor) is unaffected."""
        tree = FatTree(4)
        sim = FluidSimulation(
            tree,
            GlobalOptimalRerouteRouter(tree),
            [CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", GBIT),))],
        )
        assert sim.run().all_completed
