"""Failure-group role bookkeeping tests."""

import pytest

from repro.core import FailureGroup, GroupLayer, NoBackupAvailable


def make(n=2) -> FailureGroup:
    return FailureGroup(
        group_id="FG.edge.0",
        layer=GroupLayer.EDGE,
        logical_slots=("E.0.0", "E.0.1", "E.0.2"),
        physical_backups=tuple(f"BE.0.{v}" for v in range(n)),
    )


class TestInitialState:
    def test_identity_assignment(self):
        g = make()
        for slot in g.logical_slots:
            assert g.physical_of(slot) == slot

    def test_spares_are_backups(self):
        g = make(2)
        assert g.spares == ["BE.0.0", "BE.0.1"]
        assert g.available_spares == 2

    def test_n_and_backup_ratio(self):
        g = make(1)
        assert g.n == 1
        assert g.backup_ratio == pytest.approx(1 / 3)

    def test_all_physical(self):
        g = make(1)
        assert g.all_physical() == ["BE.0.0", "E.0.0", "E.0.1", "E.0.2"]

    def test_validate_clean(self):
        make().validate()


class TestFailover:
    def test_allocate_fifo(self):
        g = make(2)
        assert g.allocate_spare() == "BE.0.0"
        assert g.allocate_spare() == "BE.0.1"

    def test_exhaustion(self):
        g = make(1)
        g.allocate_spare()
        with pytest.raises(NoBackupAvailable):
            g.allocate_spare()

    def test_failover_updates_assignment(self):
        g = make()
        spare = g.allocate_spare()
        old = g.failover("E.0.1", spare)
        assert old == "E.0.1"
        assert g.physical_of("E.0.1") == spare
        assert "E.0.1" in g.offline
        g.validate()

    def test_failover_unknown_slot_rejected(self):
        g = make()
        with pytest.raises(KeyError):
            g.failover("E.9.9", "BE.0.0")

    def test_logical_of(self):
        g = make()
        spare = g.allocate_spare()
        g.failover("E.0.0", spare)
        assert g.logical_of(spare) == "E.0.0"
        assert g.logical_of("E.0.0") is None  # now offline
        assert g.logical_of("nonsense") is None

    def test_reinstate_no_switch_back(self):
        """Paper: the repaired switch becomes a spare; no switch-back."""
        g = make(1)
        spare = g.allocate_spare()
        g.failover("E.0.2", spare)
        g.reinstate("E.0.2")
        assert g.physical_of("E.0.2") == spare  # still served by backup
        assert g.spares == ["E.0.2"]  # old switch is the new spare
        g.validate()

    def test_reinstate_requires_offline(self):
        g = make()
        with pytest.raises(ValueError):
            g.reinstate("E.0.0")

    def test_cascaded_failovers_rotate_roles(self):
        g = make(1)
        s1 = g.allocate_spare()
        g.failover("E.0.0", s1)
        g.reinstate("E.0.0")
        s2 = g.allocate_spare()
        assert s2 == "E.0.0"
        g.failover("E.0.1", s2)
        assert g.physical_of("E.0.0") == "BE.0.0"
        assert g.physical_of("E.0.1") == "E.0.0"
        g.validate()

    def test_n_concurrent_failures_supported(self):
        """Section 5.1: a group absorbs exactly n concurrent failures."""
        g = make(2)
        for slot in ("E.0.0", "E.0.1"):
            g.failover(slot, g.allocate_spare())
        g.validate()
        with pytest.raises(NoBackupAvailable):
            g.allocate_spare()


class TestValidation:
    def test_detects_overlapping_pools(self):
        g = make(1)
        spare = g.allocate_spare()
        g.failover("E.0.0", spare)
        g.spares.append("BE.0.0")  # corrupt: serving switch also spare
        with pytest.raises(AssertionError):
            g.validate()

    def test_detects_duplicate_spares(self):
        g = make(1)
        g.spares.append("BE.0.0")
        with pytest.raises(AssertionError):
            g.validate()
