"""Tests for the recovery control-plane service.

Covers the event bus, the failure-group resolver, the service loops
(report-driven and scan-driven paths) under a virtual clock, and the
REST/streaming API over real loopback sockets.
"""

import asyncio
import json

import pytest

from repro.core.controller import ShareBackupController
from repro.core.sharebackup import ShareBackupNetwork
from repro.rng import derive_seed
from repro.service import (
    EventBus,
    FailureGroupResolver,
    FailureReport,
    Heartbeat,
    PendingFailure,
    RecoveryService,
    ServiceAPI,
    ServiceConfig,
    VirtualClock,
    percentile,
)


def make_stack(k=4, n=1, seed=11, config=None):
    net = ShareBackupNetwork(k, n)
    controller = ShareBackupController(
        net, degrade_to_reroute=True, rng=derive_seed(seed, "controller")
    )
    clock = VirtualClock()
    service = RecoveryService(controller, clock=clock, config=config)
    return net, controller, clock, service


def first_slot(net):
    group = net.groups[sorted(net.groups)[0]]
    return sorted(group.logical_slots)[0]


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank_quotes_observed_values(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.999) == 100.0
        assert percentile(values, 1.0) == 100.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.999) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


# ----------------------------------------------------------------------
# event bus
# ----------------------------------------------------------------------


class TestEventBus:
    def test_publish_stamps_sequence_and_fans_out(self):
        async def scenario():
            bus = EventBus()
            a = bus.subscribe()
            b = bus.subscribe()
            bus.publish({"type": "x"})
            bus.publish({"type": "y"})
            got_a = [await a.next_event(), await a.next_event()]
            got_b = [await b.next_event(), await b.next_event()]
            return got_a, got_b, bus.published

        got_a, got_b, published = asyncio.run(scenario())
        assert [e["seq"] for e in got_a] == [0, 1]
        assert got_a == got_b
        assert published == 2

    def test_slow_subscriber_drops_oldest_and_counts(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe(maxsize=2)
            for index in range(5):
                bus.publish({"type": "tick", "index": index})
            survivors = [await sub.next_event(), await sub.next_event()]
            return sub.dropped, [e["index"] for e in survivors]

        dropped, survivors = asyncio.run(scenario())
        assert dropped == 3
        assert survivors == [3, 4]  # the newest two survive

    def test_close_ends_streams_after_backlog(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe()
            bus.publish({"type": "last"})
            bus.close()
            first = await sub.next_event()
            second = await sub.next_event()
            late = bus.subscribe()
            return first, second, await late.next_event()

        first, second, late = asyncio.run(scenario())
        assert first == {"type": "last", "seq": 0}
        assert second is None
        assert late is None  # subscribing to a closed bus ends immediately

    def test_async_iteration_drains_until_close(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe()

            async def producer():
                for index in range(3):
                    bus.publish({"index": index})
                    await asyncio.sleep(0)
                bus.close()

            task = asyncio.ensure_future(producer())
            seen = [event["index"] async for event in sub]
            await task
            return seen

        assert asyncio.run(scenario()) == [0, 1, 2]


# ----------------------------------------------------------------------
# resolver
# ----------------------------------------------------------------------


class TestResolver:
    def build(self, k=4, n=1):
        net = ShareBackupNetwork(k, n)
        controller = ShareBackupController(
            net, degrade_to_reroute=True, rng=derive_seed(3, "controller")
        )
        clock = VirtualClock()
        decisions, errors = [], []
        resolver = FailureGroupResolver(
            controller,
            clock,
            on_decision=decisions.append,
            on_error=lambda pending, exc: errors.append((pending, exc)),
        )
        return net, resolver, decisions, errors

    def test_independent_groups_resolve_in_sorted_group_order(self):
        net, resolver, decisions, errors = self.build()
        group_ids = sorted(net.groups)
        slots = [
            sorted(net.groups[gid].logical_slots)[0] for gid in group_ids[:2]
        ]

        async def scenario():
            for slot in reversed(slots):  # submission order != group order
                resolver.submit(
                    PendingFailure(kind="node", logical=slot,
                                   detected_at=0.0)
                )
            return await resolver.resolve_backlog()

        resolved = asyncio.run(scenario())
        assert resolved == 2
        assert not errors
        assert [d.logical for d in decisions] == slots  # sorted group order
        assert [d.seq for d in decisions] == [0, 1]
        assert {d.group for d in decisions} == set(group_ids[:2])
        assert all(d.outcome == "recovered" for d in decisions)
        assert all(d.latency >= 0.0 for d in decisions)

    def test_same_group_resolves_in_detection_order(self):
        net, resolver, decisions, errors = self.build(k=6, n=2)
        group = net.groups[sorted(net.groups)[0]]
        slots = sorted(group.logical_slots)[:2]

        async def scenario():
            resolver.submit(
                PendingFailure(kind="node", logical=slots[1],
                               detected_at=1.0)
            )
            resolver.submit(
                PendingFailure(kind="node", logical=slots[0],
                               detected_at=2.0)
            )
            await resolver.resolve_backlog()

        asyncio.run(scenario())
        assert not errors
        # Later-submitted but earlier-detected failures commit first.
        assert [d.detected_at for d in decisions] == [1.0, 2.0]
        assert [d.logical for d in decisions] == [slots[1], slots[0]]

    def test_unknown_device_is_journalled_not_fatal(self):
        net, resolver, decisions, errors = self.build()

        async def scenario():
            resolver.submit(
                PendingFailure(kind="node", logical="Z.9.9",
                               detected_at=0.0)
            )
            resolver.submit(
                PendingFailure(kind="node", logical=first_slot(net),
                               detected_at=0.0)
            )
            await resolver.resolve_backlog()

        asyncio.run(scenario())
        assert len(errors) == 1
        assert errors[0][0].logical == "Z.9.9"
        # The poisoned report did not take the valid one down with it.
        assert len(decisions) == 1
        assert decisions[0].outcome == "recovered"

    def test_link_group_key_between_hosts_is_hosts(self):
        net, resolver, decisions, errors = self.build()
        pending = PendingFailure(
            kind="link",
            end_a=("H.0.0", ("eth0",)),
            end_b=("H.0.1", ("eth0",)),
        )
        assert resolver._group_key(pending) == "hosts"

    def test_rejects_negative_batch_window(self):
        net, _, _, _ = self.build()
        controller = ShareBackupController(net)
        with pytest.raises(ValueError):
            FailureGroupResolver(
                controller,
                VirtualClock(),
                on_decision=lambda d: None,
                on_error=lambda p, e: None,
                batch_window=-0.1,
            )


# ----------------------------------------------------------------------
# the service under a virtual clock
# ----------------------------------------------------------------------


class TestRecoveryService:
    def test_report_path_produces_a_decision(self):
        net, controller, clock, service = make_stack()
        slot = first_slot(net)

        async def scenario():
            sub = service.bus.subscribe()
            await service.start()
            assert service.submit_failure(
                FailureReport(kind="node", logical=slot, reported_at=0.0)
            )
            await clock.run_until(0.0)
            events = []
            while sub._items:
                events.append(await sub.next_event())
            await service.stop()
            return events

        events = asyncio.run(scenario())
        assert len(service.decisions) == 1
        decision = service.decisions[0]
        assert decision.logical == slot
        assert decision.source == "report"
        assert decision.outcome == "recovered"
        assert decision.replaced  # a spare took over
        assert decision.recovery_time > 0.0
        kinds = [e["type"] for e in events]
        assert "service-started" in kinds
        assert "decision" in kinds

    def test_scan_path_detects_at_the_controller_deadline(self):
        net, controller, clock, service = make_stack()
        slot = first_slot(net)
        dead_physical = net.serving_switch(slot)
        death = 0.0123
        interval = controller.timing.probe_interval
        horizon = controller.detection_deadline(death) + 2 * interval

        async def fleet():
            while True:
                now = clock.now()
                boundary = (int(now / interval + 1e-9) + 1) * interval
                await clock.sleep(boundary - now)
                now = clock.now()
                for physical in sorted(net.physical_health):
                    if not net.physical_health[physical]:
                        continue
                    if physical == dead_physical and now >= death:
                        continue
                    service.submit_heartbeat(Heartbeat(physical, now))

        async def scenario():
            await service.start()
            task = asyncio.ensure_future(fleet())
            await clock.run_all(horizon)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            await service.stop()

        asyncio.run(scenario())
        expected = controller.detection_deadline(death)
        assert service.detections == [(dead_physical, pytest.approx(expected))]
        assert len(service.decisions) == 1
        decision = service.decisions[0]
        assert decision.source == "scan"
        assert decision.logical == slot
        assert decision.detected_at == pytest.approx(expected)
        # No re-detection at later boundaries despite continued silence.
        assert service.metrics()["detections"] == 1

    def test_synthetic_fleet_heartbeats_go_to_the_registry(self):
        net, controller, clock, service = make_stack()

        async def scenario():
            await service.start()
            service.fleet.register_many("sw-", 4)
            for index in range(4):
                service.submit_heartbeat(Heartbeat(f"sw-{index}", 0.0))
            service.submit_heartbeat(Heartbeat("sw-unregistered", 0.0))
            await clock.settle()
            await service.stop()

        asyncio.run(scenario())
        assert len(service.fleet) == 5  # record() auto-registers
        assert service.fleet.heartbeats_recorded == 5
        assert service.fleet.last_seen("sw-0") == 0.0

    def test_metrics_snapshot_is_json_safe_and_consistent(self):
        net, controller, clock, service = make_stack()
        slot = first_slot(net)

        async def scenario():
            await service.start()
            service.submit_failure(
                FailureReport(kind="node", logical=slot, reported_at=0.0)
            )
            await clock.run_until(0.0)
            metrics = service.metrics()
            await service.stop()
            return metrics

        metrics = asyncio.run(scenario())
        json.dumps(metrics)  # JSON-safe end to end
        assert metrics["decisions"] == 1
        assert metrics["errors"] == 0
        assert metrics["report_queue"]["submitted"] == 1
        assert metrics["report_queue"]["dequeued"] == 1
        assert metrics["latency"] is not None
        assert metrics["outcomes"] == {"recovered": 1}

    def test_double_start_is_an_error_and_stop_is_idempotent(self):
        net, controller, clock, service = make_stack()

        async def scenario():
            await service.start()
            with pytest.raises(RuntimeError):
                await service.start()
            await service.stop()
            await service.stop()  # no-op, no raise

        asyncio.run(scenario())
        assert not service.started

    def test_latency_summary_none_without_decisions(self):
        _, _, _, service = make_stack()
        assert service.latency_summary() is None
        assert service.outcome_counts() == {}


# ----------------------------------------------------------------------
# the REST + streaming API (real loopback sockets)
# ----------------------------------------------------------------------


async def http_request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return status, json.loads(raw) if raw.strip() else None


class TestServiceAPI:
    def run_with_api(self, scenario, config=None):
        async def driver():
            net = ShareBackupNetwork(4, 1)
            controller = ShareBackupController(
                net,
                degrade_to_reroute=True,
                rng=derive_seed(5, "controller"),
            )
            service = RecoveryService(controller, config=config)
            api = ServiceAPI(service)
            await service.start()
            await api.start()
            try:
                return await asyncio.wait_for(
                    scenario(net, service, api), timeout=30
                )
            finally:
                await api.stop()
                await service.stop()

        return asyncio.run(driver())

    def test_healthz_and_unknown_routes(self):
        async def scenario(net, service, api):
            ok = await http_request(api.host, api.port, "GET", "/healthz")
            missing = await http_request(api.host, api.port, "GET", "/nope")
            bad_method = await http_request(
                api.host, api.port, "PUT", "/healthz"
            )
            return ok, missing, bad_method

        ok, missing, bad_method = self.run_with_api(scenario)
        assert ok[0] == 200 and ok[1]["status"] == "ok"
        assert missing[0] == 404
        assert bad_method[0] == 405

    def test_failure_post_drives_a_decision(self):
        async def scenario(net, service, api):
            slot = first_slot(net)
            status, body = await http_request(
                api.host, api.port, "POST", "/failures",
                {"kind": "node", "logical": slot},
            )
            assert status == 202 and body["accepted"]
            while not service.decisions:
                await asyncio.sleep(0.001)
            listed = await http_request(
                api.host, api.port, "GET", "/decisions"
            )
            metrics = await http_request(
                api.host, api.port, "GET", "/metrics"
            )
            return slot, listed, metrics

        slot, (status, listed), (mstatus, metrics) = self.run_with_api(
            scenario
        )
        assert status == 200
        assert listed["total"] == 1
        assert listed["decisions"][0]["logical"] == slot
        assert listed["decisions"][0]["outcome"] == "recovered"
        assert mstatus == 200 and metrics["decisions"] == 1

    def test_heartbeat_post_accepts_batches(self):
        async def scenario(net, service, api):
            status, body = await http_request(
                api.host, api.port, "POST", "/heartbeats",
                {"switches": ["sw-0", "sw-1", "sw-2"]},
            )
            single = await http_request(
                api.host, api.port, "POST", "/heartbeats",
                {"switch": "sw-3"},
            )
            while service.fleet.heartbeats_recorded < 4:
                await asyncio.sleep(0.001)
            return status, body, single

        status, body, (sstatus, _) = self.run_with_api(scenario)
        assert status == 202
        assert body == {"accepted": 3, "submitted": 3}
        assert sstatus == 202

    def test_backpressure_surfaces_as_429(self):
        # An unstarted service never drains, so the reject policy and
        # the 429 mapping can be observed deterministically.
        async def driver():
            net = ShareBackupNetwork(4, 1)
            controller = ShareBackupController(net)
            service = RecoveryService(
                controller,
                config=ServiceConfig(report_queue_size=1),
            )
            api = ServiceAPI(service)
            await api.start()
            slot = first_slot(net)
            body = {"kind": "node", "logical": slot}
            try:
                first = await http_request(
                    api.host, api.port, "POST", "/failures", body
                )
                second = await http_request(
                    api.host, api.port, "POST", "/failures", body
                )
            finally:
                await api.stop()
            return first, second

        first, second = asyncio.run(driver())
        assert first[0] == 202
        assert second[0] == 429
        assert second[1]["rejected"] == 1

    def test_malformed_requests_get_400(self):
        async def scenario(net, service, api):
            bad_kind = await http_request(
                api.host, api.port, "POST", "/failures",
                {"kind": "cosmic-ray"},
            )
            no_body = await http_request(
                api.host, api.port, "POST", "/failures"
            )
            bad_link = await http_request(
                api.host, api.port, "POST", "/failures",
                {"kind": "link", "end_a": ["A.0.0", ["p0"]]},
            )
            bad_hb = await http_request(
                api.host, api.port, "POST", "/heartbeats",
                {"switches": "not-a-list"},
            )
            return bad_kind, no_body, bad_link, bad_hb

        responses = self.run_with_api(scenario)
        assert [r[0] for r in responses] == [400, 400, 400, 400]

    def test_events_stream_carries_decisions_live(self):
        async def scenario(net, service, api):
            reader, writer = await asyncio.open_connection(
                api.host, api.port
            )
            writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            slot = first_slot(net)
            await http_request(
                api.host, api.port, "POST", "/failures",
                {"kind": "node", "logical": slot},
            )
            decision = None
            while decision is None:
                event = json.loads(await reader.readline())
                if event["type"] == "decision":
                    decision = event
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return slot, decision

        slot, decision = self.run_with_api(scenario)
        assert decision["logical"] == slot
        assert decision["outcome"] == "recovered"
        assert "seq" in decision and "latency" in decision
