"""Watchdog (in-loop keep-alive detection) tests."""

import math

import pytest

from repro.core import ShareBackupNetwork
from repro.core.watchdog import WatchdogSimulation
from repro.simulation import CoflowSpec, FlowSpec

GBIT = 1.25e8


def make(k=8, horizon=None):
    net = ShareBackupNetwork(k, n=1)
    spec = CoflowSpec(
        1, 0.0, (FlowSpec(1, 1, "H.0.0.0", f"H.{k-1}.0.0", 100 * GBIT),)
    )
    return net, WatchdogSimulation(net, [spec], horizon=horizon)


class TestDetectionSchedule:
    def test_deadline_on_probe_boundary(self):
        net, sim = make()
        interval = sim.probe_interval()
        deadline = sim.detection_deadline(0.0101)
        assert deadline >= 0.0101 + sim.controller.miss_threshold * interval
        # lands exactly on a probe boundary
        assert deadline / interval == pytest.approx(round(deadline / interval))

    def test_death_just_after_boundary_waits_longer(self):
        net, sim = make()
        interval = sim.probe_interval()
        just_after = sim.detection_deadline(5 * interval + 1e-6)
        just_before = sim.detection_deadline(6 * interval - 1e-6)
        assert just_after - (5 * interval + 1e-6) > just_before - (
            6 * interval - 1e-6
        )


class TestEndToEnd:
    def test_silent_failure_detected_and_recovered(self):
        net, sim = make()
        path = sim.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        victim = path.nodes[3]
        sim.inject_silent_switch_failure(3.0, victim)
        result = sim.run()
        record = result.flows[1]
        assert record.finish is not None
        assert record.reroutes == 0
        # stall = detection (3-4 probe intervals) + sub-ms control/reconfig
        interval = sim.probe_interval()
        threshold = sim.controller.miss_threshold * interval
        assert threshold <= record.stalled_time <= threshold + 2 * interval
        assert sim.detections and sim.detections[0][0] == victim
        net.verify_fattree_equivalence()

    def test_measured_detection_latency(self):
        net, sim = make()
        path = sim.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        victim = path.nodes[2]
        sim.inject_silent_switch_failure(2.0005, victim)
        sim.run()
        latency = sim.detection_latency(victim)
        interval = sim.probe_interval()
        assert latency is not None
        assert (
            sim.controller.miss_threshold * interval
            <= latency
            <= (sim.controller.miss_threshold + 1) * interval
        )

    def test_off_path_silent_failure_invisible_to_flow(self):
        net, sim = make()
        path = sim.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        bystander = next(
            c for c in net.logical.core_switches() if c not in path.nodes
        )
        sim.inject_silent_switch_failure(3.0, bystander)
        result = sim.run()
        assert result.flows[1].finish == pytest.approx(10.0)
        assert result.flows[1].stalled_time == 0.0
        assert sim.detections  # it was still detected and recovered
        net.verify_fattree_equivalence()

    def test_two_silent_failures_different_groups(self):
        net, sim = make()
        sim.inject_silent_switch_failure(1.0, "A.1.0")
        sim.inject_silent_switch_failure(2.0, "C.5")
        result = sim.run()
        assert result.flows[1].finish is not None
        assert len(sim.detections) == 2
        assert all(r.fully_recovered for r in sim.reports)
        net.verify_fattree_equivalence()

    def test_detection_of_replacement_backup(self):
        """A spare that took over and then dies silently is detected too
        (the watchdog follows the assignment, not the original names)."""
        net, sim = make()
        sim.inject_silent_switch_failure(1.0, "A.0.0")  # BA.0.0 takes over
        result_unused = None
        sim.inject_silent_switch_failure(5.0, "A.0.0")  # now kills BA.0.0
        result_unused = sim.run()
        physicals = [d[0] for d in sim.detections]
        assert physicals[0] == "A.0.0"
        assert physicals[1] == "BA.0.0"
        # second failure found the spare pool empty -> unrecovered
        assert not sim.reports[1].fully_recovered
