"""Packet-level cross-validation of the fluid max-min model.

These tests are the evidence behind DESIGN.md's substitution argument:
on small scenarios, steady-state per-flow throughput of a slotted
store-and-forward simulator with per-flow round-robin + backpressure
matches the progressive-filling max-min allocation within a few percent.
"""

import pytest

from repro.routing import Path
from repro.routing.paths import DirectedSegment
from repro.simulation import max_min_rates
from repro.simulation.packetsim import PacketFlow, PacketLevelSimulator
from repro.topology import FatTree, Node, NodeKind, Topology

WARMUP = 3000
WINDOW = 12000


def chain(n_links: int) -> Topology:
    """A path topology h0 - s1 - s2 - ... - hN (unit-capacity links)."""
    topo = Topology("chain")
    topo.add_node(Node("h0", NodeKind.HOST))
    prev = "h0"
    for i in range(1, n_links):
        name = f"s{i}"
        topo.add_node(Node(name, NodeKind.EDGE, index=i))
        topo.add_link(prev, name, capacity=1.0)
        prev = name
    topo.add_node(Node("hN", NodeKind.HOST))
    topo.add_link(prev, "hN", capacity=1.0)
    return topo


def fluid_rates(topo, flows):
    capacities = {}
    for link in topo.links.values():
        capacities[DirectedSegment(link.link_id, True)] = 1.0
        capacities[DirectedSegment(link.link_id, False)] = 1.0
    segments = {
        f.flow_id: f.path.segments(topo, f.flow_id) for f in flows
    }
    return max_min_rates(segments, capacities)


def compare(topo, flows, rel=0.08):
    sim = PacketLevelSimulator(topo, flows)
    measured = sim.throughputs(WARMUP, WINDOW)
    expected = fluid_rates(topo, flows)
    for flow in flows:
        assert measured[flow.flow_id] == pytest.approx(
            expected[flow.flow_id], rel=rel, abs=0.02
        ), (
            f"flow {flow.flow_id}: packet-level {measured[flow.flow_id]:.3f} "
            f"vs fluid {expected[flow.flow_id]:.3f}"
        )
    return measured, expected


class TestAgainstFluid:
    def test_single_flow_line_rate(self):
        topo = chain(3)
        flows = [PacketFlow(1, Path(("h0", "s1", "s2", "hN")))]
        measured, _ = compare(topo, flows)
        assert measured[1] == pytest.approx(1.0, rel=0.02)

    def test_two_flows_one_bottleneck(self):
        topo = chain(3)
        flows = [
            PacketFlow(1, Path(("h0", "s1", "s2", "hN"))),
            PacketFlow(2, Path(("h0", "s1", "s2", "hN"))),
        ]
        measured, _ = compare(topo, flows)
        assert measured[1] == pytest.approx(0.5, rel=0.05)

    def test_unequal_maxmin_allocation(self):
        """A,B,C share link1; C continues onto link2 shared with D.
        Max-min: A=B=C=1/3, D=2/3 — the packet simulator must find the
        same split (this is where naive equal-split models go wrong)."""
        topo = Topology("parking-lot")
        for name, kind in (
            ("ha", NodeKind.HOST),
            ("hb", NodeKind.HOST),
            ("hc", NodeKind.HOST),
            ("hd", NodeKind.HOST),
            ("s1", NodeKind.EDGE),
            ("s2", NodeKind.EDGE),
            ("s3", NodeKind.EDGE),
        ):
            topo.add_node(Node(name, kind))
        topo.add_link("ha", "s1", 1.0)
        topo.add_link("hb", "s1", 1.0)
        topo.add_link("hc", "s1", 1.0)
        topo.add_link("hd", "s2", 1.0)
        topo.add_link("s1", "s2", 1.0)  # link1: A, B, C
        topo.add_link("s2", "s3", 1.0)  # link2: C, D
        flows = [
            PacketFlow(1, Path(("ha", "s1", "s2"))),
            PacketFlow(2, Path(("hb", "s1", "s2"))),
            PacketFlow(3, Path(("hc", "s1", "s2", "s3"))),
            PacketFlow(4, Path(("hd", "s2", "s3"))),
        ]
        measured, expected = compare(topo, flows, rel=0.10)
        assert expected[3] == pytest.approx(1 / 3)
        assert expected[4] == pytest.approx(2 / 3)

    def test_parking_lot_on_fattree(self):
        """Real fat-tree hops: two flows share a host uplink; a third flow
        rides an otherwise-idle path at full rate."""
        tree = FatTree(4)
        for link in tree.links.values():
            link.capacity = 1.0
        from repro.routing import EcmpSelector

        selector = EcmpSelector(tree)
        p1 = selector.select("H.0.0.0", "H.3.0.0", 1)
        p2 = selector.select("H.0.0.0", "H.2.0.0", 2)
        p3 = selector.select("H.1.1.1", "H.0.1.1", 3)
        flows = [PacketFlow(1, p1), PacketFlow(2, p2), PacketFlow(3, p3)]
        measured, expected = compare(tree, flows, rel=0.10)
        assert expected[1] == pytest.approx(0.5)
        assert expected[3] == pytest.approx(1.0)

    def test_queue_capacity_validation(self):
        with pytest.raises(ValueError):
            PacketLevelSimulator(chain(2), [], queue_capacity=0)

    def test_throughput_window_validation(self):
        sim = PacketLevelSimulator(chain(2), [])
        with pytest.raises(ValueError):
            sim.throughputs(-1, 10)
        with pytest.raises(ValueError):
            sim.throughputs(0, 0)
