"""Property-based tests of offline failure diagnosis.

The safety law of §4.2's procedure, checked over random fault
placements: **no false exonerations** — a probe can only pass if the
suspect interface is genuinely healthy, so a faulty interface is always
condemned.  Conversely, a healthy suspect is exonerated whenever some
test partner with a healthy interface exists (the paper's "both sides
have at least one healthy interface" condition); when every reachable
partner is faulty too, the paper's conservative default (condemn) is
allowed to fire.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ShareBackupController, ShareBackupNetwork


LINKS = [
    ("E.0.0", ("up", 0), "A.0.0", ("down", 0)),
    ("E.0.1", ("up", 2), "A.0.0", ("down", 1)),
    ("A.1.0", ("up", 1), "C.1", ("pod", 1)),
    ("A.2.2", ("up", 0), "C.6", ("pod", 2)),
]


@st.composite
def fault_scenarios(draw):
    link = draw(st.sampled_from(LINKS))
    dev_a, if_a, dev_b, if_b = link
    a_faulty = draw(st.booleans())
    b_faulty = draw(st.booleans())
    # Optionally break some of the suspects' *other* interfaces too,
    # making the ring probes harder.
    extra_breakage = draw(st.integers(min_value=0, max_value=2))
    return (dev_a, if_a, dev_b, if_b, a_faulty, b_faulty, extra_breakage)


@given(fault_scenarios())
@settings(max_examples=40, deadline=None)
def test_no_false_exonerations(scenario):
    dev_a, if_a, dev_b, if_b, a_faulty, b_faulty, extra = scenario
    net = ShareBackupNetwork(6, n=1)
    ctrl = ShareBackupController(net)
    faults = []
    if a_faulty:
        faults.append((dev_a, if_a))
    if b_faulty:
        faults.append((dev_b, if_b))
    # break additional interfaces of suspect A (same kind, other indices)
    kind, index = if_a
    for step in range(1, extra + 1):
        faults.append((dev_a, (kind, (index + step) % 3)))

    ctrl.handle_link_failure(
        (dev_a, if_a), (dev_b, if_b), true_faulty_interfaces=tuple(faults)
    )
    result = ctrl.run_pending_diagnoses()[0]

    # Safety: a faulty suspect interface is never exonerated.
    if a_faulty:
        assert dev_a in result.condemned_devices()
    if b_faulty:
        assert dev_b in result.condemned_devices()

    # Progress: a fully healthy suspect (no faults at all on it) whose
    # probes can reach a healthy partner is exonerated.  With n=1 and at
    # most one other offline suspect, config (2)/(3) reaches the
    # suspect's own healthy interfaces, so this holds whenever the
    # suspect has no extra breakage.
    if not a_faulty and extra == 0:
        assert dev_a in result.exonerated_devices()
    if not b_faulty:
        assert dev_b in result.exonerated_devices()

    # The network's production side is never disturbed by diagnosis.
    net.verify_fattree_equivalence()


@given(st.sampled_from(LINKS))
@settings(max_examples=8, deadline=None)
def test_diagnosis_restocks_exactly_the_healthy_side(link):
    dev_a, if_a, dev_b, if_b = link
    net = ShareBackupNetwork(6, n=1)
    ctrl = ShareBackupController(net)
    ctrl.handle_link_failure(
        (dev_a, if_a), (dev_b, if_b), true_faulty_interfaces=((dev_b, if_b),)
    )
    ctrl.run_pending_diagnoses()
    group_a = net.group_of(dev_a)
    group_b = net.group_of(dev_b)
    assert dev_a in group_a.spares  # exonerated hardware restocks the pool
    assert dev_b in group_b.offline  # condemned hardware awaits repair
