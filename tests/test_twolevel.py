"""Two-level routing: table construction and full logical forwarding walks."""

import pytest

from repro.routing import Packet, TwoLevelRouting
from repro.topology import F10Tree, FatTree


def walk(tree: FatTree, routing: TwoLevelRouting, src: str, dst: str) -> list[str]:
    """Forward a packet switch-by-switch over the *logical* topology using
    the two-level tables and the host VLAN-tagging convention."""
    plan = tree.plan
    _, sp, se, sh = src.split(".")
    _, dp, de, dh = dst.split(".")
    src_addr = tree.nodes[src].attrs["address"]
    dst_addr = tree.nodes[dst].attrs["address"]
    vlan = (
        None
        if (sp, se) == (dp, de)
        else routing.vlan_of_edge(int(sp), int(se))
    )
    pkt = Packet(src_addr, dst_addr, vlan=vlan)
    current = f"E.{sp}.{se}"
    trail = [src, current]
    for _ in range(8):
        node = tree.nodes[current]
        if node.kind.value == "edge":
            table = routing.edge_table(node.pod, node.index)
        elif node.kind.value == "aggregation":
            table = routing.agg_table(node.pod)
        else:
            table = routing.core_table()
        port = table.lookup(pkt)
        nxt = routing.resolve_port(current, port)
        if node.kind.value == "aggregation" and nxt.startswith("E."):
            pkt.vlan = None  # agg strips the tag going down
        trail.append(nxt)
        if nxt.startswith("H."):
            return trail
        current = nxt
    raise AssertionError(f"loop: {trail}")


class TestTableShapes:
    def test_edge_table_entry_count(self, ft4):
        r = TwoLevelRouting(ft4)
        table = r.edge_table(0, 0)
        # k/2 in-bound + k/2 out-bound suffix entries, no prefixes
        assert len(table.suffix_entries) == 4
        assert len(table.prefix_entries) == 0

    def test_edge_outbound_rotation_differs_per_edge(self, ft4):
        r = TwoLevelRouting(ft4)
        t0 = r.edge_table(0, 0, tagged=False)
        t1 = r.edge_table(0, 1, tagged=False)
        out0 = {
            (e.suffix, e.port)
            for e in t0.suffix_entries
            if e.port.startswith("up")
        }
        out1 = {
            (e.suffix, e.port)
            for e in t1.suffix_entries
            if e.port.startswith("up")
        }
        assert out0 != out1

    def test_edge_inbound_shared_across_pod(self, ft4):
        """The paper: in-bound entries are identical for all edges of a pod."""
        r = TwoLevelRouting(ft4)
        def inbound(e):
            t = r.edge_table(0, e)
            return {
                (x.suffix, x.port)
                for x in t.suffix_entries
                if x.port.startswith("host")
            }
        assert inbound(0) == inbound(1)

    def test_agg_table_shared_and_sized(self, ft6):
        r = TwoLevelRouting(ft6)
        t = r.agg_table(0)
        assert len(t.prefix_entries) == 3 + 1  # k/2 subnets + /0
        assert len(t.suffix_entries) == 3

    def test_core_table_one_prefix_per_pod(self, ft6):
        r = TwoLevelRouting(ft6)
        assert len(r.core_table().prefix_entries) == 6

    def test_vlan_ids_unique(self, ft8):
        r = TwoLevelRouting(ft8)
        vlans = {
            r.vlan_of_edge(p, e) for p in range(8) for e in range(4)
        }
        assert len(vlans) == 32


class TestResolvePort:
    def test_edge_ports(self, ft4):
        r = TwoLevelRouting(ft4)
        assert r.resolve_port("E.1.0", "host1") == "H.1.0.1"
        assert r.resolve_port("E.1.0", "up1") == "A.1.1"

    def test_agg_ports(self, ft4):
        r = TwoLevelRouting(ft4)
        assert r.resolve_port("A.1.1", "down0") == "E.1.0"
        assert r.resolve_port("A.1.1", "up0") == "C.2"

    def test_core_ports(self, ft4):
        r = TwoLevelRouting(ft4)
        assert r.resolve_port("C.3", "pod2") == "A.2.1"

    def test_bad_port_raises(self, ft4):
        r = TwoLevelRouting(ft4)
        with pytest.raises(ValueError):
            r.resolve_port("E.0.0", "weird9")

    def test_resolve_respects_f10_wiring(self):
        f10 = F10Tree(6)
        r = TwoLevelRouting(f10)
        # pod 1 is type B: agg 1 port up0 -> core column 1 -> C.1
        assert r.resolve_port("A.1.1", "up0") == "C.1"
        # pod 0 is type A: agg 1 port up0 -> row 1 -> C.3
        assert r.resolve_port("A.0.1", "up0") == "C.3"


class TestForwardingWalks:
    @pytest.mark.parametrize(
        "src,dst,hops",
        [
            ("H.0.0.0", "H.0.0.1", 2),  # same rack
            ("H.0.0.0", "H.0.1.1", 4),  # same pod
            ("H.0.0.0", "H.3.1.1", 6),  # inter-pod
            ("H.2.1.1", "H.1.0.0", 6),
        ],
    )
    def test_delivery_and_path_length(self, ft4, src, dst, hops):
        r = TwoLevelRouting(ft4)
        trail = walk(ft4, r, src, dst)
        assert trail[-1] == dst
        assert len(trail) - 1 == hops

    def test_all_pairs_delivered_k4(self, ft4):
        r = TwoLevelRouting(ft4)
        hosts = ft4.all_host_names()
        for src in hosts[:4]:
            for dst in hosts:
                if src == dst:
                    continue
                assert walk(ft4, r, src, dst)[-1] == dst

    def test_forwarding_works_on_f10(self):
        f10 = F10Tree(6)
        r = TwoLevelRouting(f10)
        trail = walk(f10, r, "H.1.0.0", "H.4.2.1")
        assert trail[-1] == "H.4.2.1"
        assert len(trail) - 1 == 6

    def test_uplink_spread(self, ft8):
        """Different host-id suffixes leave an edge on different uplinks."""
        r = TwoLevelRouting(ft8)
        t = r.edge_table(0, 0, tagged=False)
        ports = set()
        for h in range(4):
            pkt = Packet(
                ft8.nodes["H.0.0.0"].attrs["address"],
                ft8.nodes[f"H.1.0.{h}"].attrs["address"],
            )
            ports.add(t.lookup(pkt))
        assert len(ports) == 4
