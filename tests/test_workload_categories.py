"""Custom workload-category coverage (user-defined traffic mixes)."""

import pytest

from repro.workload import CoflowCategory, CoflowTraceGenerator, WorkloadConfig


class TestCustomCategories:
    def test_single_category_all_coflows(self):
        only_wide = (
            CoflowCategory("wide", 1.0, mappers=(4, 4), reducers=(8, 8), short=True),
        )
        cfg = WorkloadConfig(
            num_racks=32, num_coflows=30, duration=10, seed=1, categories=only_wide
        )
        trace = CoflowTraceGenerator(cfg).generate()
        assert all(c.category == "wide" for c in trace)
        assert all(c.width == 32 for c in trace)  # 4 mappers x 8 reducers

    def test_shares_must_sum_to_one(self):
        bad = (
            CoflowCategory("a", 0.6, (1, 1), (1, 1), True),
            CoflowCategory("b", 0.6, (1, 1), (1, 1), True),
        )
        with pytest.raises(ValueError):
            WorkloadConfig(num_racks=8, categories=bad)

    def test_widths_capped_by_rack_count(self):
        huge = (
            CoflowCategory(
                "huge", 1.0, mappers=(50, 50), reducers=(50, 50), short=True
            ),
        )
        cfg = WorkloadConfig(
            num_racks=10, num_coflows=10, duration=5, seed=2, categories=huge
        )
        trace = CoflowTraceGenerator(cfg).generate()
        for coflow in trace:
            racks = {f.src_rack for f in coflow.flows} | {
                f.dst_rack for f in coflow.flows
            }
            assert len(racks) <= 10

    def test_long_category_uses_pareto_range(self):
        long_only = (
            CoflowCategory("elephant", 1.0, (1, 1), (1, 1), short=False),
        )
        cfg = WorkloadConfig(
            num_racks=8,
            num_coflows=60,
            duration=10,
            seed=3,
            categories=long_only,
            long_flow_low=5e7,
            long_flow_high=5e8,
        )
        trace = CoflowTraceGenerator(cfg).generate()
        for coflow in trace:
            for flow in coflow.flows:
                assert 5e7 <= flow.size_bytes <= 5e8 * 1.001

    def test_short_category_uses_lognormal_median(self):
        import numpy as np

        short_only = (
            CoflowCategory("mouse", 1.0, (1, 1), (1, 1), short=True),
        )
        cfg = WorkloadConfig(
            num_racks=8,
            num_coflows=600,
            duration=10,
            seed=4,
            categories=short_only,
            short_flow_median=1e5,
            short_flow_sigma=0.5,
        )
        trace = CoflowTraceGenerator(cfg).generate()
        sizes = [f.size_bytes for c in trace for f in c.flows]
        assert np.median(sizes) == pytest.approx(1e5, rel=0.2)
