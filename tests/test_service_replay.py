"""A/B regression: the service path equals the call-driven path.

The acceptance criterion of the service subsystem: replaying one chaos
schedule through the live :class:`RecoveryService` (virtual clock,
heartbeat emitter, boundary scans, resolver) must produce the *same
failover decisions* — order-insensitive — as the call-driven
:class:`WatchdogSimulation` inside :class:`ChaosHarness`, and must
detect each silent switch at the *same probe boundary*.  The service
adds scheduling, queues, and an API around the controller; it must not
add (or lose) a single recovery.
"""

import pytest

from repro.chaos.faults import ChaosFault, FaultSchedule
from repro.chaos.harness import ChaosHarness, ChaosScenarioConfig
from repro.core.sharebackup import ShareBackupNetwork
from repro.service import (
    ServiceReplay,
    decision_key,
    report_decision_key,
    run_service_replay,
)


def slots_of(k, n):
    net = ShareBackupNetwork(k, n)
    slots = []
    for gid in sorted(net.groups):
        slots.extend(sorted(net.groups[gid].logical_slots))
    return slots


def call_driven_keys(config, schedule):
    """Run the chaos harness; distil sorted decision keys + detections."""
    harness = ChaosHarness(config, schedule=schedule)
    harness.run()
    keys = tuple(sorted(report_decision_key(r) for r in harness.sim.reports))
    detections = tuple(
        sorted((switch, detected) for switch, _died, detected
               in harness.sim.detections)
    )
    return keys, detections


def service_keys(config, schedule):
    outcome = run_service_replay(config, schedule=schedule)
    detections = tuple(sorted(outcome.detections))
    return outcome.decision_keys(), detections, outcome


class TestDecisionIdentity:
    def test_silent_failures_pinned_schedule(self):
        config = ChaosScenarioConfig(k=4, n=1, seed=21, duration=0.3)
        slots = slots_of(4, 1)
        schedule = FaultSchedule(
            seed=21,
            faults=(
                ChaosFault(0.0123, "silent-node-failure", slots[0]),
                ChaosFault(0.0217, "silent-node-failure", slots[3]),
                ChaosFault(0.0409, "silent-node-failure", slots[5]),
            ),
        )
        ab_keys, ab_detections = call_driven_keys(config, schedule)
        svc_keys, svc_detections, outcome = service_keys(config, schedule)
        assert svc_keys == ab_keys
        assert len(svc_keys) == 3
        assert [s for s, _t in svc_detections] == [
            s for s, _t in ab_detections
        ]
        for (_sw_a, t_a), (_sw_b, t_b) in zip(svc_detections, ab_detections):
            assert t_a == pytest.approx(t_b)  # identical probe boundary
        assert outcome.errors == 0

    def test_heartbeat_loss_spurious_vs_absorbed(self):
        # One outage outlives the miss threshold (3 × 1 ms): a spurious
        # failover both paths must commit.  One is shorter: both paths
        # must absorb it without any decision.
        config = ChaosScenarioConfig(k=4, n=1, seed=22, duration=0.3)
        slots = slots_of(4, 1)
        spurious = FaultSchedule(
            seed=22,
            faults=(
                ChaosFault(0.0311, "heartbeat-loss", slots[1],
                           duration=0.0045),
            ),
        )
        absorbed = FaultSchedule(
            seed=22,
            faults=(
                ChaosFault(0.0402, "heartbeat-loss", slots[1],
                           duration=0.0012),
            ),
        )
        for schedule, expected in ((spurious, 1), (absorbed, 0)):
            ab_keys, ab_detections = call_driven_keys(config, schedule)
            svc_keys, svc_detections, _ = service_keys(config, schedule)
            assert svc_keys == ab_keys
            assert len(svc_keys) == expected
            assert len(svc_detections) == len(ab_detections) == expected

    def test_generated_control_plane_schedule(self):
        # The stock generator's control-plane profile mixes fault kinds
        # (reboots, drains, crashes, losses); identity must survive the
        # full vocabulary, not just hand-picked silences.
        config = ChaosScenarioConfig(
            k=4, n=1, seed=7, duration=0.2, profile="control-plane"
        )
        ab_keys, ab_detections = call_driven_keys(config, schedule=None)
        svc_keys, svc_detections, outcome = service_keys(
            config, schedule=None
        )
        assert svc_keys == ab_keys
        assert [s for s, _t in svc_detections] == [
            s for s, _t in ab_detections
        ]
        for (_sw_a, t_a), (_sw_b, t_b) in zip(svc_detections, ab_detections):
            assert t_a == pytest.approx(t_b)

    def test_mixed_profile_schedule_across_seeds(self):
        for seed in (3, 13):
            config = ChaosScenarioConfig(
                k=4, n=1, seed=seed, duration=0.2, profile="mixed"
            )
            ab_keys, _ = call_driven_keys(config, schedule=None)
            svc_keys, _, outcome = service_keys(config, schedule=None)
            assert svc_keys == ab_keys
            assert svc_keys, f"seed {seed} produced no decisions at all"
            assert outcome.errors == 0


class TestReplayDeterminism:
    def test_same_inputs_same_outcome(self):
        config = ChaosScenarioConfig(
            k=4, n=1, seed=7, duration=0.2, profile="control-plane"
        )
        first = run_service_replay(config)
        second = run_service_replay(config)
        assert first.to_dict() == second.to_dict()

    def test_decision_keys_are_order_insensitive(self):
        config = ChaosScenarioConfig(
            k=4, n=1, seed=7, duration=0.2, profile="control-plane"
        )
        outcome = run_service_replay(config)
        keys = outcome.decision_keys()
        assert keys == tuple(sorted(keys))
        assert all(
            decision_key(d) in keys for d in outcome.decisions
        )

    def test_default_horizon_covers_every_detection(self):
        config = ChaosScenarioConfig(k=4, n=1, seed=21, duration=0.3)
        slots = slots_of(4, 1)
        schedule = FaultSchedule(
            seed=21,
            faults=(ChaosFault(0.05, "silent-node-failure", slots[0]),),
        )
        replay = ServiceReplay(config, schedule=schedule)
        horizon = replay.default_horizon()
        assert horizon > replay.detection_deadline(0.05)
        outcome = replay.run()
        assert len(outcome.decisions) == 1
        # The detection landed before the horizon with margin to spare.
        assert outcome.detections[0][1] <= horizon

    def test_metrics_travel_with_the_outcome(self):
        config = ChaosScenarioConfig(k=4, n=1, seed=21, duration=0.3)
        slots = slots_of(4, 1)
        schedule = FaultSchedule(
            seed=21,
            faults=(ChaosFault(0.02, "silent-node-failure", slots[2]),),
        )
        outcome = run_service_replay(config, schedule=schedule)
        assert outcome.metrics["decisions"] == len(outcome.decisions) == 1
        assert outcome.metrics["heartbeat_queue"]["dropped_oldest"] == 0
        assert outcome.events_published >= 2  # lifecycle + decision
        assert outcome.outcome_counts() == {"recovered": 1}
