"""The degradation ladder: retries, alternate spares, reroute fallback.

Pins both sides of the contract: the legacy behaviour (default,
``degrade_to_reroute=False``) — halted controllers raise and exhausted
pools strand — and the hardened ladder, where the same situations
degrade to global optimal rerouting with an auditable trail.
"""

import pytest

from repro.core import (
    ControllerCluster,
    DegradationReport,
    DegradationStep,
    HumanInterventionRequired,
    ShareBackupController,
    ShareBackupNetwork,
)
from repro.core.circuit_switch import CircuitSwitchError
from repro.core.watchdog import WatchdogSimulation
from repro.retry import RetryPolicy
from repro.routing import FallbackRouter
from repro.simulation import CoflowSpec, FlowSpec

GBIT = 1.25e8


def drain_pool(net, group):
    """Pull every spare of ``group`` offline (maintenance-style)."""
    while group.spares:
        spare = group.spares.pop()
        group.offline.add(spare)
        net.physical_health[spare] = False


def one_shot_injector():
    """A fault injector raising CircuitSwitchError exactly once."""
    budget = {"remaining": 1}

    def injector(cs, changes):
        if budget["remaining"] > 0:
            budget["remaining"] -= 1
            raise CircuitSwitchError(f"{cs.name}: injected transient fault")

    return injector


# ----------------------------------------------------------------------
# audit-record units
# ----------------------------------------------------------------------


class TestDegradationRecords:
    def test_fast_path_is_not_degraded(self):
        report = DegradationReport(
            kind="node",
            logical="A.0.0",
            time=1.0,
            steps=(DegradationStep("assign-backup", "BA.0.0", 1, "ok"),),
            outcome="recovered",
        )
        assert not report.degraded
        assert report.retries == 0

    def test_retried_recovery_is_degraded(self):
        report = DegradationReport(
            kind="node",
            logical="A.0.0",
            time=1.0,
            steps=(DegradationStep("assign-backup", "BA.0.0", 3, "ok"),),
            outcome="recovered",
        )
        assert report.degraded
        assert report.retries == 2

    def test_alternate_spare_is_degraded(self):
        report = DegradationReport(
            kind="node",
            logical="A.0.0",
            time=1.0,
            steps=(
                DegradationStep("assign-backup", "BA.0.0", 3, "failed"),
                DegradationStep("assign-backup", "BA.0.1", 1, "ok"),
            ),
            outcome="recovered",
        )
        assert report.degraded
        assert report.retries == 2

    def test_dict_roundtrip(self):
        report = DegradationReport(
            kind="link",
            logical="E.1.0",
            time=2.5,
            steps=(
                DegradationStep("allocate-backup", "FG.edge.1", 1, "exhausted"),
                DegradationStep("reroute", "E.1.0", 1, "ok"),
            ),
            outcome="rerouted",
        )
        assert DegradationReport.from_dict(report.to_dict()) == report


# ----------------------------------------------------------------------
# rung 1: retried circuit reconfiguration
# ----------------------------------------------------------------------


class TestRetriedReconfiguration:
    def test_transient_fault_is_retried_and_charged(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        group = net.group_of("A.0.0")
        for cs in net.circuit_switches_of(group.group_id):
            cs.fault_injector = one_shot_injector()
            break  # one faulty switch is enough to abort the batch

        report = controller.handle_node_failure("A.0.0")
        assert report.fully_recovered
        # One degradation record: the fast path needed a retry.
        assert len(controller.degradations) == 1
        audit = controller.degradations[0]
        assert audit.outcome == "recovered"
        assert audit.retries == 1
        # The backoff is charged to the recovery latency.
        base = controller.timing.sharebackup("crosspoint").total
        assert report.recovery_time > base
        net.verify_fattree_equivalence()

    def test_clean_recovery_leaves_no_audit_record(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        report = controller.handle_node_failure("A.0.0")
        assert report.fully_recovered
        assert controller.degradations == []

    def test_retry_policy_is_configurable(self):
        net = ShareBackupNetwork(6, n=1)
        # Zero retries: a single transient fault exhausts the spare.
        controller = ShareBackupController(
            net, retry_policy=RetryPolicy(max_retries=0)
        )
        group = net.group_of("A.0.0")
        for cs in net.circuit_switches_of(group.group_id):
            cs.fault_injector = one_shot_injector()
            break
        report = controller.handle_node_failure("A.0.0")
        # n=1: the only spare failed its only attempt -> stranded.
        assert not report.fully_recovered
        assert report.unrecoverable == ("A.0.0",)


# ----------------------------------------------------------------------
# rung 2: the alternate idle spare
# ----------------------------------------------------------------------


class TestAlternateSpare:
    def test_stuck_crosspoints_fall_back_to_next_spare(self):
        net = ShareBackupNetwork(6, n=2)
        controller = ShareBackupController(net)
        group = net.group_of("A.0.0")
        first = group.spares[0]
        for cs in net.circuit_switches_of(group.group_id):
            cs.stuck_ports.update(cs.ports_of_device(first))

        report = controller.handle_node_failure("A.0.0")
        assert report.fully_recovered
        spare = dict(report.replaced)["A.0.0"]
        assert spare != first
        audit = controller.degradations[0]
        outcomes = [(s.target, s.outcome) for s in audit.steps]
        assert outcomes[0] == (first, "failed")
        assert outcomes[1] == (spare, "ok")
        # The jammed spare returned to the pool (hardware is idle and
        # healthy; the circuit switches are to blame), at the tail.
        assert group.spares == [first]
        net.verify_fattree_equivalence()


# ----------------------------------------------------------------------
# rung 3: degradation to global rerouting (and the legacy contracts)
# ----------------------------------------------------------------------


class TestPoolExhaustion:
    def test_legacy_contract_strands_without_raising(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        group = net.group_of("A.0.0")
        drain_pool(net, group)
        report = controller.handle_node_failure("A.0.0")
        assert not report.fully_recovered
        assert report.unrecoverable == ("A.0.0",)
        assert report.degraded == ()

    def test_ladder_degrades_to_reroute(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net, degrade_to_reroute=True)
        group = net.group_of("A.0.0")
        drain_pool(net, group)
        report = controller.handle_node_failure("A.0.0")
        assert not report.fully_recovered
        assert report.unrecoverable == ("A.0.0",)
        assert report.degraded == ("A.0.0",)
        audit = controller.degradations[0]
        assert audit.outcome == "rerouted"
        assert [s.action for s in audit.steps] == ["allocate-backup", "reroute"]


class TestHaltedController:
    def test_legacy_contract_raises(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        controller.halted = True
        with pytest.raises(HumanInterventionRequired):
            controller.handle_node_failure("A.0.0")

    def test_ladder_reroutes_instead_of_raising(self):
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net, degrade_to_reroute=True)
        controller.halted = True
        report = controller.handle_node_failure("A.0.0")
        assert report.degraded == ("A.0.0",)
        audit = controller.degradations[0]
        assert audit.outcome == "rerouted"
        # The backup rung was skipped, not attempted: the circuit
        # switches are suspect, so reconfiguring them would be reckless.
        assert audit.steps[0].outcome == "skipped"
        # The spare pool was never touched.
        assert len(net.group_of("A.0.0").spares) == net.n


# ----------------------------------------------------------------------
# controller cluster: failover re-snapshots circuit intent
# ----------------------------------------------------------------------


class TestClusterResnapshot:
    def test_fail_primary_elects_successor(self):
        cluster = ControllerCluster()
        assert cluster.primary == "ctrl-0"
        assert cluster.elections == 1
        failed = cluster.fail_primary()
        assert failed == "ctrl-0"
        assert cluster.primary == "ctrl-1"
        assert cluster.elections == 2
        cluster.restore_replica("ctrl-0")
        assert cluster.primary == "ctrl-0"

    def test_all_replicas_down_means_unavailable(self):
        cluster = ControllerCluster(replica_ids=("a", "b"))
        cluster.fail_primary()
        cluster.fail_primary()
        assert cluster.fail_primary() is None
        assert not cluster.available

    def test_new_primary_resnapshots_intent(self):
        """Regression: a replica elected mid-recovery must re-derive
        circuit intent from the live network, not trust the snapshot
        replicated from the crashed primary — else a later circuit-switch
        reboot restores pre-failover ghost wiring."""
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        cluster = ControllerCluster(controller=controller)

        group = net.group_of("A.0.0")
        cs = net.circuit_switches_of(group.group_id)[0]
        stale = cs.mapping()
        # Rewire behind the controller's back (models reconfigurations
        # the crashed primary made after its last intent replication).
        net.failover("A.0.0", group.allocate_spare())
        current = cs.mapping()
        assert current != stale

        cluster.fail_primary()  # successor re-snapshots from the live net
        cs.crash()
        controller.circuit_switch_rebooted(cs.name)
        assert cs.mapping() == current

    def test_without_election_the_stale_snapshot_would_win(self):
        """The behaviour the regression test guards against, pinned so
        the re-snapshot keeps mattering."""
        net = ShareBackupNetwork(6, n=1)
        controller = ShareBackupController(net)
        controller.snapshot_intended_configs()  # primary's last replication
        group = net.group_of("A.0.0")
        cs = net.circuit_switches_of(group.group_id)[0]
        stale = cs.mapping()
        net.failover("A.0.0", group.allocate_spare())
        cs.crash()
        controller.circuit_switch_rebooted(cs.name)
        assert cs.mapping() == stale  # no election happened: ghost wiring


# ----------------------------------------------------------------------
# end to end: exhaustion absorbed by rerouting inside the simulation
# ----------------------------------------------------------------------


class TestWatchdogFallback:
    def test_exhausted_pool_degrades_and_traffic_completes(self):
        k = 6
        net = ShareBackupNetwork(k, n=1)
        controller = ShareBackupController(net, degrade_to_reroute=True)
        spec = CoflowSpec(
            1, 0.0, (FlowSpec(1, 1, "H.0.0.0", f"H.{k-1}.0.0", 100 * GBIT),)
        )
        sim = WatchdogSimulation(net, [spec], controller=controller)
        assert isinstance(sim.router, FallbackRouter)

        path = sim.router.initial_path("H.0.0.0", f"H.{k-1}.0.0", 1)
        victim = next(n for n in path.nodes if n.startswith("A."))
        drain_pool(net, net.group_of(victim))
        sim.inject_silent_switch_failure(2.0, victim)

        result = sim.run()
        record = result.flows[1]
        assert record.finish is not None  # rerouting absorbed the slot
        assert sim.router.degraded
        assert sim.reports and sim.reports[0].degraded == (victim,)
        assert controller.degradations[-1].outcome == "rerouted"

    def test_default_controller_keeps_static_router(self):
        net = ShareBackupNetwork(6, n=1)
        spec = CoflowSpec(
            1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.5.0.0", 100 * GBIT),)
        )
        sim = WatchdogSimulation(net, [spec])
        assert not isinstance(sim.router, FallbackRouter)
