"""CLI tests: every subcommand end to end (in-process, captured stdout)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_info_summary(self, capsys):
        out = run(capsys, "info", "--k", "6", "--n", "2")
        assert "k=6" in out and "n=2" in out
        assert "backup switches:       30" in out
        assert "verified == canonical fat-tree" in out


class TestCost:
    def test_cost_paper_numbers_visible(self, capsys):
        out = run(capsys, "cost", "--k", "48", "--n", "1")
        assert "6.7%" in out  # E-DC headline
        assert "13.3%" in out  # O-DC headline
        assert "300.0%" in out  # 1:1 backup


class TestCapacity:
    def test_capacity_table(self, capsys):
        out = run(capsys, "capacity", "--ports", "32")
        assert "58" in out  # the paper's n=1 max-k checkpoint
        assert "3.45%" in out


class TestFailover:
    def test_node_failover(self, capsys):
        out = run(capsys, "failover", "--k", "6", "--victim", "C.2")
        assert "'C.2': 'BC.2.0'" in out
        assert "verified == canonical fat-tree" in out

    def test_link_failover_with_diagnosis(self, capsys):
        out = run(capsys, "failover", "--k", "6", "--victim", "A.1.0", "--link")
        assert "diagnosis:" in out
        assert "condemned ['A.1.0']" in out

    def test_unknown_victim_fails_cleanly(self, capsys):
        assert main(["failover", "--victim", "X.9.9"]) == 2


class TestTrace:
    def test_generate_json_and_convert(self, tmp_path, capsys):
        json_path = tmp_path / "t.json"
        out = run(
            capsys, "trace", "generate", "--racks", "16", "--coflows", "15",
            "--out", str(json_path),
        )
        assert "15 coflows" in out and json_path.exists()

        bench_path = tmp_path / "t.txt"
        out = run(
            capsys, "trace", "convert", "--in", str(json_path), "--racks", "16",
            "--format", "benchmark", "--out", str(bench_path),
        )
        assert "converted 15 coflows" in out
        assert bench_path.read_text().startswith("16 15")

    def test_generate_benchmark_format(self, tmp_path, capsys):
        path = tmp_path / "fb.txt"
        run(
            capsys, "trace", "generate", "--racks", "8", "--coflows", "5",
            "--format", "benchmark", "--out", str(path),
        )
        from repro.workload import load_coflow_benchmark

        racks, trace = load_coflow_benchmark(path)
        assert racks == 8 and len(trace) == 5

    def test_convert_roundtrip_back_to_json(self, tmp_path, capsys):
        fb = tmp_path / "fb.txt"
        run(capsys, "trace", "generate", "--racks", "8", "--coflows", "5",
            "--format", "benchmark", "--out", str(fb))
        back = tmp_path / "back.json"
        run(capsys, "trace", "convert", "--in", str(fb), "--out", str(back),
            "--format", "json")
        from repro.workload import load_trace

        assert len(load_trace(back)) == 5

    def test_convert_without_input_errors(self, capsys):
        assert main(["trace", "convert", "--out", "/tmp/x"]) == 2


class TestStudy:
    def test_study_runs_end_to_end(self, capsys):
        out = run(capsys, "study", "--k", "6", "--coflows", "20")
        assert "affected coflows" in out
        assert "ShareBackup recovery" in out
