"""CLI tests: every subcommand end to end (in-process, captured stdout)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv) -> str:
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestExitCodes:
    """Every failure mode maps to a nonzero code, never a traceback."""

    def test_invalid_library_params_exit_2(self, capsys):
        assert main(["info", "--k", "7"]) == 2  # odd k → ValueError
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_sweep_bad_rates_exit_2(self, capsys):
        assert main(["sweep", "--study", "fig1a", "--rates", "a,b"]) == 2
        assert "--rates" in capsys.readouterr().err

    def test_sweep_bad_replicas_exit_2(self, capsys):
        code = main(["sweep", "--study", "availability", "--replicas", "0"])
        assert code == 2

    def test_sweep_odd_k_exit_2(self, capsys):
        assert main(["sweep", "--study", "fig1a", "--k", "7"]) == 2

    def test_unexpected_failure_exit_1(self, capsys, tmp_path):
        # unreadable trace file → OSError inside the command body
        assert main(["trace", "convert", "--in", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "out.txt")]) == 1
        assert "error:" in capsys.readouterr().err


class TestInfo:
    def test_info_summary(self, capsys):
        out = run(capsys, "info", "--k", "6", "--n", "2")
        assert "k=6" in out and "n=2" in out
        assert "backup switches:       30" in out
        assert "verified == canonical fat-tree" in out


class TestCost:
    def test_cost_paper_numbers_visible(self, capsys):
        out = run(capsys, "cost", "--k", "48", "--n", "1")
        assert "6.7%" in out  # E-DC headline
        assert "13.3%" in out  # O-DC headline
        assert "300.0%" in out  # 1:1 backup


class TestCapacity:
    def test_capacity_table(self, capsys):
        out = run(capsys, "capacity", "--ports", "32")
        assert "58" in out  # the paper's n=1 max-k checkpoint
        assert "3.45%" in out


class TestFailover:
    def test_node_failover(self, capsys):
        out = run(capsys, "failover", "--k", "6", "--victim", "C.2")
        assert "'C.2': 'BC.2.0'" in out
        assert "verified == canonical fat-tree" in out

    def test_link_failover_with_diagnosis(self, capsys):
        out = run(capsys, "failover", "--k", "6", "--victim", "A.1.0", "--link")
        assert "diagnosis:" in out
        assert "condemned ['A.1.0']" in out

    def test_unknown_victim_fails_cleanly(self, capsys):
        assert main(["failover", "--victim", "X.9.9"]) == 2


class TestTrace:
    def test_generate_json_and_convert(self, tmp_path, capsys):
        json_path = tmp_path / "t.json"
        out = run(
            capsys, "trace", "generate", "--racks", "16", "--coflows", "15",
            "--out", str(json_path),
        )
        assert "15 coflows" in out and json_path.exists()

        bench_path = tmp_path / "t.txt"
        out = run(
            capsys, "trace", "convert", "--in", str(json_path), "--racks", "16",
            "--format", "benchmark", "--out", str(bench_path),
        )
        assert "converted 15 coflows" in out
        assert bench_path.read_text().startswith("16 15")

    def test_generate_benchmark_format(self, tmp_path, capsys):
        path = tmp_path / "fb.txt"
        run(
            capsys, "trace", "generate", "--racks", "8", "--coflows", "5",
            "--format", "benchmark", "--out", str(path),
        )
        from repro.workload import load_coflow_benchmark

        racks, trace = load_coflow_benchmark(path)
        assert racks == 8 and len(trace) == 5

    def test_convert_roundtrip_back_to_json(self, tmp_path, capsys):
        fb = tmp_path / "fb.txt"
        run(capsys, "trace", "generate", "--racks", "8", "--coflows", "5",
            "--format", "benchmark", "--out", str(fb))
        back = tmp_path / "back.json"
        run(capsys, "trace", "convert", "--in", str(fb), "--out", str(back),
            "--format", "json")
        from repro.workload import load_trace

        assert len(load_trace(back)) == 5

    def test_convert_without_input_errors(self, capsys):
        assert main(["trace", "convert", "--out", "/tmp/x"]) == 2


class TestStudy:
    def test_study_runs_end_to_end(self, capsys):
        out = run(capsys, "study", "--k", "6", "--coflows", "20")
        assert "affected coflows" in out
        assert "ShareBackup recovery" in out


class TestSweep:
    def _base(self, tmp_path, *extra):
        return (
            "sweep", "--study", "fig1a", "--k", "4", "--hosts-per-edge", "4",
            "--coflows", "12", "--duration", "4", "--samples", "1",
            "--rates", "0.02,0.05", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        )

    def test_fig1a_sweep_end_to_end(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        out = run(capsys, *self._base(tmp_path, "--journal", str(journal)))
        assert "fat-tree" in out and "f10" in out
        assert "sweep:" in out and "cache:" in out  # the RunSummary table
        import json

        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        assert records[0]["event"] == "run_start"
        assert records[-1]["event"] == "run_finish"

    def test_warm_rerun_is_all_cache_hits(self, tmp_path, capsys):
        run(capsys, *self._base(tmp_path))
        out = run(capsys, *self._base(tmp_path))
        assert "(100% hit rate)" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        run(capsys, *self._base(tmp_path))
        out = run(capsys, *self._base(tmp_path, "--no-cache"))
        assert "0 hits" in out

    def test_availability_sweep(self, tmp_path, capsys):
        out = run(
            capsys, "sweep", "--study", "availability", "--group", "4",
            "--spares", "1", "--years", "0.5", "--replicas", "2",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
        )
        assert "mean exposure probability" in out


class TestChaos:
    def test_controller_storm_profile(self, capsys):
        out = run(
            capsys, "chaos", "--k", "4", "--scenarios", "1",
            "--duration", "0.3", "--profile", "controller-storm",
            "--no-cache", "--jobs", "1",
        )
        # The storm really is crash-heavy: elections happened and the
        # schedule carried the crash kinds.
        assert "controller-crash" in out
        assert "service-primary-crash" in out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--profile", "switch-storm"])


class TestServe:
    def test_smoke_without_wal(self, capsys):
        out = run(capsys, "serve", "--smoke", "--k", "4")
        assert "service smoke: OK" in out
        assert "wal:" not in out  # un-federated: no WAL line

    def test_smoke_with_wal_federates_and_persists(self, tmp_path, capsys):
        path = tmp_path / "decisions.wal"
        out = run(capsys, "serve", "--smoke", "--k", "4",
                  "--wal", str(path))
        assert "service smoke: OK" in out
        assert f"wal: {path}" in out
        assert "incomplete=0" in out  # everything decided was committed
        assert path.exists() and path.stat().st_size > 0
        # The persisted log replays cleanly — durable, not just present.
        from repro.service import DecisionWAL

        with DecisionWAL(path) as wal:
            assert wal.stats()["commits"] >= 1
            assert wal.incomplete() == []
