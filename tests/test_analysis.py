"""Analysis-layer tests: CDF utilities, affected metrics, CCT slowdowns,
and the measured Table 3 characteristics probe."""

import math

import pytest

from repro.analysis import (
    PermutationProbe,
    affected_by_scenario,
    cct_slowdowns,
    cdf_at,
    divergence_is_upstream,
    empirical_cdf,
    percentile,
    summarize,
)
from repro.failures import FailureInjector, FailureScenario
from repro.routing import (
    F10LocalRerouteRouter,
    GlobalOptimalRerouteRouter,
    Path,
    StaticEcmpRouter,
)
from repro.simulation import CoflowSpec, FlowSpec, FluidSimulation
from repro.topology import F10Tree, FatTree
from repro.workload import CoflowTraceGenerator, WorkloadConfig, materialize_hosts

GBIT = 1.25e8


class TestCdfUtils:
    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]

    def test_empirical_cdf_empty(self):
        assert empirical_cdf([]) == ([], [])

    def test_empirical_cdf_keeps_inf(self):
        xs, _ = empirical_cdf([1.0, math.inf])
        assert xs[-1] == math.inf

    def test_percentile_nearest_rank(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 90) == 90
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == 0.5

    def test_summarize(self):
        s = summarize([1.0, 2.0, math.inf])
        assert s["count"] == 3 and s["infinite"] == 1
        assert s["median"] == 1.0 or s["median"] == 2.0


class TestAffectedMetrics:
    def make_trace(self, tree, n=60, seed=3):
        cfg = WorkloadConfig(
            num_racks=tree.num_racks, num_coflows=n, duration=60, seed=seed
        )
        return materialize_hosts(CoflowTraceGenerator(cfg).generate(), tree)

    def test_no_failures_nothing_affected(self, ft8):
        trace = self.make_trace(ft8)
        counts = affected_by_scenario(ft8, trace, FailureScenario())
        assert counts.flows_affected == 0 and counts.coflows_affected == 0
        assert counts.amplification == 1.0

    def test_requires_clean_topology(self, ft8):
        trace = self.make_trace(ft8)
        ft8.fail_node("C.0")
        with pytest.raises(ValueError):
            affected_by_scenario(ft8, trace, FailureScenario(nodes=("C.0",)))

    def test_coflow_amplification(self, ft8):
        """A coflow is affected if any flow is: coflow fraction >= flow
        fraction always, and strictly greater with multi-flow coflows."""
        trace = self.make_trace(ft8, n=120)
        inj = FailureInjector(ft8, seed=5)
        counts = affected_by_scenario(ft8, trace, inj.single_node_failure())
        assert counts.coflow_fraction >= counts.flow_fraction
        assert counts.amplification > 1.5

    def test_node_scenario_counts_path_nodes(self, ft4):
        flow = FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 100.0)
        trace = [CoflowSpec(1, 0.0, (flow,))]
        from repro.routing import EcmpSelector

        pin = EcmpSelector(ft4).select("H.0.0.0", "H.3.0.0", 1)
        hit = affected_by_scenario(
            ft4, trace, FailureScenario(nodes=(pin.nodes[3],))
        )
        assert hit.flows_affected == 1
        other_core = next(c for c in ft4.core_switches() if c not in pin.nodes)
        miss = affected_by_scenario(
            ft4, trace, FailureScenario(nodes=(other_core,))
        )
        assert miss.flows_affected == 0

    def test_link_scenario_counts_segments(self, ft4):
        flow = FlowSpec(1, 1, "H.0.0.0", "H.0.0.1", 100.0)
        trace = [CoflowSpec(1, 0.0, (flow,))]
        link = ft4.links_between("H.0.0.0", "E.0.0")[0]
        counts = affected_by_scenario(
            ft4, trace, FailureScenario(links=(link.link_id,))
        )
        assert counts.flows_affected == 1


class TestCctSlowdowns:
    def run_pair(self):
        t = FatTree(4)
        specs = [
            CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),)),
            CoflowSpec(2, 0.0, (FlowSpec(2, 2, "H.1.0.0", "H.2.0.0", 10 * GBIT),)),
        ]
        base = FluidSimulation(FatTree(4), StaticEcmpRouter(FatTree(4)), specs).run()
        t2 = FatTree(4)
        r2 = StaticEcmpRouter(t2)
        sim = FluidSimulation(t2, r2, specs, horizon=100.0)
        pin = r2.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(0.0, pin.nodes[3])
        failed = sim.run()
        return base, failed

    def test_unfinished_maps_to_inf(self):
        base, failed = self.run_pair()
        report = cct_slowdowns(base, failed, affected_coflows=[1])
        assert report.slowdowns[1] == math.inf
        assert report.slowdowns[2] == pytest.approx(1.0)
        assert report.affected_slowdowns() == [math.inf]
        assert report.max_slowdown() == math.inf

    def test_identical_runs_give_unity(self):
        t = FatTree(4)
        specs = [CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", GBIT),))]
        a = FluidSimulation(FatTree(4), StaticEcmpRouter(FatTree(4)), specs).run()
        b = FluidSimulation(FatTree(4), StaticEcmpRouter(FatTree(4)), specs).run()
        report = cct_slowdowns(a, b)
        assert report.slowdowns[1] == pytest.approx(1.0)


class TestDivergence:
    def test_upstream_divergence_detected(self):
        old = Path(("h", "e", "a1", "c1", "a2", "e2", "h2"))
        new = Path(("h", "e", "a9", "c9", "a2", "e2", "h2"))
        # failure detected at hop 3 (core->agg), divergence at index 2
        assert divergence_is_upstream(old, new, detection_index=3)

    def test_local_repair_not_upstream(self):
        old = Path(("h", "e", "a1", "c1", "a2", "e2", "h2"))
        new = Path(("h", "e", "a1", "e9", "a9", "c9", "a2", "e2", "h2"))
        # failure detected at hop 2 (agg->core): path identical through a1
        assert not divergence_is_upstream(old, new, detection_index=2)


class TestCharacteristicsProbe:
    """The measured Table 3: fat-tree vs F10 rows."""

    def test_fattree_row(self):
        tree = FatTree(8)
        probe = PermutationProbe(tree, GlobalOptimalRerouteRouter(tree))
        pinned_core = None

        def inject():
            nonlocal pinned_core
            # fail a core that some pinned flow crosses
            for path in probe.paths.values():
                if path is not None and len(path.nodes) == 7:
                    pinned_core = path.nodes[3]
                    break
            tree.fail_node(pinned_core)

        ch = probe.measure("fat-tree", inject, greedy=True)
        assert ch.bandwidth_loss  # x in Table 3
        assert not ch.path_dilation  # OK in Table 3
        assert ch.upstream_repair  # x in Table 3

    def test_f10_row(self):
        tree = F10Tree(8)
        probe = PermutationProbe(tree, F10LocalRerouteRouter(tree))

        def inject():
            for path in probe.paths.values():
                if path is not None and len(path.nodes) == 7:
                    tree.fail_node(path.nodes[3])
                    return

        ch = probe.measure("f10", inject)
        assert ch.bandwidth_loss
        assert ch.path_dilation  # the 3-hop detour
        assert not ch.upstream_repair  # local repair

    def test_table_row_formatting(self):
        from repro.analysis import Characteristics

        row = Characteristics("x", True, False, True).table_row()
        assert row == ("x", "x", "OK", "x")
