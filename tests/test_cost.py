"""Cost-model tests: Table 2 equations and every numeric claim of §5.2."""

import pytest

from repro.core import ShareBackupNetwork
from repro.cost import (
    E_DC,
    O_DC,
    aspen_extra_cost,
    fattree_cost,
    figure5_series,
    one_to_one_extra_cost,
    relative_extra_cost,
    sharebackup_extra_cost,
    sharebackup_inventory,
)


class TestPriceBooks:
    def test_table2_prices(self):
        assert E_DC.circuit_port == 3.0 and O_DC.circuit_port == 10.0
        assert E_DC.switch_port == O_DC.switch_port == 60.0
        assert E_DC.cable == 81.0 and O_DC.cable == 40.0

    def test_price_validation(self):
        from repro.cost import PriceBook

        with pytest.raises(ValueError):
            PriceBook("bad", circuit_port=0, switch_port=1, cable=1)


class TestEquations:
    def test_fattree_formula(self):
        # (5/4)k^3 b + (k^3/2) c
        assert fattree_cost(4, E_DC) == 1.25 * 64 * 60 + 0.5 * 64 * 81

    def test_fattree_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fattree_cost(5, E_DC)

    def test_sharebackup_terms(self):
        b = sharebackup_extra_cost(4, 1, E_DC)
        assert b.circuit_ports == 1.5 * 16 * (2 + 1 + 2) * 3
        assert b.switch_ports == 2.5 * 16 * 1 * 60
        assert b.cables == 1.25 * 16 * 1 * 81

    def test_one_to_one_is_three_x_extra(self):
        for k in (8, 16, 48):
            rel = relative_extra_cost(one_to_one_extra_cost(k, E_DC), k, E_DC)
            assert rel == pytest.approx(3.0)

    def test_aspen_terms(self):
        b = aspen_extra_cost(4, O_DC)
        assert b.switch_ports == 0.5 * 64 * 60
        assert b.cables == 0.25 * 64 * 40
        assert b.circuit_ports == 0


class TestInventoryCrossCheck:
    """The symbolic counts must match what the builder physically creates."""

    @pytest.mark.parametrize("k,n", [(4, 1), (6, 1), (6, 2), (8, 1)])
    def test_builder_agrees_with_formulas(self, k, n):
        net = ShareBackupNetwork(k, n=n)
        inv = sharebackup_inventory(k, n)
        assert net.num_backup_switches == inv["backup_switches"]
        assert net.num_circuit_switches == inv["circuit_switches"]
        got_ports = sum(
            cs.ports_per_side for cs in net.circuit_switches.values()
        )
        assert got_ports == inv["circuit_switch_ports"]

    def test_backup_cable_halves(self):
        """Each backup-switch port splices into an existing cable, adding
        one half-cable; the formula charges half the full-cable price."""
        net = ShareBackupNetwork(6, n=1)
        backup_halves = sum(
            1
            for (dev, _iface) in net._device_cable
            if dev.startswith(("BE.", "BA.", "BC."))
        )
        inv = sharebackup_inventory(6, 1)
        assert backup_halves == 2 * inv["extra_cable_equivalents"]


class TestPaperClaims:
    """Every number Section 5.2 states, asserted."""

    def test_sharebackup_k48_n1_edc(self):
        rel = relative_extra_cost(sharebackup_extra_cost(48, 1, E_DC), 48, E_DC)
        assert rel == pytest.approx(0.067, abs=0.001)

    def test_sharebackup_k48_n1_odc(self):
        rel = relative_extra_cost(sharebackup_extra_cost(48, 1, O_DC), 48, O_DC)
        assert rel == pytest.approx(0.133, abs=0.001)

    def test_aspen_6_5x_and_3_2x_sharebackup(self):
        sb_e = sharebackup_extra_cost(48, 1, E_DC).total
        sb_o = sharebackup_extra_cost(48, 1, O_DC).total
        assert aspen_extra_cost(48, E_DC).total / sb_e == pytest.approx(6.5, abs=0.1)
        assert aspen_extra_cost(48, O_DC).total / sb_o == pytest.approx(3.2, abs=0.1)

    def test_n4_still_cheaper_than_aspen(self):
        """'Even if n is increased to 4 ... ShareBackup is still cheaper
        than Aspen Tree.'"""
        for prices in (E_DC, O_DC):
            sb = sharebackup_extra_cost(48, 4, prices).total
            assert sb < aspen_extra_cost(48, prices).total

    def test_relative_cost_decreases_with_scale(self):
        """Figure 5: for fixed n the relative extra cost falls as k grows."""
        rels = [
            relative_extra_cost(sharebackup_extra_cost(k, 1, E_DC), k, E_DC)
            for k in (8, 16, 32, 48, 64)
        ]
        assert all(a > b for a, b in zip(rels, rels[1:]))

    def test_onetoone_always_most_expensive(self):
        for k in (8, 24, 64):
            for prices in (E_DC, O_DC):
                assert (
                    one_to_one_extra_cost(k, prices).total
                    > aspen_extra_cost(k, prices).total
                    > sharebackup_extra_cost(k, 1, prices).total
                )

    def test_figure5_series_shape(self):
        series = figure5_series(prices=E_DC)
        assert set(series) == {
            "sharebackup(n=1)",
            "sharebackup(n=2)",
            "sharebackup(n=4)",
            "aspen",
            "1:1-backup",
        }
        # 1:1 flat at 3.0, aspen flat at its ratio, sharebackup decreasing
        one = [y for _, y in series["1:1-backup"]]
        assert all(y == pytest.approx(3.0) for y in one)
        sb1 = [y for _, y in series["sharebackup(n=1)"]]
        assert sb1 == sorted(sb1, reverse=True)

    def test_more_backups_cost_more(self):
        a = sharebackup_extra_cost(48, 1, E_DC).total
        b = sharebackup_extra_cost(48, 2, E_DC).total
        c = sharebackup_extra_cost(48, 4, E_DC).total
        assert a < b < c
