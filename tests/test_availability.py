"""Time-domain availability Monte Carlo tests (§5.1 with repair dynamics)."""

import pytest

from repro.experiments.availability import (
    YEAR,
    AvailabilityResult,
    simulate_group_availability,
)
from repro.failures import DEFAULT_FAILURE_MODEL, FailureModel


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_group_availability(0, 1)
        with pytest.raises(ValueError):
            simulate_group_availability(4, -1)
        with pytest.raises(ValueError):
            simulate_group_availability(4, 1, years=0)


class TestStatisticalAgreement:
    def test_failure_rate_matches_mtbf(self):
        result = simulate_group_availability(24, 1, years=30, seed=1)
        expected = YEAR / DEFAULT_FAILURE_MODEL.mtbf
        assert result.failures_per_switch_year == pytest.approx(expected, rel=0.2)

    def test_zero_spares_exposure_matches_binomial(self):
        """With n=0, exposure probability = P(>=1 down) ~ group * p."""
        # Use a lousier availability so the 30-year sample has resolution.
        model = FailureModel(availability=0.999, median_downtime=300.0)
        result = simulate_group_availability(
            8, 0, years=30, model=model, seed=2
        )
        analytic = model.concurrent_failure_probability(8, 0)
        assert result.exposure_probability == pytest.approx(analytic, rel=0.3)

    def test_one_spare_collapses_exposure(self):
        model = FailureModel(availability=0.999, median_downtime=300.0)
        n0 = simulate_group_availability(8, 0, years=30, model=model, seed=3)
        n1 = simulate_group_availability(8, 1, years=30, model=model, seed=3)
        assert n1.exposure_probability < n0.exposure_probability / 20

    def test_paper_scale_group_exposure_matches_binomial(self):
        """k=48 group, n=1, real availability: the time-domain exposure
        probability reproduces the §5.1 binomial (2.76e-6) — the episodes
        are roughly yearly but each lasts only about one repair time, so
        the group is dark ~2.8e-6 of the time."""
        result = simulate_group_availability(24, 1, years=200, seed=4)
        analytic = DEFAULT_FAILURE_MODEL.concurrent_failure_probability(24, 1)
        assert result.exposure_probability == pytest.approx(analytic, rel=0.5)
        assert result.exposure_probability < 1e-5
        # episode durations are on the repair-time scale, not hours
        if result.exposure_episodes:
            mean_episode = result.exposed_time / result.exposure_episodes
            assert mean_episode < 10 * DEFAULT_FAILURE_MODEL.mean_downtime

    def test_more_spares_never_worse(self):
        model = FailureModel(availability=0.995, median_downtime=600.0)
        exposures = [
            simulate_group_availability(12, n, years=20, model=model, seed=5)
            .exposure_probability
            for n in (0, 1, 2)
        ]
        assert exposures[0] >= exposures[1] >= exposures[2]

    def test_result_accounting_consistent(self):
        result = simulate_group_availability(8, 0, years=5, seed=6)
        assert 0 <= result.exposed_time <= result.simulated_time
        assert result.exposure_episodes <= result.failures
