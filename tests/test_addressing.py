"""Unit tests for fat-tree addressing (Al-Fares scheme)."""

import pytest

from repro.topology.addressing import Address, FatTreeAddressPlan, Prefix, Suffix


class TestAddress:
    def test_octets_roundtrip(self):
        a = Address(10, 2, 0, 3)
        assert a.octets() == (10, 2, 0, 3)
        assert str(a) == "10.2.0.3"

    def test_parse(self):
        assert Address.parse("10.4.1.2") == Address(10, 4, 1, 2)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Address.parse("10.4.1")
        with pytest.raises(ValueError):
            Address.parse("10.4.1.2.9")

    def test_octet_range_enforced(self):
        with pytest.raises(ValueError):
            Address(256, 0, 0, 0)
        with pytest.raises(ValueError):
            Address(10, -1, 0, 0)

    def test_ordering_is_lexicographic(self):
        assert Address(10, 0, 0, 2) < Address(10, 0, 1, 0)

    def test_hashable(self):
        assert len({Address(10, 0, 0, 2), Address(10, 0, 0, 2)}) == 1


class TestPrefixSuffix:
    def test_prefix_match(self):
        p = Prefix((10, 3))
        assert p.matches(Address(10, 3, 1, 2))
        assert not p.matches(Address(10, 4, 1, 2))

    def test_empty_prefix_matches_everything(self):
        assert Prefix(()).matches(Address(10, 200, 3, 9))
        assert Prefix(()).length == 0

    def test_prefix_length(self):
        assert Prefix((10, 3, 1)).length == 3

    def test_suffix_match(self):
        s = Suffix((3,))
        assert s.matches(Address(10, 0, 0, 3))
        assert not s.matches(Address(10, 0, 3, 2))

    def test_two_octet_suffix(self):
        s = Suffix((1, 3))
        assert s.matches(Address(10, 0, 1, 3))
        assert not s.matches(Address(10, 1, 0, 3))

    def test_str_forms(self):
        assert str(Prefix((10, 3))) == "10.3/16"
        assert "suffix" in str(Suffix((3,)))


class TestFatTreeAddressPlan:
    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            FatTreeAddressPlan(5)

    def test_rejects_huge_k(self):
        with pytest.raises(ValueError):
            FatTreeAddressPlan(256)

    def test_edge_address(self):
        plan = FatTreeAddressPlan(4)
        assert plan.edge_address(2, 1) == Address(10, 2, 1, 1)

    def test_aggregation_address_offsets_by_half(self):
        plan = FatTreeAddressPlan(4)
        assert plan.aggregation_address(2, 0) == Address(10, 2, 2, 1)
        assert plan.aggregation_address(2, 1) == Address(10, 2, 3, 1)

    def test_core_addresses_use_k_octet(self):
        plan = FatTreeAddressPlan(4)
        # cores are 10.k.j.i with j,i in [1, k/2]
        assert plan.core_address(0) == Address(10, 4, 1, 1)
        assert plan.core_address(3) == Address(10, 4, 2, 2)

    def test_core_addresses_unique(self):
        plan = FatTreeAddressPlan(8)
        addrs = {plan.core_address(c) for c in range(16)}
        assert len(addrs) == 16

    def test_host_address_and_inverse(self):
        plan = FatTreeAddressPlan(6)
        for pod in range(6):
            for e in range(3):
                for h in range(3):
                    addr = plan.host_address(pod, e, h)
                    assert plan.host_location(addr) == (pod, e, h)

    def test_host_addresses_start_at_2(self):
        plan = FatTreeAddressPlan(4)
        assert plan.host_address(0, 0, 0).o3 == 2

    def test_host_location_rejects_switch_address(self):
        plan = FatTreeAddressPlan(4)
        with pytest.raises(ValueError):
            plan.host_location(plan.edge_address(0, 0))

    def test_host_location_rejects_core_address(self):
        plan = FatTreeAddressPlan(4)
        with pytest.raises(ValueError):
            plan.host_location(plan.core_address(0))

    def test_pod_of(self):
        plan = FatTreeAddressPlan(4)
        assert plan.pod_of(plan.host_address(3, 1, 0)) == 3
        assert plan.pod_of(plan.core_address(0)) is None

    def test_subnet_prefix_matches_only_its_rack(self):
        plan = FatTreeAddressPlan(4)
        p = plan.subnet_prefix(1, 0)
        assert p.matches(plan.host_address(1, 0, 1))
        assert not p.matches(plan.host_address(1, 1, 1))

    def test_pod_prefix_matches_whole_pod(self):
        plan = FatTreeAddressPlan(4)
        p = plan.pod_prefix(2)
        assert p.matches(plan.host_address(2, 1, 0))
        assert p.matches(plan.edge_address(2, 0))
        assert not p.matches(plan.host_address(3, 1, 0))

    def test_host_suffix(self):
        plan = FatTreeAddressPlan(4)
        s = plan.host_suffix(1)  # host id 1 -> last octet 3
        assert s.matches(plan.host_address(0, 0, 1))
        assert s.matches(plan.host_address(3, 1, 1))
        assert not s.matches(plan.host_address(0, 0, 0))

    def test_bounds_checks(self):
        plan = FatTreeAddressPlan(4)
        with pytest.raises(ValueError):
            plan.edge_address(4, 0)
        with pytest.raises(ValueError):
            plan.edge_address(0, 2)
        with pytest.raises(ValueError):
            plan.core_address(4)
        with pytest.raises(ValueError):
            plan.host_address(0, 0, 2)
