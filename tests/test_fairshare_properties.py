"""Property-based tests of the max-min allocator's defining invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.simulation import max_min_rates


@st.composite
def allocation_problems(draw):
    """Random (flow_segments, capacities) instances."""
    num_segments = draw(st.integers(min_value=1, max_value=12))
    segments = [f"S{i}" for i in range(num_segments)]
    capacities = {
        s: draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        for s in segments
    }
    num_flows = draw(st.integers(min_value=1, max_value=20))
    flow_segments = {}
    for f in range(num_flows):
        path_len = draw(st.integers(min_value=1, max_value=min(6, num_segments)))
        path = draw(
            st.lists(
                st.sampled_from(segments),
                min_size=path_len,
                max_size=path_len,
                unique=True,
            )
        )
        flow_segments[f] = path
    return flow_segments, capacities


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_feasibility(problem):
    """No segment ever carries more than its capacity."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
    for s, used in usage.items():
        assert used <= capacities[s] * (1 + 1e-9) + 1e-9


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_every_flow_has_a_saturated_bottleneck(problem):
    """Pareto efficiency: each flow crosses at least one saturated segment
    (otherwise its rate could be raised for free)."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
    for f, path in flow_segments.items():
        saturated = any(
            usage[s] >= capacities[s] * (1 - 1e-6) - 1e-6 for s in path
        )
        assert saturated, f"flow {f} has slack on its whole path"


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_max_min_fairness_condition(problem):
    """On every saturated segment each flow is either at the segment's
    max rate among its flows, or bottlenecked elsewhere at a lower rate —
    i.e. you cannot raise any flow without hurting a smaller one."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    seg_flows: dict[str, list] = {s: [] for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
            seg_flows[s].append(f)
    for f, path in flow_segments.items():
        # the flow's binding bottleneck: a saturated segment where it has
        # the max rate among that segment's flows
        binding = False
        for s in path:
            if usage[s] >= capacities[s] * (1 - 1e-6) - 1e-6:
                top = max(rates[g] for g in seg_flows[s])
                if rates[f] >= top * (1 - 1e-9):
                    binding = True
                    break
        assert binding, f"flow {f} ({rates[f]}) has no binding bottleneck"


@given(allocation_problems())
@settings(max_examples=100, deadline=None)
def test_all_rates_nonnegative_and_assigned(problem):
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    assert set(rates) == set(flow_segments)
    assert all(r >= 0.0 for r in rates.values())


@given(
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_single_link_exact_split(n, cap):
    flows = {i: ["L"] for i in range(n)}
    rates = max_min_rates(flows, {"L": cap})
    for r in rates.values():
        assert abs(r - cap / n) <= 1e-9 * max(1.0, cap)
