"""Property-based tests of the max-min allocator's defining invariants.

The invariants run against the public :func:`max_min_rates` wrapper,
which now sits on the dense array core (:func:`allocate_dense`), so
feasibility / Pareto / fairness cover both layers.  The second half of
the file pins down the array core's own contracts: wrapper/core
bit-identity, component separability (the property the engine's
incremental mode is built on), workspace reuse, and the
``assume_connected`` fast path.  The final section holds the vectorized
columnar kernel (:mod:`repro.simulation.columnar`) to the same bar:
scalar/batched bit-identity, CSR incidence round-trips against the
object conflict graph, water-fill saturation invariants, and columnar
workspace purity.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.simulation import allocate_dense, max_min_rates
from repro.simulation.columnar import (
    ColumnarWorkspace,
    FlowTable,
    pack_paths,
    waterfill,
)
from repro.simulation.conflict import ConflictGraph
from repro.simulation.fairshare import AllocatorWorkspace, FairShareError


@st.composite
def allocation_problems(draw):
    """Random (flow_segments, capacities) instances."""
    num_segments = draw(st.integers(min_value=1, max_value=12))
    segments = [f"S{i}" for i in range(num_segments)]
    capacities = {
        s: draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        for s in segments
    }
    num_flows = draw(st.integers(min_value=1, max_value=20))
    flow_segments = {}
    for f in range(num_flows):
        path_len = draw(st.integers(min_value=1, max_value=min(6, num_segments)))
        path = draw(
            st.lists(
                st.sampled_from(segments),
                min_size=path_len,
                max_size=path_len,
                unique=True,
            )
        )
        flow_segments[f] = path
    return flow_segments, capacities


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_feasibility(problem):
    """No segment ever carries more than its capacity."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
    for s, used in usage.items():
        assert used <= capacities[s] * (1 + 1e-9) + 1e-9


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_every_flow_has_a_saturated_bottleneck(problem):
    """Pareto efficiency: each flow crosses at least one saturated segment
    (otherwise its rate could be raised for free)."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
    for f, path in flow_segments.items():
        saturated = any(
            usage[s] >= capacities[s] * (1 - 1e-6) - 1e-6 for s in path
        )
        assert saturated, f"flow {f} has slack on its whole path"


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_max_min_fairness_condition(problem):
    """On every saturated segment each flow is either at the segment's
    max rate among its flows, or bottlenecked elsewhere at a lower rate —
    i.e. you cannot raise any flow without hurting a smaller one."""
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    usage = {s: 0.0 for s in capacities}
    seg_flows: dict[str, list] = {s: [] for s in capacities}
    for f, path in flow_segments.items():
        for s in path:
            usage[s] += rates[f]
            seg_flows[s].append(f)
    for f, path in flow_segments.items():
        # the flow's binding bottleneck: a saturated segment where it has
        # the max rate among that segment's flows
        binding = False
        for s in path:
            if usage[s] >= capacities[s] * (1 - 1e-6) - 1e-6:
                top = max(rates[g] for g in seg_flows[s])
                if rates[f] >= top * (1 - 1e-9):
                    binding = True
                    break
        assert binding, f"flow {f} ({rates[f]}) has no binding bottleneck"


@given(allocation_problems())
@settings(max_examples=100, deadline=None)
def test_all_rates_nonnegative_and_assigned(problem):
    flow_segments, capacities = problem
    rates = max_min_rates(flow_segments, capacities)
    assert set(rates) == set(flow_segments)
    assert all(r >= 0.0 for r in rates.values())


@given(
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_single_link_exact_split(n, cap):
    flows = {i: ["L"] for i in range(n)}
    rates = max_min_rates(flows, {"L": cap})
    for r in rates.values():
        assert abs(r - cap / n) <= 1e-9 * max(1.0, cap)


# ----------------------------------------------------------------------
# array-core contracts: interning, separability, workspace reuse
# ----------------------------------------------------------------------


def intern(flow_segments, capacities):
    """Hand-rolled interning mirroring what the engine does statically."""
    seg_ids = {s: i for i, s in enumerate(capacities)}
    caps = [float(capacities[s]) for s in capacities]
    pairs = [
        (f, tuple(seg_ids[s] for s in path)) for f, path in flow_segments.items()
    ]
    return pairs, caps


def components_of(flow_segments):
    """Connected components of the flow↔segment conflict graph, each
    sorted into problem order (reference implementation for the tests)."""
    seg_flows = {}
    for f, path in flow_segments.items():
        for s in path:
            seg_flows.setdefault(s, []).append(f)
    seen = set()
    comps = []
    for f in flow_segments:
        if f in seen:
            continue
        seen.add(f)
        comp, stack = [f], [f]
        while stack:
            g = stack.pop()
            for s in flow_segments[g]:
                for h in seg_flows[s]:
                    if h not in seen:
                        seen.add(h)
                        comp.append(h)
                        stack.append(h)
        comps.append(sorted(comp))
    return comps


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_dense_core_matches_wrapper_bitwise(problem):
    """allocate_dense on hand-interned inputs == max_min_rates, exactly."""
    flow_segments, capacities = problem
    pairs, caps = intern(flow_segments, capacities)
    dense = allocate_dense(pairs, caps)
    wrapped = max_min_rates(flow_segments, capacities)
    assert dense == wrapped  # float == float: bitwise, not approximate


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_component_separability_is_bitwise_exact(problem):
    """Solving each conflict component alone reproduces the full solve
    bit-for-bit — the property the engine's incremental mode rests on."""
    flow_segments, capacities = problem
    pairs, caps = intern(flow_segments, capacities)
    merged = allocate_dense(pairs, caps)
    by_flow = dict(pairs)
    pieced = {}
    for comp in components_of(flow_segments):
        comp_pairs = [(f, by_flow[f]) for f in comp]
        pieced.update(allocate_dense(comp_pairs, caps))
    assert pieced == merged


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_assume_connected_matches_partitioned_solve(problem):
    """Per single component, the assume_connected fast path (what the
    engine uses) must agree with the partitioning path exactly."""
    flow_segments, capacities = problem
    pairs, caps = intern(flow_segments, capacities)
    by_flow = dict(pairs)
    for comp in components_of(flow_segments):
        comp_pairs = [(f, by_flow[f]) for f in comp]
        fast = allocate_dense(comp_pairs, caps, assume_connected=True)
        general = allocate_dense(comp_pairs, caps)
        assert fast == general


@given(allocation_problems(), allocation_problems())
@settings(max_examples=100, deadline=None)
def test_workspace_reuse_is_clean(problem_a, problem_b):
    """Back-to-back solves through one shared workspace match fresh
    solves — i.e. the workspace is truly reset between calls."""
    pairs_a, caps_a = intern(*problem_a)
    pairs_b, caps_b = intern(*problem_b)
    ws = AllocatorWorkspace(max(len(caps_a), len(caps_b)))
    assert allocate_dense(pairs_a, caps_a, ws) == allocate_dense(pairs_a, caps_a)
    assert allocate_dense(pairs_b, caps_b, ws) == allocate_dense(pairs_b, caps_b)
    assert allocate_dense(pairs_a, caps_a, ws) == allocate_dense(pairs_a, caps_a)


@given(allocation_problems())
@settings(max_examples=50, deadline=None)
def test_workspace_survives_input_errors(problem):
    """A rejected instance must not poison the shared workspace."""
    pairs, caps = intern(*problem)
    ws = AllocatorWorkspace(len(caps))
    bad = [*pairs, ("broken", ())]  # empty path: rejected after partial fill
    with pytest.raises(FairShareError):
        allocate_dense(bad, caps, ws)
    assert allocate_dense(pairs, caps, ws) == allocate_dense(pairs, caps)


# ----------------------------------------------------------------------
# columnar kernel contracts: bit-identity, CSR round-trip, saturation
# ----------------------------------------------------------------------


def columnar_setup(problem):
    """Interned pairs → (pairs, caps array, padded matrix)."""
    pairs, caps = intern(*problem)
    caps_arr = np.asarray(caps, dtype=np.float64)
    matrix = pack_paths([path for _, path in pairs], len(caps))
    return pairs, caps_arr, matrix


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_waterfill_matches_scalar_core_bitwise(problem):
    """The batched kernel reproduces allocate_dense to the last bit —
    the identity the vectorized engine backend is built on."""
    pairs, caps_arr, matrix = columnar_setup(problem)
    scalar = allocate_dense(pairs, list(caps_arr))
    batched = waterfill(matrix, caps_arr)
    for row, (key, _) in enumerate(pairs):
        assert batched[row] == scalar[key]  # float ==: bitwise


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_waterfill_saturation_invariants(problem):
    """Feasibility and Pareto efficiency, checked on the kernel's own
    output: no segment over capacity, and every flow crosses at least
    one saturated segment (else its rate could be raised for free)."""
    pairs, caps_arr, matrix = columnar_setup(problem)
    rates = waterfill(matrix, caps_arr)
    num_segments = caps_arr.shape[0]
    width = matrix.shape[1]
    usage = np.bincount(
        matrix.ravel(),
        weights=np.repeat(rates, width),
        minlength=num_segments + 1,
    )[:num_segments]
    assert np.all(usage <= caps_arr * (1 + 1e-9) + 1e-9)
    saturated = usage >= caps_arr * (1 - 1e-6) - 1e-6
    padded = np.concatenate([saturated, [False]])  # sentinel never saturates
    assert np.all(padded[matrix].any(axis=1)), "a flow has slack on its path"


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_csr_incidence_roundtrip_vs_object_graph(problem):
    """ConflictGraph.incidence_csr() and the columnar FlowTable agree:
    same rows, same paths, same per-segment incidence counts."""
    pairs, caps = intern(*problem)
    num_segments = len(caps)
    graph = ConflictGraph(num_segments)
    table = FlowTable(num_segments)
    for fid, path in pairs:
        graph.place(fid, path)
        table.append(fid, path)
    flow_ids, indptr, indices = graph.incidence_csr()
    # Row-by-row: the CSR slices round-trip the original paths, and the
    # table's matrix rows match them (ignoring sentinel padding).
    assert flow_ids.tolist() == [fid for fid, _ in pairs]
    assert table.flow_ids[: len(table)].tolist() == [fid for fid, _ in pairs]
    for row, (_, path) in enumerate(pairs):
        assert tuple(indices[indptr[row] : indptr[row + 1]]) == path
        matrix_row = table.seg_matrix[row]
        assert tuple(matrix_row[matrix_row != num_segments]) == path
    # Aggregate: bincount over the CSR indices equals the incidence the
    # table maintains incrementally (real segments; the sentinel slot
    # only counts padding).
    csr_incidence = np.bincount(indices, minlength=num_segments)
    assert np.array_equal(csr_incidence, table.incidence[:num_segments])


@given(allocation_problems(), allocation_problems())
@settings(max_examples=100, deadline=None)
def test_columnar_workspace_reuse_is_pure(problem_a, problem_b):
    """Back-to-back waterfills through one shared workspace match fresh
    solves bit-for-bit — the workspace carries no state between calls.
    Both problems are interned into one capacity space (the workspace
    is sized to the segment universe, exactly as in the engine)."""
    flows_a, caps_a = problem_a
    flows_b, caps_b = problem_b
    shared = {**caps_b, **caps_a}
    pairs_a, caps = intern(flows_a, shared)
    pairs_b, _ = intern(flows_b, shared)
    caps_arr = np.asarray(caps, dtype=np.float64)
    matrix_a = pack_paths([path for _, path in pairs_a], len(caps))
    matrix_b = pack_paths([path for _, path in pairs_b], len(caps))
    ws = ColumnarWorkspace(len(caps))
    first = waterfill(matrix_a, caps_arr, ws)
    assert np.array_equal(first, waterfill(matrix_a, caps_arr))
    second = waterfill(matrix_b, caps_arr, ws)
    assert np.array_equal(second, waterfill(matrix_b, caps_arr))
    assert np.array_equal(waterfill(matrix_a, caps_arr, ws), first)
