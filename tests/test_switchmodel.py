"""Unit tests for the forwarding-plane switch model (beyond the end-to-end
walks in test_impersonation.py)."""

import pytest

from repro.core import (
    ImpersonationTables,
    PacketSwitchModel,
    ShareBackupNetwork,
)
from repro.core.switchmodel import ForwardingError, PhysicalForwarder
from repro.routing import Packet
from repro.topology.addressing import Address


@pytest.fixture
def net() -> ShareBackupNetwork:
    return ShareBackupNetwork(6, n=1)


@pytest.fixture
def imp(net) -> ImpersonationTables:
    return ImpersonationTables(net.logical)


def edge_model(net, imp, pod=0, idx=0) -> PacketSwitchModel:
    return PacketSwitchModel(
        physical_name=f"E.{pod}.{idx}",
        identity=f"E.{pod}.{idx}",
        table=imp.combined_edge_table(pod),
        net=net,
    )


class TestPortMapping:
    def test_edge_host_ports_identity(self, net, imp):
        model = edge_model(net, imp)
        assert model.physical_interface("host2") == ("host", 2)

    def test_edge_uplink_rotation(self, net, imp):
        model = edge_model(net, imp, pod=0, idx=1)
        # edge 1 reaches agg x on interface (x-1) mod 3
        assert model.physical_interface("up0") == ("up", 2)
        assert model.physical_interface("up1") == ("up", 0)

    def test_agg_ports(self, net, imp):
        model = PacketSwitchModel("A.0.2", "A.0.2", imp.agg_group_table(0), net)
        assert model.physical_interface("down0") == ("down", 2)  # (2-0)%3
        assert model.physical_interface("up1") == ("up", 1)

    def test_core_ports(self, net, imp):
        model = PacketSwitchModel("C.4", "C.4", imp.core_group_table(), net)
        assert model.physical_interface("pod3") == ("pod", 3)

    def test_unknown_port_rejected(self, net, imp):
        model = edge_model(net, imp)
        with pytest.raises(ForwardingError):
            model.physical_interface("weird0")


class TestForwardStep:
    def test_dead_switch_refuses(self, net, imp):
        model = edge_model(net, imp)
        net.physical_health["E.0.0"] = False
        pkt = Packet(Address(10, 0, 0, 2), Address(10, 0, 0, 3))
        with pytest.raises(ForwardingError):
            model.forward(pkt)

    def test_local_delivery(self, net, imp):
        model = edge_model(net, imp)
        pkt = Packet(Address(10, 0, 0, 2), Address(10, 0, 0, 3))  # untagged
        device, iface = model.forward(pkt)
        assert device == "H.0.0.1" and iface == ("nic", 0)

    def test_agg_strips_vlan_downward(self, net, imp):
        model = PacketSwitchModel("A.0.0", "A.0.0", imp.agg_group_table(0), net)
        routing = imp.routing
        pkt = Packet(
            Address(10, 0, 1, 2),
            Address(10, 0, 2, 3),
            vlan=routing.vlan_of_edge(0, 1),
        )
        device, _ = model.forward(pkt)
        assert device.startswith("E.0.")
        assert pkt.vlan is None  # stripped on the way down

    def test_agg_keeps_vlan_upward(self, net, imp):
        model = PacketSwitchModel("A.0.0", "A.0.0", imp.agg_group_table(0), net)
        routing = imp.routing
        vlan = routing.vlan_of_edge(0, 1)
        pkt = Packet(Address(10, 0, 1, 2), Address(10, 3, 0, 2), vlan=vlan)
        device, _ = model.forward(pkt)
        assert device.startswith("C.")
        assert pkt.vlan == vlan

    def test_dark_circuit_detected(self, net, imp):
        # disconnect the circuit feeding host0 of E.0.0
        cable = net.cable_of("E.0.0", ("host", 0))
        net.circuit_switches[cable.cs].disconnect(cable.port)
        model = edge_model(net, imp)
        pkt = Packet(Address(10, 0, 0, 3), Address(10, 0, 0, 2))
        with pytest.raises(ForwardingError):
            model.forward(pkt)


class TestForwarderHelpers:
    def build_tables(self, net, imp):
        tables = {}
        for pod in range(net.k):
            tables[f"FG.edge.{pod}"] = imp.combined_edge_table(pod)
            tables[f"FG.agg.{pod}"] = imp.agg_group_table(pod)
        core = imp.core_group_table()
        for j in range(net.half):
            tables[f"FG.core.{j}"] = core
        return tables

    def test_model_for_follows_assignment(self, net, imp):
        fwd = PhysicalForwarder(net, self.build_tables(net, imp))
        group = net.group_of("E.0.0")
        net.failover("E.0.0", group.allocate_spare())
        model = fwd.model_for("E.0.0")
        assert model.physical_name == "BE.0.0"
        assert model.identity == "E.0.0"

    def test_identity_of_unassigned_physical(self, net, imp):
        fwd = PhysicalForwarder(net, self.build_tables(net, imp))
        with pytest.raises(ForwardingError):
            fwd._identity_of("BE.0.0")  # dark spare serves nothing

    def test_max_hops_guard(self, net, imp):
        fwd = PhysicalForwarder(net, self.build_tables(net, imp), max_hops=1)
        with pytest.raises(ForwardingError):
            fwd.send("H.0.0.0", "H.5.0.0")
