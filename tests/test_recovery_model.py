"""Recovery-latency model tests (Section 5.3 claims)."""

import pytest

from repro.core import RecoveryTimeModel


class TestBreakdowns:
    def setup_method(self):
        self.model = RecoveryTimeModel()

    def test_sharebackup_crosspoint_components(self):
        b = self.model.sharebackup("crosspoint")
        assert b.detection == 1e-3
        assert b.reconfiguration == 70e-9
        assert b.control < 1e-3  # sub-ms controller path

    def test_sharebackup_mems(self):
        b = self.model.sharebackup("mems")
        assert b.reconfiguration == 40e-6

    def test_unknown_technology_rejected(self):
        with pytest.raises(ValueError):
            self.model.sharebackup("quantum")

    def test_f10_and_aspen_are_local(self):
        for b in (self.model.f10(), self.model.aspen()):
            assert b.control == 0.0
            assert b.reconfiguration < 1e-4

    def test_sdn_rule_update_dominates(self):
        b = self.model.sdn_rerouting()
        assert b.reconfiguration == pytest.approx(1e-3)
        b5 = self.model.sdn_rerouting(rules_to_update=5)
        assert b5.reconfiguration == pytest.approx(5e-3)

    def test_sdn_needs_at_least_one_rule(self):
        with pytest.raises(ValueError):
            self.model.sdn_rerouting(0)

    def test_total_is_sum(self):
        b = self.model.sharebackup()
        assert b.total == pytest.approx(b.detection + b.control + b.reconfiguration)

    def test_row_format(self):
        row = self.model.f10().row()
        assert row[0] == "f10/local" and len(row) == 5


class TestPaperClaims:
    """Section 5.3: 'failure recovery in ShareBackup is as fast as that in
    F10 and Aspen Tree' (and no slower than SDN rerouting)."""

    def test_sharebackup_within_same_band_as_local_rerouting(self):
        m = RecoveryTimeModel()
        sb = m.sharebackup("crosspoint").total
        f10 = m.f10().total
        # same order of magnitude: dominated by the shared probing interval
        assert sb < 2 * f10

    def test_sharebackup_not_slower_than_sdn(self):
        m = RecoveryTimeModel()
        assert m.sharebackup("crosspoint").total <= m.sdn_rerouting().total
        assert m.sharebackup("mems").total <= m.sdn_rerouting().total

    def test_reconfiguration_negligible_vs_detection(self):
        m = RecoveryTimeModel()
        for tech in ("crosspoint", "mems"):
            b = m.sharebackup(tech)
            assert b.reconfiguration < 0.05 * b.detection

    def test_comparison_table_complete(self):
        rows = RecoveryTimeModel().comparison()
        names = {r.scheme for r in rows}
        assert names == {
            "sharebackup/crosspoint",
            "sharebackup/mems",
            "f10/local",
            "aspen/local",
            "sdn-rerouting",
        }
