"""Golden SARIF snapshot: one finding per rule family, end to end.

The unit tests in ``test_checks_project.py`` pin individual SARIF
fields; this test pins the *whole document* — envelope, rule
catalogue, result ordering, URIs — against a committed snapshot
(``tests/data/golden_lint.sarif``) so any renderer or pipeline change
that reshapes the output shows up as a reviewable diff rather than a
silent drift.

The fixture repository seeds exactly one finding in each rule family:
``RNG001`` (module-global draw), ``PROC001`` (lambda to a process
pool), ``SVC001`` (blocking call in a coroutine), ``PERF002``
(per-element loop in the columnar core), and ``NUM001`` (dtype
narrowing in a ``@kernel``).

To regenerate after an intentional change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_sarif_golden.py
"""

import os
from pathlib import Path
from textwrap import dedent

from repro.checks import lint_paths, render_sarif

GOLDEN = Path(__file__).resolve().parent / "data" / "golden_lint.sarif"

#: One file per seeded family; module names matter (rule scopes).
FIXTURE_FILES = {
    "pyproject.toml": "[project]\nname = 'golden-fixture'\n",
    "src/repro/__init__.py": "",
    "src/repro/runner/__init__.py": "",
    "src/repro/service/__init__.py": "",
    "src/repro/simulation/__init__.py": "",
    # RNG001: a module-global draw, invisible to seed derivation.
    "src/repro/util.py": """\
        import random

        _JITTER = random.random()
        """,
    # PROC001: a lambda shipped across the process boundary.
    "src/repro/runner/jobs.py": """\
        def _fan_out(pool, items):
            return pool.map(lambda item: item + 1, items)
        """,
    # SVC001: a blocking sleep on the shared event loop.
    "src/repro/service/worker.py": """\
        import time


        async def _drain() -> None:
            time.sleep(0.1)
        """,
    # PERF002 (per-element loop) + NUM001 (float64 into int64 out=).
    "src/repro/simulation/columnar.py": """\
        import numpy as np

        from repro.simulation.kernels import kernel


        def _total(rows):
            total = 0
            for row in rows:
                total += row
            return total


        @kernel(arrays={
            "counts": ("int64", ("segments",)),
            "out": ("int64", ("segments",)),
        })
        def _halve(counts, out):
            np.divide(counts, 2.0, out=out)
        """,
}

SEEDED_CODES = {"RNG001", "PROC001", "SVC001", "PERF002", "NUM001"}


def _build_fixture(tmp_path: Path) -> Path:
    for rel, content in FIXTURE_FILES.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(dedent(content), encoding="utf-8")
    return tmp_path / "src"


def test_sarif_snapshot_one_finding_per_family(tmp_path):
    src = _build_fixture(tmp_path)
    result = lint_paths([src], use_cache=False)

    # The fixture must stay honest before the snapshot means anything:
    # exactly the five seeded families, one finding each.
    assert {d.code for d in result.diagnostics} == SEEDED_CODES
    assert len(result.diagnostics) == len(SEEDED_CODES)

    document = render_sarif(result.diagnostics, root=result.root)

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(document, encoding="utf-8")

    assert GOLDEN.exists(), (
        "no golden snapshot committed; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    assert document == GOLDEN.read_text(encoding="utf-8")
