"""Unit tests for the two-level routing-table primitives."""

import pytest

from repro.routing import LookupMiss, Packet, RoutingTable
from repro.topology.addressing import Address, Prefix, Suffix


def addr(s: str) -> Address:
    return Address.parse(s)


class TestPrefixEntries:
    def test_terminating_prefix_forwards(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10, 1)), "p1")
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.1.0.2"))) == "p1"

    def test_longest_prefix_wins(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10,)), "coarse")
        t.add_prefix(Prefix((10, 1, 0)), "fine")
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.1.0.2"))) == "fine"
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.2.0.2"))) == "coarse"

    def test_insertion_order_irrelevant(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10, 1, 0)), "fine")
        t.add_prefix(Prefix((10,)), "coarse")
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.1.0.2"))) == "fine"

    def test_miss_raises(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10, 1)), "p1")
        with pytest.raises(LookupMiss):
            t.lookup(Packet(addr("10.0.0.2"), addr("10.2.0.2")))

    def test_nonterminating_requires_no_port(self):
        t = RoutingTable("sw")
        with pytest.raises(ValueError):
            t.add_prefix(Prefix(()), "oops", terminating=False)

    def test_terminating_requires_port(self):
        t = RoutingTable("sw")
        with pytest.raises(ValueError):
            t.add_prefix(Prefix(()), None, terminating=True)


class TestSuffixFallthrough:
    def make(self) -> RoutingTable:
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10, 1)), "down")  # own pod: terminate
        t.add_prefix(Prefix(()), None, terminating=False)  # /0 fall-through
        t.add_suffix(Suffix((2,)), "up0")
        t.add_suffix(Suffix((3,)), "up1")
        return t

    def test_fallthrough_spreads_by_suffix(self):
        t = self.make()
        assert t.lookup(Packet(addr("10.1.0.2"), addr("10.2.0.2"))) == "up0"
        assert t.lookup(Packet(addr("10.1.0.2"), addr("10.2.0.3"))) == "up1"

    def test_terminating_beats_fallthrough(self):
        t = self.make()
        assert t.lookup(Packet(addr("10.2.0.2"), addr("10.1.0.2"))) == "down"

    def test_suffix_miss_raises(self):
        t = self.make()
        with pytest.raises(LookupMiss):
            t.lookup(Packet(addr("10.1.0.2"), addr("10.2.0.9")))


class TestVlanSemantics:
    def make(self) -> RoutingTable:
        t = RoutingTable("edge")
        t.add_suffix(Suffix((2,)), "host0")  # untagged in-bound
        t.add_suffix(Suffix((2,)), "up0", vlan=7)  # tagged out-bound
        return t

    def test_tagged_packet_prefers_tagged_entry(self):
        t = self.make()
        pkt = Packet(addr("10.0.0.3"), addr("10.1.0.2"), vlan=7)
        assert t.lookup(pkt) == "up0"

    def test_untagged_packet_ignores_tagged_entry(self):
        t = self.make()
        pkt = Packet(addr("10.0.0.3"), addr("10.0.0.2"))
        assert t.lookup(pkt) == "host0"

    def test_wrong_vlan_falls_to_untagged(self):
        t = self.make()
        pkt = Packet(addr("10.0.0.3"), addr("10.0.0.2"), vlan=9)
        assert t.lookup(pkt) == "host0"

    def test_vlan_prefix_entries(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10, 1)), "plain")
        t.add_prefix(Prefix((10, 1)), "vlan", vlan=5)
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.1.0.2"), vlan=5)) == "vlan"
        assert t.lookup(Packet(addr("10.0.0.2"), addr("10.1.0.2"))) == "plain"


class TestMergeAndSize:
    def test_merge_dedups(self):
        a = RoutingTable("a")
        a.add_suffix(Suffix((2,)), "host0")
        b = RoutingTable("b")
        b.add_suffix(Suffix((2,)), "host0")  # identical
        b.add_suffix(Suffix((2,)), "up0", vlan=1)
        a.merge(b)
        assert a.size == 2

    def test_size_counts_both_tables(self):
        t = RoutingTable("sw")
        t.add_prefix(Prefix((10,)), "p")
        t.add_suffix(Suffix((2,)), "s")
        assert t.size == 2

    def test_merge_preserves_lookup_semantics(self):
        a = RoutingTable("a")
        a.add_suffix(Suffix((2,)), "hostA")
        b = RoutingTable("b")
        b.add_suffix(Suffix((2,)), "upB", vlan=3)
        a.merge(b)
        assert a.lookup(Packet(addr("10.0.0.3"), addr("10.0.0.2"), vlan=3)) == "upB"
        assert a.lookup(Packet(addr("10.0.0.3"), addr("10.0.0.2"))) == "hostA"

    def test_repr(self):
        t = RoutingTable("sw")
        assert "sw" in repr(t)
