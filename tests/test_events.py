"""Event-kernel tests: ordering, cancellation, clock discipline."""

import pytest

from repro.simulation import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        c = SimClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_to_same_time_ok(self):
        c = SimClock(3.0)
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_backwards_rejected(self):
        c = SimClock(3.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        while q:
            q.pop().action()
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        fired = []
        for tag in "abcd":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        while q:
            q.pop().action()
        assert fired == ["a", "b", "c", "d"]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(4.5, lambda: None)
        assert q.peek_time() == 4.5

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("x"))
        q.schedule(2.0, lambda: fired.append("y"))
        ev.cancel()
        while q:
            q.pop().action()
        assert fired == ["y"]

    def test_cancelled_not_counted(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0

    def test_pop_due_gathers_batch(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None, label="a")
        q.schedule(1.0, lambda: None, label="b")
        q.schedule(2.0, lambda: None, label="c")
        due = q.pop_due(1.0)
        assert [e.label for e in due] == ["a", "b"]
        assert q.peek_time() == 2.0

    def test_pop_due_tolerance(self):
        q = EventQueue()
        q.schedule(1.0 + 1e-13, lambda: None)
        assert len(q.pop_due(1.0)) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        ev = q.schedule(1.0, lambda: None)
        assert q
        ev.cancel()
        assert not q

    def test_labels_kept(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None, label="arrival:7")
        assert ev.label == "arrival:7"
