"""Integration: failure storms and degraded-mode behaviour.

Scenarios beyond single failures: rolling failures across many groups,
repair churn, the circuit-switch report threshold inside a simulation,
and ShareBackup's behaviour once a group's spares are exhausted.
"""

import pytest

from repro.core import (
    HumanInterventionRequired,
    ShareBackupController,
    ShareBackupNetwork,
    ShareBackupSimulation,
)
from repro.simulation import CoflowSpec, FlowSpec
from repro.workload import CoflowTraceGenerator, WorkloadConfig, materialize_hosts

GBIT = 1.25e8


class TestRollingFailures:
    def test_rolling_failures_with_repairs(self):
        """Fail -> repair -> fail across every group repeatedly; the
        network must stay a perfect fat-tree and every group consistent."""
        net = ShareBackupNetwork(6, n=1)
        ctrl = ShareBackupController(net)
        for round_no in range(3):
            for group_id in sorted(net.groups):
                group = net.groups[group_id]
                victim = group.logical_slots[round_no % len(group.logical_slots)]
                report = ctrl.handle_node_failure(victim, now=float(round_no))
                assert report.fully_recovered, (round_no, victim)
                # repair the displaced hardware so the pool refills
                offline = sorted(group.offline)[0]
                ctrl.repair(offline)
        net.verify_fattree_equivalence()
        for group in net.groups.values():
            group.validate()

    def test_simultaneous_failures_across_groups_in_simulation(self):
        """One failure in each of several groups at the same instant; all
        flows survive with sub-10ms stalls."""
        net = ShareBackupNetwork(8, n=1)
        cfg = WorkloadConfig(
            num_racks=net.logical.num_racks, num_coflows=30, duration=5.0, seed=9
        )
        specs = materialize_hosts(CoflowTraceGenerator(cfg).generate(), net.logical)
        sbs = ShareBackupSimulation(net, specs, horizon=10_000.0)
        for victim in ("E.0.0", "A.1.1", "C.0", "C.5", "A.4.0"):
            sbs.inject_switch_failure(1.0, victim)
        result = sbs.run()
        assert result.all_completed
        assert all(f.reroutes == 0 for f in result.flows.values())
        assert all(f.stalled_time < 0.01 for f in result.flows.values())
        assert all(r.fully_recovered for r in sbs.reports)
        net.verify_fattree_equivalence()

    def test_exhausted_group_degrades_like_fattree(self):
        """Second failure in one group with n=1: the slot stays dark and
        pinned flows stall (rerouting-free degradation), while everyone
        else is untouched."""
        net = ShareBackupNetwork(8, n=1)
        flows = (
            FlowSpec(1, 1, "H.0.0.0", "H.7.0.0", 50 * GBIT),
            FlowSpec(2, 1, "H.1.0.0", "H.6.0.0", 50 * GBIT),
        )
        sbs = ShareBackupSimulation(
            net, [CoflowSpec(1, 0.0, flows)], horizon=30.0
        )
        path = sbs.router.initial_path("H.0.0.0", "H.7.0.0", 1)
        agg = path.nodes[2]
        pod = net.logical.nodes[agg].pod
        sibling = next(a for a in net.logical.agg_switches(pod) if a != agg)
        sbs.inject_switch_failure(0.5, sibling)  # consumes the pod's spare
        sbs.inject_switch_failure(1.0, agg)  # unrecoverable
        result = sbs.run()
        assert result.flows[1].finish is None  # static pin through dark slot
        assert result.flows[2].finish is not None  # bystander unharmed


class TestCircuitSwitchStormInSimulation:
    def test_report_burst_halts_then_reboot_resumes(self):
        net = ShareBackupNetwork(6, n=1)
        ctrl = ShareBackupController(net, cs_report_threshold=2, cs_report_window=10.0)
        ctrl.snapshot_intended_configs()
        specs = [
            CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.2.0.0", "H.5.0.0", GBIT),))
        ]
        sbs = ShareBackupSimulation(net, specs, controller=ctrl, horizon=100.0)
        # two link failures through the same circuit switch CS.2.0.0
        link_a = net.logical.links_between("E.0.0", "A.0.0")[0]
        link_b = net.logical.links_between("E.0.1", "A.0.1")[0]
        sbs.inject_link_failure(1.0, link_a.link_id)
        sbs.inject_link_failure(1.2, link_b.link_id)
        # a later, unrelated node failure must hit the halt
        with pytest.raises(HumanInterventionRequired):
            sbs.inject_switch_failure(2.0, "C.0")
            sbs.run()
        assert ctrl.halted
        ctrl.circuit_switch_rebooted("CS.2.0.0", now=3.0)
        assert not ctrl.halted
        assert ctrl.handle_node_failure("C.1", now=4.0).fully_recovered

    def test_burst_attribution_is_per_circuit_switch(self):
        """Reports spread across different circuit switches never trip the
        threshold."""
        net = ShareBackupNetwork(6, n=2)
        ctrl = ShareBackupController(net, cs_report_threshold=2, cs_report_window=10.0)
        # E.0.0 up0 -> CS.2.0.0; E.1.0 up0 -> CS.2.1.0: different switches
        ctrl.handle_link_failure(("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), now=0.0)
        ctrl.handle_link_failure(("E.1.0", ("up", 0)), ("A.1.0", ("down", 0)), now=0.5)
        assert not ctrl.halted
