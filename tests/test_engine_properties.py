"""Property-based tests of the fluid simulation engine.

Random small workloads on a k=4 fat-tree, with and without random
failures, checking conservation-style invariants that must hold for any
input:

* completed flows finish no earlier than arrival + size/line-rate;
* coflow CCT equals the max of its flows' (finish − arrival);
* per-flow accounting: stall time never exceeds lifetime;
* determinism: identical inputs give identical outputs;
* with a failure + repair, completion is never *earlier* than without
  the failure (failures cannot add bandwidth).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.routing import GlobalOptimalRerouteRouter, StaticEcmpRouter
from repro.simulation import CoflowSpec, FlowSpec, FluidSimulation
from repro.topology import FatTree

LINE_RATE = 10e9
HOSTS = [f"H.{p}.{e}.{h}" for p in range(4) for e in range(2) for h in range(2)]


@st.composite
def workloads(draw):
    num_coflows = draw(st.integers(min_value=1, max_value=4))
    coflows = []
    flow_id = 1
    for cid in range(1, num_coflows + 1):
        arrival = draw(st.floats(min_value=0.0, max_value=2.0))
        width = draw(st.integers(min_value=1, max_value=4))
        flows = []
        for _ in range(width):
            src = draw(st.sampled_from(HOSTS))
            dst = draw(st.sampled_from([h for h in HOSTS if h != src]))
            size = draw(st.floats(min_value=1e5, max_value=2e9))
            flows.append(FlowSpec(flow_id, cid, src, dst, size))
            flow_id += 1
        coflows.append(CoflowSpec(cid, arrival, tuple(flows)))
    return coflows


def run(trace, fail=None):
    tree = FatTree(4)
    sim = FluidSimulation(
        tree, GlobalOptimalRerouteRouter(tree), trace, horizon=10_000.0
    )
    if fail is not None:
        node, t_fail, t_fix = fail
        sim.fail_node_at(t_fail, node)
        sim.restore_node_at(t_fix, node)
    return sim.run()


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_completion_respects_line_rate(trace):
    result = run(trace)
    for fid, record in result.flows.items():
        assert record.completed
        min_duration = record.spec.size_bits / LINE_RATE
        assert record.finish >= record.start + min_duration * (1 - 1e-9)


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_cct_is_max_flow_lifetime(trace):
    result = run(trace)
    for cid, coflow in result.coflows.items():
        finishes = [
            r.finish for r in result.flows.values() if r.spec.coflow_id == cid
        ]
        assert coflow.finish == max(finishes)


@given(workloads())
@settings(max_examples=40, deadline=None)
def test_stall_bounded_by_lifetime(trace):
    result = run(trace)
    for record in result.flows.values():
        assert 0.0 <= record.stalled_time <= record.finish - record.start + 1e-9


@given(workloads())
@settings(max_examples=20, deadline=None)
def test_determinism(trace):
    a = run(trace)
    b = run(trace)
    assert {f: r.finish for f, r in a.flows.items()} == {
        f: r.finish for f, r in b.flows.items()
    }


@given(
    workloads(),
    st.sampled_from(["C.0", "C.3", "A.0.0", "A.2.1"]),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.5, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_failure_window_accounting(trace, victim, t_fail, t_fix):
    """Under a repaired failure with static pins: everything completes,
    stalls are confined to flows whose pinned path crosses the victim,
    and no stall outlasts the failure window.

    (A stronger "failures never speed any flow up" is *false* under
    max-min fairness: stalling one flow frees bandwidth for flows that
    shared its bottleneck — hypothesis found the counterexample.)
    """
    tree = FatTree(4)
    router = StaticEcmpRouter(tree)
    sim = FluidSimulation(tree, router, trace, horizon=10_000.0)
    sim.fail_node_at(t_fail, victim)
    sim.restore_node_at(t_fix, victim)
    failed = sim.run()
    window = t_fix - t_fail
    pin_router = StaticEcmpRouter(FatTree(4))
    for fid, record in failed.flows.items():
        assert record.completed  # the failure was repaired
        assert record.stalled_time <= window + 1e-9
        pin = pin_router.initial_path(record.spec.src, record.spec.dst, fid)
        if victim not in pin.nodes:
            assert record.stalled_time == 0.0, (
                f"flow {fid} stalled without crossing the victim"
            )
