"""Oracle/incremental/vectorized equivalence and event-loop regressions.

The allocator backends' contract (``docs/simulator.md``) is exact: for
any trace and failure schedule the incremental engine *and* the
vectorized columnar engine must be *bit-identical* to the from-scratch
oracle — same flow and coflow records, same event counts, and the same
full rate map after every single reallocation.  These tests enforce
that three-way contract on randomized workloads, through the
Figure 1(c) experiment pipeline, and pin down the event-loop hazard the
overhaul fixed (recursive completion draining blowing the stack on long
same-instant chains).
"""

import sys
from dataclasses import asdict

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.experiments import slowdown
from repro.experiments.config import StudyConfig
from repro.experiments.slowdown import evaluate_slowdown_payload
from repro.routing import GlobalOptimalRerouteRouter
from repro.simulation import CoflowSpec, FlowSpec, FluidSimulation
from repro.simulation import engine as engine_mod
from repro.topology import FatTree

HOSTS = [f"H.{p}.{e}.{h}" for p in range(4) for e in range(2) for h in range(2)]

VICTIMS = ["C.0", "C.3", "A.0.1", "A.2.0", "E.0.0", "E.1.1"]


@st.composite
def workloads(draw):
    num_coflows = draw(st.integers(min_value=1, max_value=4))
    coflows = []
    flow_id = 1
    for cid in range(1, num_coflows + 1):
        arrival = draw(st.floats(min_value=0.0, max_value=2.0))
        width = draw(st.integers(min_value=1, max_value=4))
        flows = []
        for _ in range(width):
            src = draw(st.sampled_from(HOSTS))
            dst = draw(st.sampled_from([h for h in HOSTS if h != src]))
            size = draw(st.floats(min_value=1e5, max_value=2e9))
            flows.append(FlowSpec(flow_id, cid, src, dst, size))
            flow_id += 1
        coflows.append(CoflowSpec(cid, arrival, tuple(flows)))
    return coflows


class RecordingMonitor:
    """Captures the engine's full rate map after every reallocation."""

    def __init__(self):
        self.events = []

    def on_reallocate(self, now, flow_segments, rates):
        self.events.append((now, dict(flow_segments), dict(rates)))


def run_mode(trace, allocator, fail=None):
    tree = FatTree(4)
    monitor = RecordingMonitor()
    sim = FluidSimulation(
        tree,
        GlobalOptimalRerouteRouter(tree),
        trace,
        horizon=10_000.0,
        monitor=monitor,
        allocator=allocator,
    )
    if fail is not None:
        node, t_fail, t_fix = fail
        sim.fail_node_at(t_fail, node)
        sim.restore_node_at(t_fix, node)
    return sim.run(), monitor


CHALLENGER_ALLOCATORS = ("incremental", "vectorized")


def assert_bit_identical(trace, fail=None):
    oracle, oracle_mon = run_mode(trace, "oracle", fail)
    for allocator in CHALLENGER_ALLOCATORS:
        got, got_mon = run_mode(trace, allocator, fail)
        # Dataclass equality on float fields is exact, so any drift —
        # however small — fails here, not just "close enough".
        assert got.flows == oracle.flows, allocator
        assert got.coflows == oracle.coflows, allocator
        assert got.end_time == oracle.end_time, allocator
        assert got.events_processed == oracle.events_processed, allocator
        assert got.reallocations == oracle.reallocations, allocator
        assert got_mon.events == oracle_mon.events, allocator


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_challengers_match_oracle(trace):
    assert_bit_identical(trace)


@given(
    workloads(),
    st.sampled_from(VICTIMS),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.5, max_value=4.0),
)
@settings(max_examples=25, deadline=None)
def test_challengers_match_oracle_under_failure(trace, victim, t_fail, t_fix):
    assert_bit_identical(trace, fail=(victim, t_fail, t_fix))


@given(
    workloads(),
    st.sampled_from(VICTIMS),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=15, deadline=None)
def test_challengers_match_oracle_unrepaired(trace, victim, t_fail):
    """No repair: stalled flows stay stalled and the horizon cuts the
    run short — the modes must agree on unfinished flows too."""
    a, a_mon = run_mode(trace, "oracle", fail=(victim, t_fail, 20_000.0))
    for allocator in CHALLENGER_ALLOCATORS:
        b, b_mon = run_mode(trace, allocator, fail=(victim, t_fail, 20_000.0))
        assert b.flows == a.flows, allocator
        assert b.coflows == a.coflows, allocator
        assert b.end_time == a.end_time, allocator
        assert b_mon.events == a_mon.events, allocator


def test_unknown_allocator_rejected():
    tree = FatTree(4)
    trace = [
        CoflowSpec(1, 0.0, (FlowSpec(1, 1, HOSTS[0], HOSTS[-1], 1e6),))
    ]
    with pytest.raises(ValueError, match="unknown allocator"):
        FluidSimulation(
            tree, GlobalOptimalRerouteRouter(tree), trace, allocator="bogus"
        )


def _stack_depth():
    depth = 0
    frame = sys._getframe()
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth


def test_same_instant_completion_chain_is_iterative():
    """Hundreds of identical flows finish at the same instant; the
    completion drain must handle the whole wave iteratively.  The old
    engine re-entered the post-event hook per completion wave, so a
    chain like this could recurse toward the interpreter stack limit.
    """
    n = 300
    flows = tuple(
        FlowSpec(i, 1, "H.0.0.0", "H.3.1.1", 1e6) for i in range(1, n + 1)
    )
    trace = [CoflowSpec(1, 0.0, flows)]
    tree = FatTree(4)
    sim = FluidSimulation(tree, GlobalOptimalRerouteRouter(tree), trace)
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(_stack_depth() + 60)
    try:
        result = sim.run()
    finally:
        sys.setrecursionlimit(limit)
    assert len(result.flows) == n
    assert all(r.completed for r in result.flows.values())
    finishes = {r.finish for r in result.flows.values()}
    assert len(finishes) == 1  # one same-instant wave, as constructed


# ----------------------------------------------------------------------
# pipeline-level A/B: the Figure 1(c) experiment, both allocators
# ----------------------------------------------------------------------

_PIPELINE_CONFIG = StudyConfig(
    k=4, hosts_per_edge=4, num_coflows=8, duration=3.0, seed=7
)


def _pipeline_payloads():
    config = asdict(_PIPELINE_CONFIG)
    return [
        {
            "config": config,
            "architecture": "fat-tree",
            "scenario": {"nodes": ["A.0.1"], "links": []},
        },
        {
            "config": config,
            "architecture": "sharebackup",
            "victim": "E.0.0",
        },
    ]


def test_pipeline_results_identical_across_allocators(monkeypatch):
    """Full experiment-pipeline A/B/C: every slowdown sample — including
    the memoised clean baselines — must match exactly across modes."""
    outputs = {}
    for mode in ("oracle", *CHALLENGER_ALLOCATORS):
        monkeypatch.setattr(engine_mod, "DEFAULT_ALLOCATOR", mode)
        # The clean baselines are memoised per worker; rebuild them
        # under each allocator so the comparison covers them too.
        slowdown._rerouting_context.cache_clear()
        slowdown._sharebackup_context.cache_clear()
        outputs[mode] = [
            evaluate_slowdown_payload(p) for p in _pipeline_payloads()
        ]
    slowdown._rerouting_context.cache_clear()
    slowdown._sharebackup_context.cache_clear()
    assert outputs["incremental"] == outputs["oracle"]
    assert outputs["vectorized"] == outputs["oracle"]
    assert all(out["slowdowns"] for out in outputs["incremental"])
