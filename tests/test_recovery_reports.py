"""RecoveryReport / capacity-summary field coverage."""

import pytest

from repro.core import (
    RecoveryTimeModel,
    ShareBackupController,
    ShareBackupNetwork,
)


class TestRecoveryReportFields:
    def test_node_report_fields(self, sb6):
        ctrl = ShareBackupController(sb6)
        report = ctrl.handle_node_failure("C.0", now=1.5)
        assert report.kind == "node"
        assert report.fully_recovered
        assert report.recovery_time == report.breakdown.total
        assert report.unrecoverable == ()

    def test_unrecoverable_report_fields(self, sb6):
        ctrl = ShareBackupController(sb6)
        ctrl.handle_node_failure("C.0")
        report = ctrl.handle_node_failure("C.3")  # same group, n=1
        assert not report.fully_recovered
        assert report.replaced == ()
        assert report.circuit_switches_touched == 0
        assert report.unrecoverable == ("C.3",)

    def test_link_report_counts_both_groups(self, sb6):
        ctrl = ShareBackupController(sb6)
        report = ctrl.handle_link_failure(
            ("E.2.0", ("up", 1)), ("A.2.1", ("down", 2))
        )
        assert report.kind == "link"
        # edge touches 6 circuit switches, agg touches 6 (one shared layer)
        assert report.circuit_switches_touched == 12
        assert len(report.replaced) == 2

    def test_custom_timing_propagates(self, sb6):
        timing = RecoveryTimeModel(probe_interval=5e-3, controller_hop=1e-3)
        ctrl = ShareBackupController(sb6, timing=timing, technology="mems")
        report = ctrl.handle_node_failure("E.0.0")
        assert report.breakdown.detection == 5e-3
        assert report.breakdown.reconfiguration == 40e-6
        assert report.recovery_time > 7e-3


class TestCapacitySummary:
    def test_summary_for_nonuniform(self):
        net = ShareBackupNetwork(6, n={"edge": 2})
        summary = ShareBackupController(net).capacity_summary()
        assert summary["failure_groups"] == 15
        # `n` reflects the uniform view (max across layers)
        assert summary["switch_failures_per_group"] == 2
        assert summary["circuit_ports_per_side"] == 3 + 2 + 2
