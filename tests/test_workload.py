"""Workload generator tests: structure, statistics, materialisation."""

import numpy as np
import pytest

from repro.topology import FatTree
from repro.workload import (
    CoflowTraceGenerator,
    WorkloadConfig,
    bounded_pareto_bytes,
    categorical,
    exponential_gaps,
    lognormal_bytes,
    materialize_hosts,
    partition_trace,
    sample_without_replacement,
)


class TestDistributions:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_exponential_gaps_positive(self):
        gaps = exponential_gaps(self.rng, rate=2.0, n=100)
        assert len(gaps) == 100 and (gaps > 0).all()

    def test_exponential_gaps_mean(self):
        gaps = exponential_gaps(self.rng, rate=2.0, n=20000)
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)

    def test_exponential_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            exponential_gaps(self.rng, rate=0.0, n=10)

    def test_lognormal_median(self):
        vals = [lognormal_bytes(self.rng, median=1e6) for _ in range(5001)]
        assert np.median(vals) == pytest.approx(1e6, rel=0.15)

    def test_lognormal_floor(self):
        v = lognormal_bytes(self.rng, median=2.0, sigma=3.0, floor=1.0)
        assert v >= 1.0

    def test_lognormal_rejects_bad_median(self):
        with pytest.raises(ValueError):
            lognormal_bytes(self.rng, median=0.0)

    def test_bounded_pareto_in_range(self):
        for _ in range(500):
            v = bounded_pareto_bytes(self.rng, 1e6, 1e9)
            assert 1e6 <= v <= 1e9 * (1 + 1e-9)

    def test_bounded_pareto_heavy_tailed(self):
        # analytic mean/median ratio for alpha=1.2 bounded at 1e10 is ~2.8
        vals = [
            bounded_pareto_bytes(self.rng, 1e6, 1e10, alpha=1.2)
            for _ in range(5000)
        ]
        assert np.mean(vals) > 2 * np.median(vals)  # elephants dominate bytes

    def test_bounded_pareto_rejects_bad_range(self):
        with pytest.raises(ValueError):
            bounded_pareto_bytes(self.rng, 10.0, 5.0)

    def test_categorical_respects_weights(self):
        picks = [categorical(self.rng, {"a": 0.9, "b": 0.1}) for _ in range(2000)]
        assert 0.85 < picks.count("a") / len(picks) < 0.95

    def test_categorical_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            categorical(self.rng, {"a": 0.0})

    def test_sample_without_replacement(self):
        picks = sample_without_replacement(self.rng, 10, 5)
        assert len(set(picks)) == 5 and all(0 <= p < 10 for p in picks)

    def test_sample_caps_at_population(self):
        assert len(sample_without_replacement(self.rng, 3, 10)) == 3


class TestGenerator:
    def make(self, **kw):
        defaults = dict(num_racks=32, num_coflows=120, duration=100.0, seed=7)
        defaults.update(kw)
        return CoflowTraceGenerator(WorkloadConfig(**defaults)).generate()

    def test_count_and_ordering(self):
        trace = self.make()
        assert len(trace) == 120
        arrivals = [c.arrival for c in trace]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] <= 100.0

    def test_deterministic_from_seed(self):
        a, b = self.make(), self.make()
        assert [(c.arrival, c.width, c.total_bytes) for c in a] == [
            (c.arrival, c.width, c.total_bytes) for c in b
        ]

    def test_different_seeds_differ(self):
        a, b = self.make(), self.make(seed=8)
        assert [c.width for c in a] != [c.width for c in b]

    def test_flow_ids_globally_unique(self):
        trace = self.make()
        ids = [f.flow_id for c in trace for f in c.flows]
        assert len(ids) == len(set(ids))

    def test_flows_are_mapper_reducer_products(self):
        trace = self.make()
        for c in trace:
            srcs = {f.src_rack for f in c.flows}
            dsts = {f.dst_rack for f in c.flows}
            assert len(c.flows) == len(srcs) * len(dsts)
            assert not srcs & dsts  # mappers and reducers are disjoint racks

    def test_racks_within_range(self):
        trace = self.make()
        for c in trace:
            for f in c.flows:
                assert 0 <= f.src_rack < 32 and 0 <= f.dst_rack < 32

    def test_category_mix_roughly_matches_shares(self):
        trace = self.make(num_coflows=2000, duration=1000.0)
        frac_narrow = sum(
            1 for c in trace if c.category.endswith("narrow")
        ) / len(trace)
        assert 0.58 < frac_narrow < 0.78  # target 0.68

    def test_wide_coflows_are_wider(self):
        trace = self.make(num_coflows=1000, duration=500.0)
        narrow = [c.width for c in trace if c.category.endswith("narrow")]
        wide = [c.width for c in trace if c.category.endswith("wide")]
        assert np.mean(wide) > 5 * np.mean(narrow)

    def test_long_coflows_carry_most_bytes(self):
        trace = self.make(num_coflows=1000, duration=500.0)
        long_bytes = sum(c.total_bytes for c in trace if c.category.startswith("long"))
        total = sum(c.total_bytes for c in trace)
        assert long_bytes / total > 0.9  # heavy tail dominates

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_racks=1)
        with pytest.raises(ValueError):
            WorkloadConfig(num_coflows=0)


class TestMaterialization:
    def test_hosts_bound_to_right_racks(self):
        tree = FatTree(8)
        trace = CoflowTraceGenerator(
            WorkloadConfig(
                num_racks=tree.num_racks, num_coflows=50, duration=50, seed=1
            )
        ).generate()
        specs = materialize_hosts(trace, tree)
        by_id = {f.flow_id: f for c in trace for f in c.flows}
        for spec in specs:
            for f in spec.flows:
                rack_flow = by_id[f.flow_id]
                assert tree.rack_of(f.src) == rack_flow.src_rack
                assert tree.rack_of(f.dst) == rack_flow.dst_rack

    def test_round_robin_spreads_hosts(self):
        tree = FatTree(8)
        trace = CoflowTraceGenerator(
            WorkloadConfig(
                num_racks=tree.num_racks, num_coflows=200, duration=50, seed=2
            )
        ).generate()
        specs = materialize_hosts(trace, tree)
        hosts_used = {f.src for c in specs for f in c.flows}
        assert len(hosts_used) > tree.num_racks  # more than one host per rack

    def test_rejects_rack_overflow(self):
        tree = FatTree(4)  # 8 racks
        trace = CoflowTraceGenerator(
            WorkloadConfig(num_racks=32, num_coflows=30, duration=50, seed=3)
        ).generate()
        with pytest.raises(ValueError):
            materialize_hosts(trace, tree)

    def test_sizes_preserved(self):
        tree = FatTree(8)
        trace = CoflowTraceGenerator(
            WorkloadConfig(
                num_racks=tree.num_racks, num_coflows=40, duration=50, seed=4
            )
        ).generate()
        specs = materialize_hosts(trace, tree)
        assert sum(f.size_bytes for c in specs for f in c.flows) == pytest.approx(
            sum(c.total_bytes for c in trace)
        )


class TestPartitioning:
    def test_partition_boundaries(self):
        trace = CoflowTraceGenerator(
            WorkloadConfig(num_racks=16, num_coflows=300, duration=900, seed=5)
        ).generate()
        parts = partition_trace(trace, 300.0)
        assert sum(len(p) for p in parts) == 300
        for part in parts:
            for c in part:
                assert 0 <= c.arrival < 300.0

    def test_partition_rejects_bad_window(self):
        with pytest.raises(ValueError):
            partition_trace([], 0.0)

    def test_partition_preserves_flows(self):
        trace = CoflowTraceGenerator(
            WorkloadConfig(num_racks=16, num_coflows=100, duration=600, seed=6)
        ).generate()
        parts = partition_trace(trace, 300.0)
        got = {f.flow_id for p in parts for c in p for f in c.flows}
        want = {f.flow_id for c in trace for f in c.flows}
        assert got == want
