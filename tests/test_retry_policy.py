"""Tests for :mod:`repro.retry` — the shared retry policy."""

import pytest

from repro.retry import RetryPolicy
from repro.rng import ensure_rng
from repro.runner import SweepRunner


class TestDefaults:
    def test_total_attempts(self):
        assert RetryPolicy(max_retries=0).total_attempts == 1
        assert RetryPolicy(max_retries=3).total_attempts == 4

    def test_frozen(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.max_retries = 5


class TestValidation:
    def test_negative_retries(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_negative_base(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)

    def test_nonpositive_factor(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.0)

    def test_jitter_out_of_range(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestDelay:
    def test_exponential_growth(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.5, backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(0.5)
        assert policy.delay(1) == pytest.approx(1.0)
        assert policy.delay(2) == pytest.approx(2.0)

    def test_max_backoff_caps(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=1.0, backoff_factor=10.0, max_backoff=3.0
        )
        assert policy.delay(0) == pytest.approx(1.0)
        assert policy.delay(3) == pytest.approx(3.0)

    def test_no_jitter_is_deterministic_without_rng(self):
        policy = RetryPolicy(backoff_base=0.25)
        assert policy.delay(0) == policy.delay(0) == 0.25

    def test_jitter_without_rng_is_silently_off(self):
        policy = RetryPolicy(backoff_base=0.25, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.25)

    def test_jitter_stays_within_spread(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.2)
        gen = ensure_rng(7)
        for attempt in range(20):
            d = policy.delay(0, rng=gen)
            assert 0.8 <= d <= 1.2

    def test_jitter_reproducible_from_seed(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.1, jitter=0.3)
        assert policy.schedule(rng=42) == policy.schedule(rng=42)
        assert policy.schedule(rng=42) != policy.schedule(rng=43)


class TestSchedule:
    def test_length_is_max_retries(self):
        assert len(RetryPolicy(max_retries=3).schedule()) == 3
        assert RetryPolicy(max_retries=0).schedule() == ()

    def test_matches_per_attempt_delay(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.5)
        assert policy.schedule() == tuple(policy.delay(i) for i in range(3))


class TestRunnerIntegration:
    def test_sweep_runner_accepts_policy(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.01)
        runner = SweepRunner(jobs=1, retry_policy=policy)
        assert runner.retry_policy is policy
        assert runner.max_retries == 5

    def test_legacy_kwargs_build_a_policy(self):
        runner = SweepRunner(jobs=1, max_retries=4, backoff_base=0.2)
        assert runner.retry_policy.max_retries == 4
        assert runner.retry_policy.backoff_base == pytest.approx(0.2)
