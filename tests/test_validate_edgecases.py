"""Edge cases of the structural validators and addressing overflow paths."""

import pytest

from repro.topology import FatTree, Node, NodeKind, ValidationError
from repro.topology.validate import (
    check_port_counts,
    validate_fattree,
    validate_folded_clos,
)


class TestValidatorDetectsCorruption:
    def test_missing_core_link_detected(self, ft4):
        link = ft4.links_between("A.0.0", "C.0")[0]
        ft4.remove_link(link.link_id)
        with pytest.raises(ValidationError):
            validate_fattree(ft4)

    def test_level_skipping_link_detected(self, ft4):
        ft4.add_link("E.0.0", "C.0")  # edge direct to core: illegal
        with pytest.raises(ValidationError):
            validate_folded_clos(ft4)

    def test_unexpected_parallel_link_detected(self, ft4):
        ft4.add_link("E.0.0", "A.0.0")
        with pytest.raises(ValidationError):
            validate_fattree(ft4)

    def test_missing_pod_mesh_detected(self, ft4):
        link = ft4.links_between("E.0.0", "A.0.1")[0]
        ft4.remove_link(link.link_id)
        with pytest.raises(ValidationError):
            validate_fattree(ft4)

    def test_multi_homed_host_detected(self, ft4):
        ft4.add_link("H.0.0.0", "E.0.1")
        with pytest.raises(ValidationError):
            check_port_counts(ft4)

    def test_core_touching_pod_twice_detected(self, ft4):
        # rewire: move C.0's pod-1 link onto pod 0's other agg
        link = ft4.links_between("A.1.0", "C.0")[0]
        ft4.remove_link(link.link_id)
        ft4.add_link("A.0.1", "C.0")
        with pytest.raises(ValidationError):
            validate_fattree(ft4)

    def test_core_with_edge_neighbor_detected(self, ft4):
        # validate_fattree checks neighbors of cores are aggs
        link = ft4.links_between("A.0.0", "C.0")[0]
        ft4.remove_link(link.link_id)
        ft4.add_link("E.0.0", "C.0")
        with pytest.raises(ValidationError):
            validate_fattree(ft4)


class TestAddressingOverflowPaths:
    def test_moderate_oversubscription_keeps_octets(self):
        tree = FatTree(4, hosts_per_edge=100)
        addr = tree.nodes["H.0.0.99"].attrs["address"]
        assert addr.o3 == 101

    def test_extreme_oversubscription_wraps_octet(self):
        tree = FatTree(4, hosts_per_edge=300)
        addr = tree.nodes["H.0.0.299"].attrs["address"]
        assert 0 <= addr.o3 <= 255  # wrapped, still a legal octet

    def test_extreme_oversubscription_still_validates(self):
        validate_fattree(FatTree(4, hosts_per_edge=300))
