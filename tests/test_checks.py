"""Tests for :mod:`repro.checks` — the repository invariant linter.

Three layers:

* engine-level: ``check_source`` with explicit ``module=`` exercises
  rule scoping without touching the filesystem;
* fixture-level: each rule gets at least one seeded-violation file in
  ``tmp_path`` (module unknown → every rule applies strictly) and the
  CLI must exit 1 with exactly the expected codes;
* repository-level: ``repro lint`` over the real ``src/repro`` tree
  must exit 0 — the linter gates the code it ships with.
"""

import ast
from pathlib import Path
from textwrap import dedent

import pytest

import repro
from repro.checks import (
    DEFAULT_TARGETS,
    Rule,
    all_rule_codes,
    all_rules,
    check_source,
    get_rule,
    iter_source_files,
    module_name_for,
    project_rules,
)
from repro.cli import main

SRC = Path(repro.__file__).parent

EXPECTED_CODES = {
    "RNG001", "RNG002",
    "DET001", "DET002", "DET003",
    "PROC001", "PROC002",
    "EXC001", "EXC002",
    "CHS001",
    "PERF001", "PERF002",
    "SVC001", "SVC014",
}

PROJECT_CODES = {
    "RNG010", "PROC010", "CHS010", "IMP001", "DEAD001",
    "SVC010", "SVC011", "SVC012", "SVC013",
    "NUM001", "NUM002", "NUM003", "NUM004",
}


def codes(diagnostics):
    return {d.code for d in diagnostics}


def lint_file(tmp_path, source, name="fixture.py"):
    """Write ``source`` under ``tmp_path`` and run ``repro lint`` on it."""
    path = tmp_path / name
    path.write_text(dedent(source))
    return main(["lint", str(path)])


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert {r.code for r in all_rules()} == EXPECTED_CODES

    def test_rules_sorted_by_code(self):
        listed = [r.code for r in all_rules()]
        assert listed == sorted(listed)

    def test_all_expected_project_rules_registered(self):
        assert {r.code for r in project_rules()} == PROJECT_CODES

    def test_all_rule_codes_covers_both_families(self):
        assert set(all_rule_codes()) == EXPECTED_CODES | PROJECT_CODES
        assert all_rule_codes() == sorted(all_rule_codes())

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rng001").code == "RNG001"

    def test_get_rule_finds_project_rules(self):
        assert get_rule("imp001").code == "IMP001"

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_every_rule_documents_itself(self):
        for rule in [*all_rules(), *project_rules()]:
            assert rule.name
            assert rule.rationale


# ----------------------------------------------------------------------
# scoping
# ----------------------------------------------------------------------


class TestScoping:
    WALL_CLOCK = """\
        import time

        def measure():
            return time.time()
        """

    def test_unknown_module_gets_every_rule(self):
        diags = check_source(dedent(self.WALL_CLOCK), module=None)
        assert "DET001" in codes(diags)

    def test_scoped_rule_silent_outside_scope(self):
        diags = check_source(
            dedent(self.WALL_CLOCK), module="repro.topology.fattree"
        )
        assert "DET001" not in codes(diags)

    def test_scoped_rule_fires_inside_scope(self):
        diags = check_source(
            dedent(self.WALL_CLOCK), module="repro.simulation.engine"
        )
        assert "DET001" in codes(diags)

    def test_exempt_module_wins(self):
        source = """\
            import random

            def draw():
                return random.random()
            """
        assert "RNG001" in codes(check_source(dedent(source), module=None))
        assert not codes(check_source(dedent(source), module="repro.rng"))

    def test_benchmarks_category_exempt_from_determinism(self):
        # A benchmark's whole job is to read the clock.
        diags = check_source(dedent(self.WALL_CLOCK), category="benchmarks")
        assert "DET001" not in codes(diags)

    def test_examples_category_exempt_from_determinism(self):
        diags = check_source(dedent(self.WALL_CLOCK), category="examples")
        assert "DET001" not in codes(diags)

    def test_src_category_keeps_determinism_rules(self):
        diags = check_source(dedent(self.WALL_CLOCK), category="src")
        assert "DET001" in codes(diags)

    def test_category_exemption_does_not_silence_other_rules(self):
        source = """\
            import random

            def jitter(seed):
                return random.uniform(0.0, 1.0)
            """
        diags = check_source(dedent(source), category="benchmarks")
        assert "RNG001" in codes(diags)

    def test_module_name_for_anchors_at_repro(self):
        path = Path("/anywhere/src/repro/simulation/engine.py")
        assert module_name_for(path) == "repro.simulation.engine"

    def test_module_name_for_init_is_package(self):
        path = Path("/x/src/repro/runner/__init__.py")
        assert module_name_for(path) == "repro.runner"

    def test_module_name_for_outside_package_is_none(self):
        assert module_name_for(Path("/tmp/scratch/fixture.py")) is None


# ----------------------------------------------------------------------
# one seeded-violation fixture per rule
# ----------------------------------------------------------------------


class TestRuleFixtures:
    def test_rng001_stdlib_global(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            import random

            def jitter(seed):
                return random.uniform(0.0, 1.0)
            """,
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "RNG001" in out
        assert "ensure_rng" in out

    def test_rng001_numpy_default_rng(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            import numpy as np

            GEN = np.random.default_rng()
            """,
        )
        assert exit_code == 1
        assert "RNG001" in capsys.readouterr().out

    def test_rng001_resolves_import_aliases(self):
        source = """\
            from numpy import random as npr

            def draw(seed):
                return npr.standard_normal()
            """
        assert "RNG001" in codes(check_source(dedent(source)))

    def test_rng002_unseeded_public_function(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            from repro.rng import ensure_rng

            def make_trace(n):
                gen = ensure_rng(None)
                return [gen.random() for _ in range(n)]
            """,
        )
        assert exit_code == 1
        assert "RNG002" in capsys.readouterr().out

    def test_rng002_seed_parameter_is_enough(self):
        source = """\
            from repro.rng import ensure_rng

            def make_trace(n, seed=0):
                gen = ensure_rng(seed)
                return [gen.random() for _ in range(n)]
            """
        assert "RNG002" not in codes(check_source(dedent(source)))

    def test_rng002_threaded_state_is_enough(self):
        source = """\
            from repro.rng import ensure_rng

            class Generator:
                def generate(self):
                    gen = ensure_rng(self.cfg.seed)
                    return gen.random()
            """
        assert "RNG002" not in codes(check_source(dedent(source)))

    def test_rng002_private_functions_ignored(self):
        source = """\
            from repro.rng import ensure_rng

            def _helper():
                return ensure_rng(None).random()
            """
        assert "RNG002" not in codes(check_source(dedent(source)))

    def test_det001_wall_clock(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            import time

            def run_event(seed):
                return {"finished_at": time.time()}
            """,
        )
        assert exit_code == 1
        assert "DET001" in capsys.readouterr().out

    def test_det001_datetime_now(self):
        source = """\
            import datetime

            def stamp(seed):
                return datetime.datetime.now()
            """
        assert "DET001" in codes(check_source(dedent(source)))

    def test_det002_for_over_set(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def emit(edges, seed):
                out = []
                for edge in set(edges):
                    out.append(edge)
                return out
            """,
        )
        assert exit_code == 1
        assert "DET002" in capsys.readouterr().out

    def test_det002_list_of_set_literal(self):
        source = """\
            def order(seed):
                return list({"a", "b", "c"})
            """
        assert "DET002" in codes(check_source(dedent(source)))

    def test_det002_sorted_set_is_fine(self):
        source = """\
            def order(items, seed):
                return sorted(set(items))
            """
        assert "DET002" not in codes(check_source(dedent(source)))

    def test_det003_popitem(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def drain(pending, seed):
                while pending:
                    key, value = pending.popitem()
                    yield key, value
            """,
        )
        assert exit_code == 1
        assert "DET003" in capsys.readouterr().out

    def test_proc001_lambda_to_submit(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def fan_out(pool, shard):
                return pool.submit(lambda: shard)
            """,
        )
        assert exit_code == 1
        assert "PROC001" in capsys.readouterr().out

    def test_proc001_nested_function_to_submit(self):
        source = """\
            def fan_out(pool, shard):
                def work():
                    return shard
                return pool.submit(work)
            """
        assert "PROC001" in codes(check_source(dedent(source)))

    def test_proc001_module_level_function_is_fine(self):
        source = """\
            def work(shard):
                return shard

            def fan_out(pool, shard):
                return pool.submit(work, shard)
            """
        assert "PROC001" not in codes(check_source(dedent(source)))

    def test_proc002_lambda_in_payload(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def build(seed):
                return make_task(payload={"fn": lambda x: x})
            """,
        )
        assert exit_code == 1
        assert "PROC002" in capsys.readouterr().out

    def test_proc002_set_in_task_positional_payload(self):
        source = """\
            def build(Task, seed):
                return Task("kind", "t0", {"edges": {1, 2, 3}})
            """
        assert "PROC002" in codes(check_source(dedent(source)))

    def test_proc002_bytes_in_payload(self):
        source = """\
            def build(seed):
                return make_task(payload={"blob": b"raw"})
            """
        assert "PROC002" in codes(check_source(dedent(source)))

    def test_proc002_json_safe_payload_is_fine(self):
        source = """\
            def build(seed):
                return make_task(payload={"k": 4, "rate": 0.5, "tag": "x"})
            """
        assert "PROC002" not in codes(check_source(dedent(source)))

    def test_exc001_silent_broad_except(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def guarded(step, seed):
                try:
                    step()
                except Exception:
                    pass
            """,
        )
        assert exit_code == 1
        assert "EXC001" in capsys.readouterr().out

    def test_exc001_reraise_is_fine(self):
        source = """\
            def guarded(step, seed):
                try:
                    step()
                except Exception:
                    raise
            """
        assert "EXC001" not in codes(check_source(dedent(source)))

    def test_exc001_journal_record_is_fine(self):
        source = """\
            def guarded(step, journal, seed):
                try:
                    step()
                except Exception as exc:
                    journal.record("shard_failed", error=repr(exc))
            """
        assert "EXC001" not in codes(check_source(dedent(source)))

    def test_exc001_raise_inside_nested_def_not_enough(self):
        source = """\
            def guarded(step, seed):
                try:
                    step()
                except Exception:
                    def later():
                        raise RuntimeError("too late")
            """
        assert "EXC001" in codes(check_source(dedent(source)))

    def test_exc002_bare_except(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def guarded(step, seed):
                try:
                    step()
                except:
                    return None
            """,
        )
        assert exit_code == 1
        assert "EXC002" in capsys.readouterr().out

    def test_chs001_direct_reconfigure(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def hotfix(net):
                net.circuit_switches["cs-E0"].reconfigure({("d", 0): None})
            """,
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "CHS001" in out
        assert "ShareBackupController" in out

    def test_chs001_raw_failover(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def recover(net, spare):
                net.failover("E.0.0", spare)
            """,
        )
        assert exit_code == 1
        assert "CHS001" in capsys.readouterr().out

    def test_chs001_connect_on_circuit_switch_receiver(self):
        source = """\
            def rewire(cs):
                cs.connect(("d", 0), ("u", 0))
            """
        assert "CHS001" in codes(check_source(dedent(source)))

    def test_chs001_connect_on_unrelated_receiver_is_fine(self):
        source = """\
            def open_db(client):
                return client.connect("localhost")
            """
        assert "CHS001" not in codes(check_source(dedent(source)))

    def test_perf001_full_active_sweep_fires(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            class FluidSimulation:
                def _throttle_everything(self):
                    for fid, state in self.active.items():
                        state.rate = 0.0
            """,
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "PERF001" in out
        assert "_throttle_everything" in out

    def test_perf001_catches_wrapped_iteration(self):
        source = """\
            class FluidSimulation:
                def _scan(self):
                    return [fid for fid in sorted(self.active)]
            """
        assert "PERF001" in codes(check_source(dedent(source)))

    def test_perf001_sanctioned_helpers_are_fine(self):
        source = """\
            class FluidSimulation:
                def _repath_flows(self):
                    for fid in sorted(self.active):
                        pass

                def _reallocate_oracle(self):
                    return [s.ipath for s in self.active.values()]

                def _notify_monitor(self):
                    return {f: s for f, s in self.active.items()}

                def _build_result(self):
                    for fid, state in self.active.items():
                        pass
            """
        assert "PERF001" not in codes(check_source(dedent(source)))

    def test_perf001_other_classes_and_attrs_are_fine(self):
        source = """\
            class PacketLevelSimulator:
                def sweep(self):
                    for f in self.active:
                        pass

            class FluidSimulation:
                def _drain(self):
                    for comp in self.components:
                        pass
                    for fid in affected:
                        pass
            """
        assert "PERF001" not in codes(check_source(dedent(source)))

    def test_perf001_scoped_to_simulation_modules(self):
        source = """\
            class FluidSimulation:
                def _helper(self):
                    for fid in self.active:
                        pass
            """
        assert "PERF001" in codes(
            check_source(dedent(source), module="repro.simulation.engine")
        )
        assert "PERF001" not in codes(
            check_source(dedent(source), module="repro.experiments.slowdown")
        )

    def test_perf002_per_row_loop_fires(self):
        source = """\
            def waterfill(seg_matrix, capacities):
                total = 0.0
                for row in seg_matrix:
                    total += row.min()
                return total
            """
        diags = check_source(
            dedent(source), module="repro.simulation.columnar"
        )
        matches = [d for d in diags if d.code == "PERF002"]
        assert len(matches) == 1
        assert "waterfill" in matches[0].message

    def test_perf002_catches_comprehensions_and_module_level(self):
        source = """\
            levels = [row.min() for row in ALIVE]

            def extract(table, rates):
                return {fid: r for fid, r in zip(table.flow_ids, rates)}
            """
        diags = check_source(
            dedent(source), module="repro.simulation.columnar"
        )
        assert len([d for d in diags if d.code == "PERF002"]) == 2

    def test_perf002_range_loops_are_fine(self):
        source = """\
            def _reduce_columns(op, matrix):
                out = matrix[:, 0].copy()
                for column in range(1, matrix.shape[1]):
                    op(out, matrix[:, column], out=out)
                return out
            """
        assert "PERF002" not in codes(
            check_source(dedent(source), module="repro.simulation.columnar")
        )

    def test_perf002_sanctioned_patch_helpers_are_fine(self):
        source = """\
            class FlowTable:
                def append(self, flow_id, path):
                    for seg in path:
                        self.incidence[seg] += 1

                def discard(self, flow_ids):
                    gone = [fid for fid in flow_ids if fid in self._members]

                def rebuild(self, entries):
                    for row, (fid, path, rate) in enumerate(entries):
                        pass

            def pack_paths(paths, num_segments):
                for row, path in enumerate(paths):
                    pass
            """
        assert "PERF002" not in codes(
            check_source(dedent(source), module="repro.simulation.columnar")
        )

    def test_perf002_scoped_to_the_columnar_module(self):
        source = """\
            def solve(rows):
                return [r.min() for r in rows]
            """
        assert "PERF002" in codes(
            check_source(dedent(source), module="repro.simulation.columnar")
        )
        assert "PERF002" not in codes(
            check_source(dedent(source), module="repro.simulation.engine")
        )
        # No structural anchor means no firing on unresolved modules
        # (the CLI lints benchmarks/ and examples/ with module=None).
        assert "PERF002" not in codes(check_source(dedent(source)))

    def test_chs001_exempt_inside_repro_core(self):
        source = """\
            def failover(self, logical, spare):
                for cs in self.circuit_switches_of(logical):
                    cs.reconfigure({})
            """
        assert "CHS001" not in codes(
            check_source(dedent(source), module="repro.core.sharebackup")
        )
        assert "CHS001" in codes(
            check_source(dedent(source), module="repro.chaos.harness")
        )

    def test_svc001_time_sleep_in_coroutine_fires(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            import time

            async def drain_loop(queue):
                while True:
                    time.sleep(0.1)
            """,
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "SVC001" in out
        assert "time.sleep" in out

    def test_svc001_sync_io_in_coroutine_fires(self):
        source = """\
            async def dump(path, payload):
                with open(path, "w") as fh:
                    fh.write(payload)
                path.write_text(payload)
            """
        diagnostics = [
            d
            for d in check_source(
                dedent(source), module="repro.service.service"
            )
            if d.code == "SVC001"
        ]
        assert len(diagnostics) == 2  # open() and .write_text()

    def test_svc001_sync_functions_are_fine(self):
        source = """\
            import time

            def snapshot():
                time.sleep(0.1)
                return open("state.json").read()
            """
        assert "SVC001" not in codes(
            check_source(dedent(source), module="repro.service.service")
        )

    def test_svc001_awaiting_the_clock_is_fine(self):
        source = """\
            async def scan_loop(self):
                while True:
                    await self.clock.sleep(self.interval)
                    await self._scan_once()
            """
        assert "SVC001" not in codes(
            check_source(dedent(source), module="repro.service.service")
        )

    def test_svc001_scoped_to_service_modules(self):
        source = """\
            import time

            async def worker():
                time.sleep(1.0)
            """
        assert "SVC001" in codes(
            check_source(dedent(source), module="repro.service.resolver")
        )
        assert "SVC001" not in codes(
            check_source(dedent(source), module="repro.experiments.sweep")
        )

    def test_svc014_commit_outside_resolver_fires(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            def recover(controller, name):
                return controller.handle_node_failure(name)
            """,
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "SVC014" in out
        assert "handle_node_failure" in out

    def test_svc014_commit_sanctioned_in_resolver(self):
        source = """\
            def _commit(self, pending):
                return self.controller.handle_node_failure(pending.logical)
            """
        assert "SVC014" not in codes(
            check_source(dedent(source), module="repro.service.resolver")
        )
        assert "SVC014" in codes(
            check_source(dedent(source), module="repro.service.service")
        )

    def test_svc014_cluster_mutation_outside_federation_fires(self):
        source = """\
            def chaos_step(self):
                self.cluster.fail_primary()
                self.cluster.restore_replica("c1")
            """
        diagnostics = [
            d
            for d in check_source(
                dedent(source), module="repro.service.replay"
            )
            if d.code == "SVC014"
        ]
        assert len(diagnostics) == 2
        assert "SVC014" not in codes(
            check_source(dedent(source), module="repro.service.federation")
        )

    def test_svc014_direct_epoch_write_fires(self):
        source = """\
            def depose(cluster):
                cluster.epoch += 1
                cluster._primary = None
            """
        diagnostics = [
            d
            for d in check_source(
                dedent(source), module="repro.service.service"
            )
            if d.code == "SVC014"
        ]
        assert len(diagnostics) == 2

    def test_svc014_scoped_to_service_modules(self):
        source = """\
            def run(controller, cluster):
                controller.handle_node_failure("A.0.0")
                cluster.fail_primary()
            """
        assert "SVC014" not in codes(
            check_source(dedent(source), module="repro.experiments.sweep")
        )

    def test_svc014_reading_cluster_state_is_fine(self):
        source = """\
            def metrics(self):
                return {
                    "epoch": self.cluster.epoch,
                    "elections": self.cluster.elections,
                }
            """
        assert "SVC014" not in codes(
            check_source(dedent(source), module="repro.service.service")
        )


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_noqa_suppresses_named_code(self, tmp_path, capsys):
        exit_code = lint_file(
            tmp_path,
            """\
            import random

            def jitter(seed):
                return random.uniform(0.0, 1.0)  # repro: noqa[RNG001]
            """,
        )
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_noqa_is_line_scoped(self):
        source = """\
            import random

            def jitter(seed):
                a = random.random()  # repro: noqa[RNG001]
                b = random.random()
                return a + b
            """
        diags = [d for d in check_source(dedent(source)) if d.code == "RNG001"]
        assert [d.line for d in diags] == [5]

    def test_noqa_suppresses_svc001(self):
        source = """\
            import time

            async def settle():
                time.sleep(0.01)  # repro: noqa[SVC001]
            """
        assert "SVC001" not in codes(
            check_source(dedent(source), module="repro.service.clock")
        )

    def test_noqa_wrong_code_does_not_suppress(self):
        source = """\
            import random

            def jitter(seed):
                return random.random()  # repro: noqa[DET001]
            """
        assert "RNG001" in codes(check_source(dedent(source)))

    def test_noqa_wildcard(self):
        source = """\
            import random

            def jitter(seed):
                return random.random()  # repro: noqa[*]
            """
        assert not codes(check_source(dedent(source)))

    def test_noqa_comma_separated_codes(self):
        source = """\
            import time

            def run_event(seed):
                return time.time()  # repro: noqa[DET001, RNG001]
            """
        assert not codes(check_source(dedent(source)))

    def test_noqa_on_closing_line_of_multiline_call(self):
        # The diagnostic anchors at the call's first line, but the
        # marker trails the closing paren three lines later — the
        # suppression span must cover the whole statement.
        source = """\
            import random

            def jitter(seed):
                return random.uniform(
                    0.0,
                    1.0,
                )  # repro: noqa[RNG001]
            """
        assert "RNG001" not in codes(check_source(dedent(source)))

    def test_noqa_on_middle_line_of_multiline_call(self):
        source = """\
            import random

            def jitter(seed):
                return random.uniform(
                    0.0,  # repro: noqa[RNG001]
                    1.0,
                )
            """
        assert "RNG001" not in codes(check_source(dedent(source)))

    def test_noqa_on_decorator_line_suppresses_def_diagnostic(self):
        # No shipped rule anchors at a def today, so pin the span
        # semantics with a throwaway (unregistered) rule that does.
        diags = check_source(
            dedent(self.DECORATED), rules=[self._DefAnchoredRule()]
        )
        assert codes(diags) == set()

    def test_noqa_inside_body_does_not_suppress_def_diagnostic(self):
        diags = check_source(
            dedent(self.DECORATED_BODY_NOQA), rules=[self._DefAnchoredRule()]
        )
        assert codes(diags) == {"TST001"}

    DECORATED = """\
        import functools

        @functools.cache  # repro: noqa[TST001]
        def compute():
            return 1
        """

    DECORATED_BODY_NOQA = """\
        import functools

        @functools.cache
        def compute():
            return 1  # repro: noqa[TST001]
        """

    class _DefAnchoredRule(Rule):
        code = "TST001"
        name = "test-def-anchor"
        rationale = "exercises decorator-aware suppression spans"

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.FunctionDef):
                    yield self.diagnostic(ctx, node, "def found")


# ----------------------------------------------------------------------
# engine + CLI behaviour
# ----------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_yields_syn001(self, tmp_path, capsys):
        exit_code = lint_file(tmp_path, "def broken(:\n")
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "SYN001" in out

    def test_diagnostics_sorted_by_location(self):
        source = """\
            import random

            def b(seed):
                return random.random()

            def a(seed):
                return random.random()
            """
        diags = check_source(dedent(source))
        assert diags == sorted(diags)

    def test_iter_source_files_skips_pycache(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        cached = tmp_path / "__pycache__"
        cached.mkdir()
        (cached / "skip.py").write_text("x = 2\n")
        found = iter_source_files([tmp_path])
        assert [p.name for p in found] == ["keep.py"]

    def test_render_format(self):
        source = "import random\nrandom.seed(7)\n"
        (diag,) = check_source(source, path="fx.py")
        assert diag.render() == f"fx.py:2:1: RNG001 {diag.message}"


class TestCli:
    def test_clean_repository_exits_zero(self, capsys):
        exit_code = main(["lint", str(SRC)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "clean" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        exit_code = main(["lint", str(tmp_path / "no-such-dir")])
        assert exit_code == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_flag_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--bogus-flag"])
        assert excinfo.value.code == 2

    def test_default_targets_resolve_from_repo_root(self, monkeypatch, capsys):
        repo_root = SRC.parent.parent
        assert (repo_root / DEFAULT_TARGETS[0]).is_dir()
        monkeypatch.chdir(repo_root)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_default_targets_absent_exits_two(self, monkeypatch, tmp_path, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint"]) == 2
        assert "default targets" in capsys.readouterr().err

    def test_problem_count_on_stderr(self, tmp_path, capsys):
        fixture = tmp_path / "two.py"
        fixture.write_text(
            "import random\na = random.random()\nb = random.random()\n"
        )
        exit_code = main(["lint", str(fixture)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "2 problem(s) found" in captured.err
        assert captured.out.count("RNG001") == 2

    def test_list_rules_exits_zero_and_names_every_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_CODES | PROJECT_CODES:
            assert code in out
        assert "[whole-program]" in out
