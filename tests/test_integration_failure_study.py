"""Integration: miniature versions of the paper's Figure 1 experiments.

These run the same pipelines as the benchmark harness, at k=8 scale, and
assert the paper's *qualitative* findings:

* coflow-level failure impact amplifies flow-level impact (Fig 1a/1b);
* affected fractions grow with the failure rate;
* under a single failure, rerouting leaves a CCT-slowdown tail, F10's
  slowdown is at least fat-tree's (dilation ⇒ extra congestion), and
  ShareBackup's slowdown is ≈ 1 (Fig 1c).
"""

import math

import pytest

from repro.analysis import affected_by_scenario, cct_slowdowns
from repro.core import ShareBackupNetwork, ShareBackupSimulation
from repro.failures import FailureInjector
from repro.routing import (
    F10LocalRerouteRouter,
    GlobalOptimalRerouteRouter,
)
from repro.simulation import FluidSimulation
from repro.topology import F10Tree, FatTree, NodeKind
from repro.workload import CoflowTraceGenerator, WorkloadConfig, materialize_hosts


def make_specs(tree, n_coflows=80, seed=11, duration=30.0):
    cfg = WorkloadConfig(
        num_racks=tree.num_racks,
        num_coflows=n_coflows,
        duration=duration,
        seed=seed,
    )
    return materialize_hosts(CoflowTraceGenerator(cfg).generate(), tree)


class TestAffectedSweep:
    def test_monotone_in_failure_rate_and_amplified(self):
        tree = FatTree(8, hosts_per_edge=8)
        specs = make_specs(tree, n_coflows=120)
        inj = FailureInjector(tree, seed=4)
        fracs = []
        for rate in (0.02, 0.05, 0.10, 0.20):
            counts = affected_by_scenario(tree, specs, inj.node_failures_at_rate(rate))
            fracs.append((counts.flow_fraction, counts.coflow_fraction))
            assert counts.coflow_fraction >= counts.flow_fraction
        flow_fracs = [f for f, _ in fracs]
        coflow_fracs = [c for _, c in fracs]
        assert flow_fracs == sorted(flow_fracs)
        assert coflow_fracs[-1] > coflow_fracs[0]

    def test_single_node_failure_touches_many_coflows(self):
        """Paper: a single node failure affects up to ~30% of coflows."""
        tree = FatTree(8, hosts_per_edge=8)
        specs = make_specs(tree, n_coflows=150)
        inj = FailureInjector(tree, seed=5)
        hits = [
            affected_by_scenario(tree, specs, inj.single_node_failure()).coflow_fraction
            for _ in range(10)
        ]
        assert max(hits) > 0.10
        assert all(h <= 1.0 for h in hits)

    def test_single_link_failure_affects_fewer_than_single_node(self):
        """Fig 1a vs 1b: one switch takes out k links' worth of paths, so a
        single node failure hurts more than a single link failure (paper:
        29.6% vs 17% of coflows)."""
        tree = FatTree(8, hosts_per_edge=8)
        specs = make_specs(tree, n_coflows=150)
        inj = FailureInjector(tree, seed=6)
        node_avg = sum(
            affected_by_scenario(tree, specs, inj.single_node_failure()).coflow_fraction
            for _ in range(12)
        ) / 12
        link_avg = sum(
            affected_by_scenario(tree, specs, inj.single_link_failure()).coflow_fraction
            for _ in range(12)
        ) / 12
        assert node_avg > link_avg


class TestCctSlowdownPipeline:
    def run_arch(self, tree, router, specs, scenario=None, horizon=600.0):
        sim = FluidSimulation(tree, router, specs, horizon=horizon)
        if scenario is not None:
            for node in scenario.nodes:
                sim.fail_node_at(0.0, node)
            for link in scenario.links:
                sim.fail_link_at(0.0, link)
        return sim.run()

    def test_fattree_failure_slows_affected_coflows(self):
        specs = make_specs(FatTree(8, hosts_per_edge=8), n_coflows=60, seed=21)
        base = self.run_arch(
            FatTree(8, hosts_per_edge=8),
            GlobalOptimalRerouteRouter(FatTree(8, hosts_per_edge=8)),
            specs,
        )
        # pick an agg failure (rerouting-recoverable)
        t2 = FatTree(8, hosts_per_edge=8)
        inj = FailureInjector(t2, seed=3, switch_kinds=(NodeKind.AGGREGATION,))
        scenario = inj.single_node_failure()
        failed = self.run_arch(t2, GlobalOptimalRerouteRouter(t2), specs, scenario)
        counts = affected_by_scenario(
            FatTree(8, hosts_per_edge=8), specs, scenario
        )
        report = cct_slowdowns(base, failed)
        vals = report.all_slowdowns()
        assert vals, "no comparable coflows"
        assert max(vals) >= 1.0
        # unaffected coflow CCTs can shift slightly via shared bottlenecks,
        # but nothing should *improve* materially
        assert min(vals) > 0.6

    def test_sharebackup_slowdown_is_unity(self):
        net = ShareBackupNetwork(8, n=1)
        specs = make_specs(net.logical, n_coflows=40, seed=31, duration=20.0)
        base = FluidSimulation(
            FatTree(8), GlobalOptimalRerouteRouter(FatTree(8)), specs, horizon=600.0
        ).run()
        sbs = ShareBackupSimulation(net, specs, horizon=600.0)
        sbs.inject_switch_failure(0.5, "A.0.0")
        failed = sbs.run()
        report = cct_slowdowns(base, failed)
        finite = [v for v in report.all_slowdowns() if math.isfinite(v)]
        assert finite
        # sub-ms recovery on second-scale coflows: slowdown ~ 1 everywhere
        assert max(finite) < 1.05

    def test_f10_dilated_flows_exist_under_core_failure(self):
        tree = F10Tree(8, hosts_per_edge=8)
        router = F10LocalRerouteRouter(tree)
        specs = make_specs(tree, n_coflows=60, seed=41)
        sim = FluidSimulation(tree, router, specs, horizon=600.0)
        inj = FailureInjector(tree, seed=7, switch_kinds=(NodeKind.CORE,))
        scenario = inj.single_node_failure()
        sim.fail_node_at(0.0, scenario.nodes[0])
        res = sim.run()
        # Flows arriving after the failure are pinned straight onto their
        # detour, so dilation shows as final_hops beyond the 6-hop optimum.
        dilated = [
            r
            for r in res.flows.values()
            if r.final_hops is not None and r.final_hops > 6
        ]
        affected = affected_by_scenario(F10Tree(8, hosts_per_edge=8), specs, scenario)
        if affected.flows_affected:
            assert dilated, "a core failure must produce 3-hop detours in F10"
            for r in dilated:
                assert r.final_hops == 8
