"""Rerouting baselines: global-optimal (fat-tree) and F10 local detours.

These tests pin down the behaviours the failure study depends on: global
rerouting never dilates paths; F10's local repair dilates by exactly two
hops when no equal-length escape exists; both reconnect whenever the
topology allows; neither can save a severed single-homed rack.
"""

import pytest

from repro.routing import (
    F10LocalRerouteRouter,
    GlobalOptimalRerouteRouter,
    StaticEcmpRouter,
)
from repro.topology import F10Tree, FatTree


def first_path(router, src, dst, label=1):
    p = router.initial_path(src, dst, label)
    assert p is not None
    return p


class TestGlobalOptimal:
    def test_initial_is_operational_ecmp(self, ft6):
        r = GlobalOptimalRerouteRouter(ft6)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        assert p.hops == 6 and p.is_operational(ft6)

    @pytest.mark.parametrize("hop_index", [2, 3, 4])  # agg, core, dst agg
    def test_node_failure_no_dilation(self, ft6, hop_index):
        r = GlobalOptimalRerouteRouter(ft6)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        ft6.fail_node(p.nodes[hop_index])
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.3.0.0", 1, p, {})
        assert new is not None
        assert new.hops == p.hops  # Table 3: fat-tree has no path dilation
        assert new.is_operational(ft6)

    def test_link_failure_reroutes(self, ft6):
        r = GlobalOptimalRerouteRouter(ft6)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        link = ft6.links_between(p.nodes[2], p.nodes[3])[0]
        ft6.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.3.0.0", 1, p, {})
        assert new.is_operational(ft6) and new.hops == 6

    def test_picks_least_loaded(self, ft4):
        r = GlobalOptimalRerouteRouter(ft4)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        ft4.fail_node(p.nodes[3])  # kill the core
        r.on_topology_change()
        # Load the core-adjacent segments of every surviving path except
        # one (segments near the hosts are shared by all candidates, so
        # loading whole paths would tie everything).
        survivors = r.selector.paths("H.0.0.0", "H.3.0.0", operational_only=True)
        target = survivors[-1]
        load = {}
        for path in survivors:
            if path.nodes == target.nodes:
                continue
            for seg in path.segments(ft4)[2:4]:  # agg->core, core->agg
                load[seg] = 50
        new = r.repath("H.0.0.0", "H.3.0.0", 1, p, load)
        assert new.nodes == target.nodes

    def test_edge_failure_unrecoverable(self, ft6):
        r = GlobalOptimalRerouteRouter(ft6)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        ft6.fail_node("E.3.0")  # destination rack's only switch
        r.on_topology_change()
        assert r.repath("H.0.0.0", "H.3.0.0", 1, p, {}) is None

    def test_upstream_repair_signature(self, ft6):
        """A downstream (core->agg) failure forces divergence at the source
        edge — the 'upstream repair' weakness of Table 3."""
        r = GlobalOptimalRerouteRouter(ft6)
        p = first_path(r, "H.0.0.0", "H.3.0.0")
        link = ft6.links_between(p.nodes[3], p.nodes[4])[0]  # core -> dst agg
        ft6.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.3.0.0", 1, p, {})
        assert new.is_operational(ft6)
        assert new.nodes[3] != p.nodes[3]  # a different core: chosen upstream


class TestF10Local:
    def make(self, k=6):
        tree = F10Tree(k)
        return tree, F10LocalRerouteRouter(tree)

    def test_same_path_kept_if_operational(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        assert r.repath("H.0.0.0", "H.1.0.0", 1, p, {}).nodes == p.nodes

    def test_up_hop_failure_equal_length(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        link = tree.links_between(p.nodes[1], p.nodes[2])[0]
        tree.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new.hops == 6  # sibling agg failover is free
        assert new.is_operational(tree)

    def test_core_failure_three_hop_detour(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        tree.fail_node(p.nodes[3])
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new.hops == p.hops + 2  # the paper's 3-hop local rerouting
        assert new.is_operational(tree)
        # detour stays local: path is unchanged up to the detecting agg
        assert new.nodes[:3] == p.nodes[:3]

    def test_agg_core_link_failure_detour(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        link = tree.links_between(p.nodes[2], p.nodes[3])[0]
        tree.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new.hops == 8 and new.is_operational(tree)
        assert new.nodes[:3] == p.nodes[:3]

    def test_dst_agg_failure_detour_via_third_pod(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        tree.fail_node(p.nodes[4])
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new.hops == 8 and new.is_operational(tree)
        # local: the core stays, the bounce happens below it
        assert new.nodes[:4] == p.nodes[:4]
        third_pod_agg = new.nodes[4]
        assert tree.nodes[third_pod_agg].pod not in (0, 1)

    def test_dst_agg_edge_link_failure_detour(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        link = tree.links_between(p.nodes[4], p.nodes[5])[0]
        tree.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new.hops == 8 and new.is_operational(tree)
        assert new.nodes[:5] == p.nodes[:5]  # repair below the dst agg

    def test_intra_pod_agg_failure_free(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.0.1.0")
        assert p.hops == 4
        tree.fail_node(p.nodes[2])
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.0.1.0", 1, p, {})
        assert new.hops == 4 and new.is_operational(tree)

    def test_intra_pod_down_link_detour(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.0.1.0")
        link = tree.links_between(p.nodes[2], p.nodes[3])[0]
        tree.fail_link(link.link_id)
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.0.1.0", 1, p, {})
        assert new.is_operational(tree)
        assert new.hops in (4, 6)

    def test_same_rack_edge_failure_unrecoverable(self):
        tree, r = self.make()
        p = first_path(r, "H.0.0.0", "H.0.0.1")
        tree.fail_node("E.0.0")
        r.on_topology_change()
        assert r.repath("H.0.0.0", "H.0.0.1", 1, p, {}) is None

    def test_stalled_flow_retries_fresh(self):
        tree, r = self.make()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, None, {})
        assert new is not None and new.is_operational(tree)

    def test_detour_spread_across_flows(self):
        """Different flows take different local detours (hash rotation)."""
        tree, r = self.make(8)
        paths = {}
        p = first_path(r, "H.0.0.0", "H.1.0.0", label=1)
        tree.fail_node(p.nodes[3])
        r.on_topology_change()
        for label in range(1, 60):
            # pre-failure pins (selection without the operational filter)
            pl = r.selector.select("H.0.0.0", "H.1.0.0", label)
            if pl is None or p.nodes[3] not in pl.nodes:
                continue
            d = r._local_detour(pl, label)
            if d is not None:
                paths[d.nodes] = paths.get(d.nodes, 0) + 1
        assert len(paths) >= 2

    def test_works_on_plain_fattree_too(self):
        tree = FatTree(6)
        r = F10LocalRerouteRouter(tree)
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        tree.fail_node(p.nodes[3])
        r.on_topology_change()
        new = r.repath("H.0.0.0", "H.1.0.0", 1, p, {})
        assert new is not None and new.is_operational(tree)


class TestStaticRouter:
    def test_pin_survives_and_resumes(self, ft4):
        r = StaticEcmpRouter(ft4)
        p = first_path(r, "H.0.0.0", "H.1.0.0")
        ft4.fail_node(p.nodes[3])
        r.on_topology_change()
        assert r.repath("H.0.0.0", "H.1.0.0", 1, p, {}) is None
        ft4.restore_node(p.nodes[3])
        r.on_topology_change()
        resumed = r.repath("H.0.0.0", "H.1.0.0", 1, None, {})
        assert resumed.nodes == p.nodes  # same deterministic pin

    def test_initial_ignores_failures(self, ft4):
        r = StaticEcmpRouter(ft4)
        p0 = first_path(r, "H.0.0.0", "H.1.0.0")
        ft4.fail_node(p0.nodes[3])
        r.on_topology_change()
        p1 = r.initial_path("H.0.0.0", "H.1.0.0", 1)
        assert p1.nodes == p0.nodes  # pre-failure pin, will stall
