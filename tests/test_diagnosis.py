"""Offline failure-diagnosis tests: every fault placement, partner
selection, and the independence-from-production invariant."""

import pytest

from repro.core import FailureDiagnosis, ShareBackupController, ShareBackupNetwork


def setup_link_failure(net, end_a, end_b, faulty):
    """Replace both sides as the controller would, then return the
    diagnosis inputs (physical suspects + idle pool)."""
    ctrl = ShareBackupController(net)
    ctrl.handle_link_failure(end_a, end_b, true_faulty_interfaces=faulty)
    return ctrl


class TestVerdicts:
    def test_faulty_a_side(self, sb6):
        ctrl = setup_link_failure(
            sb6,
            ("E.0.0", ("up", 0)),
            ("A.0.0", ("down", 0)),
            ((("E.0.0", ("up", 0))),),
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.condemned_devices() == ["E.0.0"]
        assert result.exonerated_devices() == ["A.0.0"]

    def test_faulty_b_side(self, sb6):
        ctrl = setup_link_failure(
            sb6,
            ("E.0.0", ("up", 0)),
            ("A.0.0", ("down", 0)),
            ((("A.0.0", ("down", 0))),),
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.condemned_devices() == ["A.0.0"]

    def test_both_faulty(self, sb6):
        ctrl = setup_link_failure(
            sb6,
            ("E.0.0", ("up", 0)),
            ("A.0.0", ("down", 0)),
            (("E.0.0", ("up", 0)), ("A.0.0", ("down", 0))),
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert sorted(result.condemned_devices()) == ["A.0.0", "E.0.0"]

    def test_cable_fault_exonerates_both(self, sb6):
        ctrl = setup_link_failure(
            sb6, ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), ()
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.condemned_devices() == []

    def test_core_agg_link(self, sb6):
        ctrl = setup_link_failure(
            sb6,
            ("A.1.0", ("up", 2)),
            ("C.2", ("pod", 1)),
            ((("C.2", ("pod", 1))),),
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.condemned_devices() == ["C.2"]
        assert result.exonerated_devices() == ["A.1.0"]

    def test_host_edge_link_blames_switch_first(self, sb6):
        """Hosts cannot be probed offline; the switch is assumed faulty."""
        ctrl = setup_link_failure(
            sb6, ("H.0.0.0", ("nic", 0)), ("E.0.0", ("host", 0)), ()
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.end_b is None  # host end not diagnosed
        # no switch fault injected: the edge switch tests healthy and the
        # workflow moves on to trouble-shooting the host
        assert result.end_a.healthy

    def test_multiple_interface_faults_on_suspect(self, sb6):
        """Suspect with several dead interfaces still gets condemned."""
        faults = tuple(("E.0.0", ("up", j)) for j in range(3))
        ctrl = setup_link_failure(
            sb6, ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), faults
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert "E.0.0" in result.condemned_devices()


class TestProbeMechanics:
    def test_three_configurations_attempted(self, sb6):
        ctrl = setup_link_failure(
            sb6, ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), ()
        )
        result = ctrl.run_pending_diagnoses()[0]
        configs = {p.configuration for p in result.end_a.probes}
        assert configs == {1, 2, 3}

    def test_ring_probe_reaches_own_interface(self, sb6):
        """Edge/agg suspects find their own interface on ring neighbours."""
        ctrl = setup_link_failure(
            sb6, ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)), ()
        )
        result = ctrl.run_pending_diagnoses()[0]
        ring_probes = [p for p in result.end_a.probes if p.configuration in (2, 3)]
        assert ring_probes
        assert all(p.partner[0] == "E.0.0" for p in ring_probes)

    def test_core_suspect_uses_other_group_partners(self, sb6):
        """Core suspects probe against idle devices of neighbouring groups."""
        ctrl = setup_link_failure(
            sb6,
            ("A.0.0", ("up", 0)),
            ("C.0", ("pod", 0)),
            ((("C.0", ("pod", 0))),),
        )
        result = ctrl.run_pending_diagnoses()[0]
        core_verdict = result.end_b
        assert core_verdict.device == "C.0"
        ring_probes = [p for p in core_verdict.probes if p.configuration in (2, 3)]
        for p in ring_probes:
            assert p.partner[0] != "C.0"  # its own interfaces live in other pods

    def test_diagnosis_does_not_disturb_production(self, sb6):
        """'completely independent of the functioning network'."""
        ctrl = setup_link_failure(
            sb6, ("E.0.0", ("up", 0)), ("A.0.0", ("down", 0)),
            ((("E.0.0", ("up", 0))),),
        )
        ctrl.run_pending_diagnoses()
        sb6.verify_fattree_equivalence()

    def test_faulty_partner_skipped_when_alternative_exists(self, sb6n2):
        """Partner selection prefers healthy idle interfaces."""
        # Make one spare's interface faulty; diagnosis should still
        # exonerate the healthy suspect by probing the other spare.
        sb6n2.interface_faults.add(("BA.1.0", ("down", 0)))
        ctrl = setup_link_failure(
            sb6n2,
            ("E.1.0", ("up", 0)),
            ("A.1.0", ("down", 0)),
            ((("A.1.0", ("down", 0))),),
        )
        result = ctrl.run_pending_diagnoses()[0]
        assert result.end_a.healthy

    def test_diagnosis_object_reusable(self, sb6):
        diag = FailureDiagnosis(sb6)
        verdict = diag.diagnose_link(
            ("E.0.0", ("up", 0)), None, idle_devices={"E.0.0", "BE.0.0"}
        )
        assert verdict.end_a.device == "E.0.0"
        assert verdict.end_b is None
