"""Fluid-simulation engine scenarios with hand-computable outcomes."""

import pytest

from repro.routing import (
    F10LocalRerouteRouter,
    GlobalOptimalRerouteRouter,
    StaticEcmpRouter,
)
from repro.simulation import CoflowSpec, FlowSpec, FluidSimulation
from repro.topology import FatTree

GBIT = 1.25e8  # bytes in one Gbit


def coflow(cid, arrival, *flows):
    return CoflowSpec(cid, arrival, tuple(flows))


class TestSpecValidation:
    def test_flow_rejects_zero_size(self):
        with pytest.raises(ValueError):
            FlowSpec(1, 1, "a", "b", 0)

    def test_flow_rejects_self_loop(self):
        with pytest.raises(ValueError):
            FlowSpec(1, 1, "a", "a", 10)

    def test_coflow_rejects_empty(self):
        with pytest.raises(ValueError):
            CoflowSpec(1, 0.0, ())

    def test_coflow_rejects_foreign_flow(self):
        with pytest.raises(ValueError):
            CoflowSpec(1, 0.0, (FlowSpec(1, 2, "a", "b", 10),))

    def test_coflow_width_and_bytes(self):
        c = coflow(1, 0.0, FlowSpec(1, 1, "a", "b", 10), FlowSpec(2, 1, "c", "d", 20))
        assert c.width == 2 and c.total_bytes == 30


class TestSingleFlow:
    def test_line_rate_completion(self):
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT))],
        )
        res = sim.run()
        assert res.flows[1].finish == pytest.approx(1.0)  # 10 Gbit at 10 Gbps
        assert res.cct(1) == pytest.approx(1.0)

    def test_delayed_arrival(self):
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [coflow(1, 2.5, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT))],
        )
        res = sim.run()
        assert res.flows[1].finish == pytest.approx(3.5)
        assert res.cct(1) == pytest.approx(1.0)  # CCT excludes waiting time

    def test_host_link_is_the_bottleneck(self):
        t = FatTree(4)
        # two flows out of the same host: each gets 5 Gbps
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [
                coflow(
                    1,
                    0.0,
                    FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),
                    FlowSpec(2, 1, "H.0.0.0", "H.2.0.0", 10 * GBIT),
                )
            ],
        )
        res = sim.run()
        assert res.cct(1) == pytest.approx(2.0)

    def test_work_conservation_after_departure(self):
        """Flow 2 is half the size; after it leaves, flow 1 speeds up:
        both share one host link: rates 5,5; flow2 (5Gbit) done at 1.0;
        flow1 then runs at 10 -> remaining 5Gbit takes 0.5 -> 1.5s."""
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [
                coflow(
                    1,
                    0.0,
                    FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),
                    FlowSpec(2, 1, "H.0.0.0", "H.2.0.0", 5 * GBIT),
                )
            ],
        )
        res = sim.run()
        assert res.flows[2].finish == pytest.approx(1.0)
        assert res.flows[1].finish == pytest.approx(1.5)


class TestFailuresInEngine:
    def test_global_reroute_transparent_capacity(self):
        t = FatTree(4)
        r = GlobalOptimalRerouteRouter(t)
        sim = FluidSimulation(
            t, r, [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 100 * GBIT))]
        )
        p = r.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(5.0, p.nodes[3])
        res = sim.run()
        # rerouting is instant in final-state methodology: no time lost
        assert res.flows[1].finish == pytest.approx(10.0)
        assert res.flows[1].reroutes == 1
        assert res.flows[1].initial_hops == res.flows[1].final_hops == 6

    def test_static_stall_and_resume(self):
        t = FatTree(4)
        r = StaticEcmpRouter(t)
        sim = FluidSimulation(
            t, r, [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 100 * GBIT))]
        )
        p = r.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(2.0, p.nodes[2])
        sim.restore_node_at(7.0, p.nodes[2])
        res = sim.run()
        assert res.flows[1].finish == pytest.approx(15.0)
        assert res.flows[1].stalled_time == pytest.approx(5.0)
        assert res.flows[1].reroutes == 0

    def test_horizon_cuts_unfinished(self):
        t = FatTree(4)
        r = StaticEcmpRouter(t)
        sim = FluidSimulation(
            t,
            r,
            [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 100 * GBIT))],
            horizon=4.0,
        )
        p = r.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(2.0, p.nodes[2])
        res = sim.run()
        assert res.flows[1].finish is None
        assert not res.coflows[1].completed
        assert res.coflows[1].cct is None
        assert res.flows[1].stalled_time == pytest.approx(2.0)

    def test_f10_dilation_recorded(self):
        t = FatTree(6)
        r = F10LocalRerouteRouter(t)
        sim = FluidSimulation(
            t, r, [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 100 * GBIT))]
        )
        p = r.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(5.0, p.nodes[3])  # core dies -> 3-hop detour
        res = sim.run()
        rec = res.flows[1]
        assert rec.dilated
        assert rec.final_hops == rec.initial_hops + 2
        assert rec.finish == pytest.approx(10.0)  # capacity unchanged for 1 flow

    def test_failure_before_arrival_stalls_at_start(self):
        t = FatTree(4)
        r = StaticEcmpRouter(t)
        sim = FluidSimulation(
            t,
            r,
            [coflow(1, 1.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT))],
            horizon=50.0,
        )
        p = r.initial_path("H.0.0.0", "H.3.0.0", 1)
        sim.fail_node_at(0.0, p.nodes[3])
        sim.restore_node_at(11.0, p.nodes[3])
        res = sim.run()
        assert res.flows[1].finish == pytest.approx(12.0)
        assert res.flows[1].stalled_time == pytest.approx(10.0)

    def test_edge_failure_disconnects_under_any_router(self):
        for router_cls in (GlobalOptimalRerouteRouter, F10LocalRerouteRouter):
            t = FatTree(4)
            r = router_cls(t)
            sim = FluidSimulation(
                t,
                r,
                [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT))],
                horizon=30.0,
            )
            sim.fail_node_at(0.5, "E.3.0")
            res = sim.run()
            assert res.flows[1].finish is None, router_cls.__name__


class TestCoflowSemantics:
    def test_cct_is_slowest_flow(self):
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [
                coflow(
                    1,
                    0.0,
                    FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT),
                    FlowSpec(2, 1, "H.1.0.0", "H.2.0.0", 30 * GBIT),
                )
            ],
        )
        res = sim.run()
        assert res.cct(1) == pytest.approx(3.0)

    def test_multiple_coflows_tracked_independently(self):
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [
                coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", 10 * GBIT)),
                coflow(2, 0.5, FlowSpec(2, 2, "H.1.0.0", "H.2.0.0", 10 * GBIT)),
            ],
        )
        res = sim.run()
        assert res.all_completed
        assert res.cct(1) == pytest.approx(1.0)
        assert res.cct(2) == pytest.approx(1.0)

    def test_result_bookkeeping(self):
        t = FatTree(4)
        sim = FluidSimulation(
            t,
            GlobalOptimalRerouteRouter(t),
            [coflow(1, 0.0, FlowSpec(1, 1, "H.0.0.0", "H.3.0.0", GBIT))],
        )
        res = sim.run()
        assert len(res.completed_coflows()) == 1
        assert res.unfinished_coflows() == []
        assert res.events_processed >= 1
        assert res.reallocations >= 1

    def test_deterministic_across_runs(self):
        def run_once():
            t = FatTree(4)
            flows = [
                FlowSpec(i, 1, f"H.0.{i % 2}.{i % 2}", f"H.3.{i % 2}.0", (i + 1) * GBIT)
                for i in range(1, 6)
            ]
            sim = FluidSimulation(
                t, GlobalOptimalRerouteRouter(t), [CoflowSpec(1, 0.0, tuple(flows))]
            )
            res = sim.run()
            return tuple(sorted((fid, r.finish) for fid, r in res.flows.items()))

        assert run_once() == run_once()
