"""Trace I/O tests: coflow-benchmark format parsing and JSON round-trips."""

import pytest

from repro.workload import CoflowTraceGenerator, WorkloadConfig
from repro.workload.traceio import (
    TraceFormatError,
    load_coflow_benchmark,
    load_trace,
    save_coflow_benchmark,
    save_trace,
)

SAMPLE = """\
150 3
1 0 2 10 20 2 30:100.0 40:50.0
2 1500 1 5 1 6:10.0
3 2000 2 7 8 1 7:30.0
"""


class TestCoflowBenchmarkFormat:
    def test_parse_sample(self, tmp_path):
        path = tmp_path / "fb.txt"
        path.write_text(SAMPLE)
        num_racks, trace = load_coflow_benchmark(path)
        assert num_racks == 150
        assert len(trace) == 3
        c1 = trace[0]
        assert c1.coflow_id == 1 and c1.arrival == 0.0
        # 2 mappers x 2 reducers = 4 flows
        assert c1.width == 4
        assert c1.total_bytes == pytest.approx(150e6)

    def test_reducer_bytes_split_across_mappers(self, tmp_path):
        path = tmp_path / "fb.txt"
        path.write_text(SAMPLE)
        _, trace = load_coflow_benchmark(path)
        sizes = {
            (f.src_rack, f.dst_rack): f.size_bytes for f in trace[0].flows
        }
        assert sizes[(10, 30)] == pytest.approx(50e6)  # 100 MB over 2 mappers
        assert sizes[(20, 40)] == pytest.approx(25e6)

    def test_arrival_milliseconds_converted(self, tmp_path):
        path = tmp_path / "fb.txt"
        path.write_text(SAMPLE)
        _, trace = load_coflow_benchmark(path)
        assert trace[1].arrival == pytest.approx(1.5)

    def test_rack_local_flows_dropped(self, tmp_path):
        """Coflow 3 has reducer rack 7 == one of its mapper racks."""
        path = tmp_path / "fb.txt"
        path.write_text(SAMPLE)
        _, trace = load_coflow_benchmark(path)
        c3 = trace[2]
        assert all(f.src_rack != f.dst_rack for f in c3.flows)
        assert c3.width == 1  # only the 8 -> 7 flow survives

    def test_one_based_rack_ids_detected(self, tmp_path):
        path = tmp_path / "fb.txt"
        path.write_text("4 1\n1 0 1 4 1 1:10.0\n")  # rack 4 in a 4-rack file
        num_racks, trace = load_coflow_benchmark(path)
        assert num_racks == 4
        flow = trace[0].flows[0]
        assert flow.src_rack == 3 and flow.dst_rack == 0  # shifted to 0-based

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "150\n",
            "150 1\n1 0 2 10 2 30:1.0\n",  # mapper count lies
            "150 1\n1 0 1 10 1 30-1.0\n",  # bad reducer separator
            "150 2\n1 0 1 10 1 30:1.0\n",  # fewer coflows than promised
            "150 1\n1 0 0 0 0\n",  # no endpoints
        ],
    )
    def test_malformed_rejected(self, tmp_path, text):
        path = tmp_path / "bad.txt"
        path.write_text(text)
        with pytest.raises(TraceFormatError):
            load_coflow_benchmark(path)

    def test_roundtrip_through_benchmark_format(self, tmp_path):
        cfg = WorkloadConfig(num_racks=32, num_coflows=40, duration=60, seed=3)
        trace = CoflowTraceGenerator(cfg).generate()
        path = tmp_path / "out.txt"
        save_coflow_benchmark(path, 32, trace)
        num_racks, loaded = load_coflow_benchmark(path)
        assert num_racks == 32
        assert len(loaded) == len(trace)
        for orig, back in zip(trace, loaded):
            assert back.coflow_id == orig.coflow_id
            assert back.arrival == pytest.approx(orig.arrival, abs=1e-3)
            assert back.total_bytes == pytest.approx(orig.total_bytes, rel=1e-3)
            assert {f.src_rack for f in back.flows} == {
                f.src_rack for f in orig.flows
            }
            assert {f.dst_rack for f in back.flows} == {
                f.dst_rack for f in orig.flows
            }


class TestJsonForm:
    def test_lossless_roundtrip(self, tmp_path):
        cfg = WorkloadConfig(num_racks=16, num_coflows=25, duration=30, seed=5)
        trace = CoflowTraceGenerator(cfg).generate()
        path = tmp_path / "trace.json"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == trace  # dataclass equality: exact round-trip

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(TraceFormatError):
            load_trace(path)
