"""Path enumeration and ECMP selection tests."""

import pytest

from repro.routing import EcmpSelector, Path, enumerate_paths, flow_hash
from repro.routing.paths import DirectedSegment, enumerate_edge_paths
from repro.topology import F10Tree, FatTree


class TestEnumeration:
    def test_same_edge_single_path(self, ft4):
        paths = enumerate_paths(ft4, "H.0.0.0", "H.0.0.1")
        assert len(paths) == 1 and paths[0].hops == 2

    def test_intra_pod_count(self, ft6):
        paths = enumerate_paths(ft6, "H.0.0.0", "H.0.1.0")
        assert len(paths) == 3  # one per aggregation switch
        assert all(p.hops == 4 for p in paths)

    def test_inter_pod_count(self, ft6):
        paths = enumerate_paths(ft6, "H.0.0.0", "H.5.2.2")
        assert len(paths) == 9  # (k/2)^2 = one per core
        assert all(p.hops == 6 for p in paths)

    def test_inter_pod_paths_cover_all_cores(self, ft6):
        paths = enumerate_paths(ft6, "H.0.0.0", "H.5.2.2")
        cores = {p.nodes[3] for p in paths}
        assert cores == set(ft6.core_switches())

    def test_identical_hosts_rejected(self, ft4):
        with pytest.raises(ValueError):
            enumerate_paths(ft4, "H.0.0.0", "H.0.0.0")

    def test_f10_enumeration_matches_wiring(self):
        f10 = F10Tree(6)
        paths = enumerate_paths(f10, "H.0.0.0", "H.1.0.0")
        assert len(paths) == 9
        for p in paths:
            agg, core, dst_agg = p.nodes[2], p.nodes[3], p.nodes[4]
            assert core in set(f10.neighbors(agg))
            assert dst_agg in set(f10.neighbors(core))

    def test_operational_filter_drops_failed_core(self, ft4):
        ft4.fail_node("C.0")
        paths = enumerate_paths(ft4, "H.0.0.0", "H.1.0.0", operational_only=True)
        assert len(paths) == 3
        assert all("C.0" not in p.nodes for p in paths)

    def test_operational_filter_drops_failed_link(self, ft4):
        link = ft4.links_between("E.0.0", "A.0.0")[0]
        ft4.fail_link(link.link_id)
        paths = enumerate_paths(ft4, "H.0.0.0", "H.1.0.0", operational_only=True)
        assert all(p.nodes[2] != "A.0.0" for p in paths)
        assert len(paths) == 2

    def test_operational_filter_dead_host_link(self, ft4):
        link = ft4.links_between("H.0.0.0", "E.0.0")[0]
        ft4.fail_link(link.link_id)
        assert enumerate_paths(ft4, "H.0.0.0", "H.1.0.0", operational_only=True) == []

    def test_edge_paths_identity(self, ft4):
        assert enumerate_edge_paths(ft4, "E.0.0", "E.0.0") == [("E.0.0",)]


class TestPathObject:
    def test_segments_directions(self, ft4):
        p = enumerate_paths(ft4, "H.0.0.0", "H.0.0.1")[0]
        segs = p.segments(ft4)
        assert len(segs) == 2
        assert isinstance(segs[0], DirectedSegment)
        # same physical link traversed in both directions on reverse path
        rev = Path(tuple(reversed(p.nodes)))
        rsegs = rev.segments(ft4)
        assert rsegs[0].link_id == segs[1].link_id
        assert rsegs[0].forward != segs[1].forward

    def test_uses_node(self, ft4):
        p = enumerate_paths(ft4, "H.0.0.0", "H.1.0.0")[0]
        assert p.uses_node(p.nodes[3])
        assert not p.uses_node("C.9999")

    def test_uses_link(self, ft4):
        p = enumerate_paths(ft4, "H.0.0.0", "H.0.0.1")[0]
        link = ft4.links_between("H.0.0.0", "E.0.0")[0]
        assert p.uses_link(ft4, link.link_id)
        other = ft4.links_between("H.1.0.0", "E.1.0")[0]
        assert not p.uses_link(ft4, other.link_id)

    def test_is_operational_tracks_failures(self, ft4):
        p = enumerate_paths(ft4, "H.0.0.0", "H.1.0.0")[0]
        assert p.is_operational(ft4)
        ft4.fail_node(p.nodes[3])
        assert not p.is_operational(ft4)


class TestEcmpSelector:
    def test_deterministic(self, ft6):
        s1, s2 = EcmpSelector(ft6), EcmpSelector(ft6)
        for label in range(20):
            a = s1.select("H.0.0.0", "H.3.1.1", label)
            b = s2.select("H.0.0.0", "H.3.1.1", label)
            assert a.nodes == b.nodes

    def test_spreads_over_paths(self, ft8):
        s = EcmpSelector(ft8)
        cores = {
            s.select("H.0.0.0", "H.5.1.1", label).nodes[3] for label in range(200)
        }
        assert len(cores) >= 12  # of 16: hash spread should hit most cores

    def test_flow_hash_stable(self):
        assert flow_hash("a", 1) == flow_hash("a", 1)
        assert flow_hash("a", 1) != flow_hash("a", 2)

    def test_operational_only_avoids_failures(self, ft6):
        s = EcmpSelector(ft6)
        ft6.fail_node("C.0")
        for label in range(30):
            p = s.select("H.0.0.0", "H.3.0.0", label, operational_only=True)
            assert "C.0" not in p.nodes

    def test_invalidate_refreshes_operational_cache(self, ft6):
        s = EcmpSelector(ft6)
        before = len(s.paths("H.0.0.0", "H.3.0.0", operational_only=True))
        ft6.fail_node("C.0")
        s.invalidate()
        after = len(s.paths("H.0.0.0", "H.3.0.0", operational_only=True))
        assert before == 9 and after == 8

    def test_invalidate_keeps_static_cache(self, ft6):
        s = EcmpSelector(ft6)
        s.paths("H.0.0.0", "H.3.0.0")  # static view
        ft6.fail_node("C.0")
        s.invalidate()
        assert len(s.paths("H.0.0.0", "H.3.0.0")) == 9  # unaffected by failures

    def test_none_when_disconnected(self, ft4):
        link = ft4.links_between("H.0.0.0", "E.0.0")[0]
        ft4.fail_link(link.link_id)
        s = EcmpSelector(ft4)
        assert s.select("H.0.0.0", "H.1.0.0", 1, operational_only=True) is None

    def test_select_from_candidates(self, ft4):
        paths = enumerate_paths(ft4, "H.0.0.0", "H.1.0.0")
        pick = EcmpSelector.select_from(paths, 5)
        assert pick in paths
        assert EcmpSelector.select_from([], 5) is None
