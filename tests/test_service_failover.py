"""Crash-tolerant takeover: the decision stream survives the primary.

The acceptance theorem of the federation work: crash the primary *in
the middle of a resolver batch* and the post-takeover decision stream
is identical to the uncrashed run — same decision identities, same
outcomes, same order within each failure group — differing only in the
fencing-epoch stamps.  Alongside it, the two safety halves:

* **at-most-once** — replaying the write-ahead log (takeover, restart,
  or both) never commits a ``(failure_group, decision_seq)`` twice;
* **fencing** — the deposed primary's late writes are *rejected*, and
  the rejection is auditable at every layer (cluster audit list,
  service event record, WAL fence record).
"""

import asyncio

from repro.chaos.faults import ChaosFault, FaultSchedule
from repro.chaos.harness import ChaosHarness, ChaosScenarioConfig
from repro.core.controller import ControllerCluster, ShareBackupController
from repro.core.sharebackup import ShareBackupNetwork
from repro.rng import derive_seed
from repro.service import (
    DecisionWAL,
    RecoveryService,
    ServiceConfig,
    ServiceReplay,
    VirtualClock,
    decision_key,
    report_decision_key,
)
from repro.service.resolver import PendingFailure


def storm_victims(k, n, count=5):
    """``count`` distinct agg/core switches spread across failure groups."""
    net = ShareBackupNetwork(k, n)
    tree = net.logical
    victims = [tree.agg_switches(pod)[0] for pod in range(k)]
    victims.extend(tree.core_switches())
    return victims[:count]


def simultaneous_storm(seed, victims, crash_after=None):
    """Every victim dies at the same instant → one resolver batch.

    With ``crash_after`` the primary is armed to crash mid-batch, after
    that many decisions have been committed.
    """
    faults = [
        ChaosFault(0.01, "silent-node-failure", victim) for victim in victims
    ]
    if crash_after is not None:
        faults.append(
            ChaosFault(0.0, "service-primary-crash", "primary",
                       count=crash_after)
        )
    return FaultSchedule(seed=seed, faults=tuple(faults))


def grouped_keys(decisions):
    """Per-failure-group decision identities, in commit order."""
    streams = {}
    for decision in decisions:
        streams.setdefault(decision.group, []).append(decision_key(decision))
    return streams


class TestMidBatchTakeover:
    def run_pair(self, crash_after=2):
        config = ChaosScenarioConfig(k=6, n=1, seed=3, duration=0.3)
        victims = storm_victims(6, 1)
        baseline = ServiceReplay(
            config, schedule=simultaneous_storm(3, victims)
        )
        crashed = ServiceReplay(
            config,
            schedule=simultaneous_storm(3, victims, crash_after=crash_after),
        )
        return baseline, baseline.run(), crashed, crashed.run()

    def test_decision_stream_identical_modulo_epoch(self):
        _, a, replay_b, b = self.run_pair()
        # The crash really happened, mid-batch, and fenced the rest of
        # the in-flight batch.
        assert b.primary_crashes == 1
        assert b.fencing_rejections >= 1
        assert a.elections == 1 and b.elections == 2
        assert a.final_epoch == 1 and b.final_epoch == 2
        # The theorem: identical decisions (identity, outcome, and order
        # within each failure group) — nothing lost, nothing doubled.
        assert len(b.decisions) == len(a.decisions) == 5
        assert b.decision_keys() == a.decision_keys()
        assert grouped_keys(b.decisions) == grouped_keys(a.decisions)
        assert b.errors == a.errors == 0
        # ...modulo the epoch stamps: the baseline commits everything
        # under the first epoch, the crashed run finishes under the
        # successor's.
        assert {d.epoch for d in a.decisions} == {1}
        assert {d.epoch for d in b.decisions} == {1, 2}
        # Epoch is deliberately not part of the decision identity.
        assert all(
            len(decision_key(d)) == 6 for d in b.decisions
        )

    def test_deposed_primary_rejection_is_audited(self):
        _, _, replay, outcome = self.run_pair()
        cluster = replay.cluster
        service = replay.service
        # Layer 1: the cluster's own fencing audit.
        assert cluster.fencing_rejections
        for record in cluster.fencing_rejections:
            assert record["type"] == "fencing-rejected"
            assert record["holder_epoch"] < record["current_epoch"]
        # Layer 2: the service event record (published on the bus too).
        assert len(service.fencing_rejections) == outcome.fencing_rejections
        for record in service.fencing_rejections:
            assert record["type"] == "fencing-rejected"
            assert record["holder_epoch"] == 1
            assert record["current_epoch"] == 2
        # Layer 3: the WAL's durable fence records, one per rejection.
        assert len(service.wal.fences) == outcome.fencing_rejections
        for fence in service.wal.fences:
            assert fence.epoch == 1  # the epoch the deposed writer held
        # And the fenced work was still decided — by the successor.
        assert service.wal.incomplete() == []
        assert len(service.wal.committed_keys()) == len(outcome.decisions)

    def test_crash_depth_does_not_change_the_stream(self):
        # Wherever in the batch the crash lands, the stream converges.
        reference = None
        for crash_after in (1, 3, 4):
            _, a, _, b = self.run_pair(crash_after=crash_after)
            assert b.decision_keys() == a.decision_keys()
            assert b.primary_crashes == 1
            if reference is None:
                reference = b.decision_keys()
            assert b.decision_keys() == reference

    def test_takeover_replay_is_idempotent(self):
        # The successor resumes via the WAL; the commit-time guard makes
        # duplicate resubmissions (fence path + takeover path both
        # requeue) collapse to one commit per key.
        _, a, replay, b = self.run_pair()
        wal = replay.service.wal
        keys = wal.committed_keys()
        assert len(keys) == len(set(keys)) == len(b.decisions)
        # A second recovery pass over the same log finds nothing to do.
        assert wal.incomplete() == []


class TestRestartTakeover:
    """Cold-start recovery: a new process over an existing WAL file."""

    @staticmethod
    def build_service(path, seed=11):
        net = ShareBackupNetwork(4, 1)
        controller = ShareBackupController(
            net,
            degrade_to_reroute=True,
            rng=derive_seed(seed, "controller"),
        )
        cluster = ControllerCluster(controller=controller)
        clock = VirtualClock()
        service = RecoveryService(
            controller,
            clock=clock,
            config=ServiceConfig(scan_interval=3600.0),
            cluster=cluster,
            wal=DecisionWAL(path),
        )
        return service, clock

    @staticmethod
    def run_service(path, seed=11):
        async def scenario():
            service, clock = TestRestartTakeover.build_service(path, seed)
            await service.start()
            await clock.run_all(1.0)
            decisions = list(service.decisions)
            await service.stop()
            service.wal.close()
            return decisions, service

        return asyncio.run(scenario())

    def test_restart_resumes_incomplete_intents_once(self, tmp_path):
        path = tmp_path / "decisions.wal"
        # A previous incarnation logged three intents and crashed before
        # committing any of them.
        net = ShareBackupNetwork(4, 1)
        tree = net.logical
        with DecisionWAL(path) as wal:
            for index, victim in enumerate(
                [tree.agg_switches(0)[0], tree.agg_switches(1)[0],
                 tree.core_switches()[0]]
            ):
                pending = PendingFailure(
                    kind="node", logical=victim, detected_at=0.0,
                    source="scan",
                )
                group = net.group_of(victim).group_id
                wal.append_intent(group, 0, 1, pending.to_payload())
        # First restart: the cold-start takeover resumes all three.
        decisions, service = self.run_service(path)
        assert len(decisions) == 3
        assert {d.logical for d in decisions} == {
            tree.agg_switches(0)[0], tree.agg_switches(1)[0],
            tree.core_switches()[0],
        }
        assert service.wal.incomplete() == []
        # Second restart over the same log: nothing left to resume —
        # recovery twice yields zero duplicate commits.
        again, service = self.run_service(path)
        assert again == []
        assert len(service.wal.committed_keys()) == 3

    def test_unwritten_wal_restart_is_a_noop(self, tmp_path):
        decisions, service = self.run_service(tmp_path / "fresh.wal")
        assert decisions == []
        assert service.wal.stats()["records"] == 0


class TestControllerStormProfile:
    def test_storm_ab_identity_and_churn(self):
        # The crash-heavy generated profile: repeated primary crashes
        # (with restores), a mid-batch service-primary-crash, and a
        # heartbeat-loss window.  Decision identity with the call-driven
        # harness must survive all of it, and the churn must be real.
        config = ChaosScenarioConfig(
            k=4, n=1, seed=5, duration=0.2, profile="controller-storm"
        )
        harness = ChaosHarness(config)
        harness.run()
        ab_keys = tuple(
            sorted(report_decision_key(r) for r in harness.sim.reports)
        )
        replay = ServiceReplay(config)
        outcome = replay.run()
        assert outcome.decision_keys() == ab_keys
        assert outcome.decisions, "storm produced no decisions at all"
        assert outcome.errors == 0
        assert outcome.elections >= 3  # initial + crash churn
        assert outcome.final_epoch == outcome.elections
        assert outcome.primary_crashes >= 1  # the armed mid-batch crash
        # Determinism: a pure function of (config, schedule).
        assert ServiceReplay(config).run().to_dict() == outcome.to_dict()
