"""Tests for the baseline topology variants: F10 AB fat-tree, Aspen-style
duplicated tree, and 1:1 backup."""

import pytest

from repro.topology import (
    AspenTree,
    F10Tree,
    NodeKind,
    OneToOneBackupTree,
    is_shadow,
    shadow_name,
    validate_fattree,
)


class TestF10:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_valid_clos(self, k):
        validate_fattree(F10Tree(k))

    def test_pod_types_alternate(self):
        assert F10Tree.pod_type(0) == "A"
        assert F10Tree.pod_type(1) == "B"
        assert F10Tree.pod_type(2) == "A"

    def test_a_pod_uses_row_wiring(self, f10_6):
        # pod 0 (type A): agg i -> cores of row i
        cores = sorted(
            n for n in f10_6.neighbors("A.0.1") if n.startswith("C")
        )
        assert cores == ["C.3", "C.4", "C.5"]

    def test_b_pod_uses_column_wiring(self, f10_6):
        # pod 1 (type B): agg i -> cores of column i
        cores = sorted(
            (n for n in f10_6.neighbors("A.1.1") if n.startswith("C")),
            key=lambda s: int(s.split(".")[1]),
        )
        assert cores == ["C.1", "C.4", "C.7"]

    def test_ab_parent_sets_differ(self, f10_6):
        a_parents = {n for n in f10_6.neighbors("A.0.0") if n.startswith("C")}
        b_parents = {n for n in f10_6.neighbors("A.1.0") if n.startswith("C")}
        assert a_parents != b_parents
        # ...but they overlap in exactly one core (row 0 ∩ column 0)
        assert len(a_parents & b_parents) == 1

    def test_agg_of_core_inverse(self, f10_6):
        for pod in range(6):
            for a in range(3):
                for port in range(3):
                    core = f10_6.core_of_pod(pod, a, port)
                    assert f10_6.agg_of_core(core, pod) == a

    def test_core_of_requires_wiring_context(self, f10_6):
        with pytest.raises(RuntimeError):
            f10_6.core_of(0, 0)


class TestAspen:
    def test_valid_with_parallel_links(self):
        validate_fattree(AspenTree(8), allow_parallel=True)

    def test_rejects_k_not_divisible_by_4(self):
        with pytest.raises(ValueError):
            AspenTree(6)

    def test_duplicated_links(self):
        t = AspenTree(8)
        # agg 0 reaches cores 0 and 2 of its row, twice each
        assert len(t.links_between("A.0.0", "C.0")) == 2
        assert len(t.links_between("A.0.0", "C.2")) == 2
        assert len(t.links_between("A.0.0", "C.1")) == 0

    def test_port_count_preserved(self):
        t = AspenTree(8)
        assert t.degree("A.0.0") == 8  # k ports, as in plain fat-tree

    def test_detached_cores_exist(self):
        t = AspenTree(8)
        assert t.degree("C.1") == 0
        assert t.degree("C.0") == 16  # 2 links x 8 pods

    def test_local_failover_no_dilation(self):
        """Losing one of a duplicated pair leaves an equal-length path."""
        t = AspenTree(8)
        pair = t.links_between("A.0.0", "C.0")
        t.fail_link(pair[0].link_id)
        assert t.operational_links_between("A.0.0", "C.0")

    def test_duplicated_cores_listing(self):
        t = AspenTree(8)
        assert t.duplicated_cores(1) == [4, 6]
        assert t.is_attached_core(4) and not t.is_attached_core(5)


class TestOneToOne:
    def test_shadow_naming(self):
        assert shadow_name("E.0.0") == "S1.E.0.0"
        assert is_shadow("S1.E.0.0")
        assert not is_shadow("E.0.0")

    def test_inventory_doubles_switches(self):
        t = OneToOneBackupTree(4)
        switches = [n for n in t.nodes.values() if n.kind.is_packet_switch]
        assert len(switches) == 2 * (8 + 8 + 4)

    def test_hosts_dual_homed(self):
        t = OneToOneBackupTree(4)
        assert t.degree("H.0.0.0") == 2
        assert sorted(t.neighbors("H.0.0.0")) == ["E.0.0", "S1.E.0.0"]

    def test_switch_links_meshed_4x(self):
        t = OneToOneBackupTree(4)
        combos = [
            ("E.0.0", "A.0.0"),
            ("E.0.0", "S1.A.0.0"),
            ("S1.E.0.0", "A.0.0"),
            ("S1.E.0.0", "S1.A.0.0"),
        ]
        for a, b in combos:
            assert t.links_between(a, b), f"missing mesh link {a}--{b}"

    def test_active_instance_failover(self):
        t = OneToOneBackupTree(4)
        assert t.active_instance("E.0.0") == "E.0.0"
        t.fail_node("E.0.0")
        assert t.active_instance("E.0.0") == "S1.E.0.0"
        t.fail_node("S1.E.0.0")
        assert t.active_instance("E.0.0") is None

    def test_logical_path_survives_any_single_switch_failure(self):
        t = OneToOneBackupTree(4)
        path = ["H.0.0.0", "E.0.0", "A.0.0", "C.0", "A.3.0", "E.3.0", "H.3.0.0"]
        assert t.logical_path_operational(path)
        for switch in ["E.0.0", "A.0.0", "C.0", "A.3.0", "E.3.0"]:
            t.fail_node(switch)
            assert t.logical_path_operational(path), f"path died with {switch} down"
            t.restore_node(switch)

    def test_logical_path_dies_with_host(self):
        t = OneToOneBackupTree(4)
        path = ["H.0.0.0", "E.0.0", "A.0.0", "C.0", "A.3.0", "E.3.0", "H.3.0.0"]
        t.fail_node("H.3.0.0")
        assert not t.logical_path_operational(path)
