"""Tests for :mod:`repro.service.wal` — the write-ahead decision log.

Three layers:

* the codec — checksummed JSON lines round-trip, and anything torn or
  tampered decodes to ``None`` instead of a wrong record;
* recovery — a torn *tail* is truncated and forgotten (the crash case),
  while a corrupt record *followed by* valid ones raises
  :class:`WalCorruptionError` (real damage, never silently skipped);
* replay — appends are idempotent by ``(group, group_seq)``, so
  recovering twice re-executes nothing: the property the takeover path
  stakes its no-duplicate-decisions guarantee on.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.service.wal import (
    DecisionWAL,
    WalCorruptionError,
    WalRecord,
)
from repro.service.wal import _decode, _encode


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------


class TestCodec:
    def test_round_trip(self):
        record = WalRecord(
            "commit", "pod-0", 3, 2, {"outcome": "backup", "logical": "A.0.0"}
        )
        assert _decode(_encode(record)) == record

    def test_checksum_rejects_tampering(self):
        line = _encode(WalRecord("intent", "pod-0", 0, 1, {"kind": "node"}))
        tampered = line.replace("pod-0", "pod-1")
        assert _decode(tampered) is None

    def test_wrong_crc_rejected(self):
        payload = json.loads(_encode(WalRecord("fence", "g", 0, 1, {})))
        payload["crc"] = (payload["crc"] + 1) & 0xFFFFFFFF
        assert _decode(json.dumps(payload)) is None

    def test_non_json_and_wrong_shapes_rejected(self):
        assert _decode("not json at all") is None
        assert _decode('"a bare string"') is None
        assert _decode('{"no": "crc"}') is None

    def test_unknown_record_type_rejected(self):
        line = _encode(WalRecord("commit", "g", 0, 1, {}))
        payload = json.loads(line)
        # Re-sign a record with an out-of-vocabulary type: the CRC passes
        # but the vocabulary check must still refuse it.
        import zlib

        payload.pop("crc")
        payload["type"] = "rollback"
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        payload["crc"] = zlib.crc32(canonical.encode()) & 0xFFFFFFFF
        assert _decode(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        ) is None


# ----------------------------------------------------------------------
# in-memory semantics
# ----------------------------------------------------------------------


class TestInMemory:
    def test_appends_are_idempotent_by_key(self):
        wal = DecisionWAL()
        assert wal.append_intent("g", 0, 1, {"p": 1})
        assert not wal.append_intent("g", 0, 1, {"p": 2})  # duplicate intent
        assert wal.append_commit("g", 0, 1, {"d": 1})
        assert not wal.append_commit("g", 0, 1, {"d": 2})  # duplicate commit
        assert not wal.append_intent("g", 0, 2, {"p": 3})  # committed already
        assert wal.stats()["records"] == 2

    def test_incomplete_is_intents_minus_commits_in_order(self):
        wal = DecisionWAL()
        wal.append_intent("g", 0, 1, {"n": 0})
        wal.append_intent("h", 0, 1, {"n": 1})
        wal.append_intent("g", 1, 1, {"n": 2})
        wal.append_commit("h", 0, 1, {})
        assert [r.key for r in wal.incomplete()] == [("g", 0), ("g", 1)]
        wal.append_commit("g", 0, 1, {})
        wal.append_commit("g", 1, 1, {})
        assert wal.incomplete() == []

    def test_fences_are_audit_only(self):
        wal = DecisionWAL()
        wal.append_intent("g", 0, 1, {})
        wal.append_fence("g", 0, 1, {"holder_epoch": 1, "current_epoch": 2})
        assert len(wal.fences) == 1
        # The fenced intent stays incomplete — fences never resolve work.
        assert [r.key for r in wal.incomplete()] == [("g", 0)]
        assert not wal.is_committed("g", 0)

    def test_next_seqs_spans_intents_and_commits(self):
        wal = DecisionWAL()
        wal.append_intent("g", 0, 1, {})
        wal.append_intent("g", 2, 1, {})
        wal.append_commit("h", 5, 1, {})
        assert wal.next_seqs() == {"g": 3, "h": 6}
        assert DecisionWAL().next_seqs() == {}

    def test_stats_shape(self):
        wal = DecisionWAL()
        wal.append_intent("g", 0, 1, {})
        assert wal.stats() == {
            "records": 1, "intents": 1, "commits": 0, "fences": 0,
            "incomplete": 1, "truncated_bytes": 0, "path": None,
        }


# ----------------------------------------------------------------------
# durability and recovery
# ----------------------------------------------------------------------


class TestRecovery:
    def test_reopen_restores_every_record(self, tmp_path):
        path = tmp_path / "decisions.wal"
        with DecisionWAL(path) as wal:
            wal.append_intent("g", 0, 1, {"kind": "node"})
            wal.append_commit("g", 0, 1, {"outcome": "backup"})
            wal.append_intent("g", 1, 1, {"kind": "node"})
            wal.append_fence("g", 1, 1, {"holder_epoch": 1})
        with DecisionWAL(path) as reopened:
            assert [r.type for r in reopened.records] == [
                "intent", "commit", "intent", "fence",
            ]
            assert reopened.is_committed("g", 0)
            assert [r.key for r in reopened.incomplete()] == [("g", 1)]
            assert reopened.truncated_bytes == 0

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "decisions.wal"
        with DecisionWAL(path) as wal:
            wal.append_commit("g", 0, 1, {"outcome": "backup"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"commit","group":"g","gro')  # torn write
        with DecisionWAL(path) as reopened:
            assert reopened.committed_keys() == [("g", 0)]
            assert reopened.truncated_bytes > 0
        # The truncation is durable: a third open sees a clean log.
        with DecisionWAL(path) as third:
            assert third.truncated_bytes == 0
            assert third.committed_keys() == [("g", 0)]

    def test_valid_json_without_newline_is_torn(self, tmp_path):
        path = tmp_path / "decisions.wal"
        with DecisionWAL(path) as wal:
            wal.append_commit("g", 0, 1, {})
            line = _encode(WalRecord("commit", "g", 1, 1, {}))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)  # no trailing newline: cut mid-flush
        with DecisionWAL(path) as reopened:
            assert reopened.committed_keys() == [("g", 0)]
            assert reopened.truncated_bytes == len(line)

    def test_mid_log_corruption_raises(self, tmp_path):
        path = tmp_path / "decisions.wal"
        with DecisionWAL(path) as wal:
            wal.append_commit("g", 0, 1, {})
            wal.append_commit("g", 1, 1, {})
        raw = path.read_text().splitlines()
        raw[0] = raw[0].replace('"epoch":1', '"epoch":9')  # breaks the CRC
        path.write_text("\n".join(raw) + "\n")
        with pytest.raises(WalCorruptionError):
            DecisionWAL(path)

    def test_missing_file_is_an_empty_log(self, tmp_path):
        wal = DecisionWAL(tmp_path / "fresh.wal")
        assert wal.records == ()
        wal.append_commit("g", 0, 1, {})
        wal.close()
        assert (tmp_path / "fresh.wal").exists()

    def test_appends_after_reopen_stay_idempotent(self, tmp_path):
        path = tmp_path / "decisions.wal"
        with DecisionWAL(path) as wal:
            wal.append_intent("g", 0, 1, {"p": 1})
            wal.append_commit("g", 0, 1, {"d": 1})
        with DecisionWAL(path) as reopened:
            assert not reopened.append_commit("g", 0, 2, {"d": 2})
            assert not reopened.append_intent("g", 0, 2, {"p": 2})
        with DecisionWAL(path) as third:
            assert third.stats()["records"] == 2  # nothing was re-appended


# ----------------------------------------------------------------------
# the idempotent-replay property
# ----------------------------------------------------------------------

# A run is a sequence of decisions; a crash may interrupt it anywhere.
decision_runs = st.lists(
    st.tuples(
        st.sampled_from(["g0", "g1", "g2"]),  # failure group
        st.booleans(),  # whether the commit landed before the crash
    ),
    min_size=0,
    max_size=40,
)


@given(decision_runs)
@settings(max_examples=100, deadline=None)
def test_double_recovery_commits_nothing_twice(tmp_path_factory, runs):
    """Recovering twice (or n times) yields zero duplicate commits.

    Model: a primary logs intent for every decision, commits some, then
    crashes.  Each successor replays ``incomplete()`` and commits it all.
    However many successors take over in sequence, each key commits
    exactly once — the at-most-once half of the takeover guarantee.
    """
    path = tmp_path_factory.mktemp("wal") / "decisions.wal"
    seqs: dict[str, int] = {}
    with DecisionWAL(path) as wal:
        for group, committed in runs:
            seq = seqs.get(group, 0)
            seqs[group] = seq + 1
            assert wal.append_intent(group, seq, 1, {"group": group})
            if committed:
                assert wal.append_commit(group, seq, 1, {"n": seq})
    committed_before = None
    for takeover in range(2):  # two successive takeovers
        with DecisionWAL(path) as wal:
            if committed_before is not None:
                # The second takeover finds the first one's work done.
                assert sorted(wal.committed_keys()) == committed_before
                assert wal.incomplete() == []
            fresh = 0
            for record in wal.incomplete():
                assert wal.append_commit(*record.key, 2, {"resumed": True})
                fresh += 1
            if committed_before is None:
                assert fresh == sum(1 for _, done in runs if not done)
            else:
                assert fresh == 0  # zero duplicate commits on re-recovery
            committed_before = sorted(wal.committed_keys())
    assert committed_before is not None
    assert len(committed_before) == len(runs)
