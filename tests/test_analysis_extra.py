"""Additional analysis-layer coverage: report fields, edge conditions."""

import math

import pytest

from repro.analysis import SlowdownReport, summarize
from repro.analysis.metrics import AffectedCounts


class TestAffectedCounts:
    def test_zero_totals(self):
        counts = AffectedCounts(0, 0, 0, 0)
        assert counts.flow_fraction == 0.0
        assert counts.coflow_fraction == 0.0
        assert counts.amplification == 1.0

    def test_infinite_amplification(self):
        counts = AffectedCounts(10, 0, 5, 2)
        assert counts.amplification == math.inf

    def test_fractions(self):
        counts = AffectedCounts(100, 10, 20, 8)
        assert counts.flow_fraction == pytest.approx(0.10)
        assert counts.coflow_fraction == pytest.approx(0.40)
        assert counts.amplification == pytest.approx(4.0)


class TestSlowdownReport:
    def test_affected_filtering(self):
        report = SlowdownReport(
            slowdowns={1: 2.0, 2: 1.0, 3: 5.0}, affected=frozenset({1, 3, 9})
        )
        assert report.affected_slowdowns() == [2.0, 5.0]  # 9 absent from data
        assert report.all_slowdowns() == [2.0, 1.0, 5.0]
        assert report.max_slowdown() == 5.0

    def test_empty_report(self):
        report = SlowdownReport(slowdowns={}, affected=frozenset())
        assert report.max_slowdown() == 1.0
        assert report.all_slowdowns() == []


class TestSummarize:
    def test_all_infinite(self):
        s = summarize([math.inf, math.inf])
        assert s["count"] == 2 and s["infinite"] == 2
        assert "median" not in s

    def test_mixed(self):
        s = summarize([1.0, 2.0, 3.0, math.inf])
        assert s["infinite"] == 1
        assert s["median"] == 2.0
        assert s["max"] == 3.0
