"""Exhaustive check of the simadapter's logical-link → physical-interface
resolution: for EVERY logical link of a k=6 ShareBackup network, both
resolved interface ends must exist in the cable map and physically lead
to each other through the circuit layer."""

import pytest

from repro.core import ShareBackupNetwork, ShareBackupSimulation
from repro.simulation import CoflowSpec, FlowSpec


@pytest.fixture(scope="module")
def setup():
    net = ShareBackupNetwork(6, n=1)
    shim = ShareBackupSimulation(
        net,
        [CoflowSpec(1, 0.0, (FlowSpec(1, 1, "H.0.0.0", "H.5.0.0", 1e6),))],
    )
    return net, shim


def test_every_logical_link_resolves_consistently(setup):
    net, shim = setup
    checked = 0
    for link in net.logical.links.values():
        end_a = shim._interface_end(link.a, link.b)
        end_b = shim._interface_end(link.b, link.a)
        assert end_a in net._device_cable, (link.a, link.b, end_a)
        assert end_b in net._device_cable, (link.b, link.a, end_b)
        far_of_a = net.physical_neighbor(*end_a)
        far_of_b = net.physical_neighbor(*end_b)
        assert far_of_a == end_b, (link.a, link.b, far_of_a, end_b)
        assert far_of_b == end_a
        checked += 1
    # k=6: 54 host + 54 edge-agg + 54 agg-core links
    assert checked == 162


def test_resolution_names_the_right_devices(setup):
    net, shim = setup
    dev, iface = shim._interface_end("H.2.1.0", "E.2.1")
    assert dev == "H.2.1.0" and iface == ("nic", 0)
    dev, iface = shim._interface_end("C.4", "A.3.1")
    assert dev == "C.4" and iface == ("pod", 3)
