"""Circuit-switch crossbar model tests."""

import pytest

from repro.core import (
    CROSSPOINT_RECONFIG_SECONDS,
    MEMS_RECONFIG_SECONDS,
    CircuitSwitch,
    CircuitSwitchError,
)


def make(radix=4) -> CircuitSwitch:
    return CircuitSwitch("CS.test", radix=radix)


class TestPorts:
    def test_port_inventory(self):
        cs = make(3)
        ports = cs.ports()
        assert len(ports) == 2 * 3 + 4  # device ports both sides + 4 side
        assert ("d", 0) in ports and ("us", 1) in ports

    def test_ports_per_side_matches_paper_sizing(self):
        # radix = k/2 + n; per-side count = k/2 + n + 2
        cs = make(25)  # k=48, n=1
        assert cs.ports_per_side == 27

    def test_unknown_port_rejected(self):
        cs = make(2)
        with pytest.raises(CircuitSwitchError):
            cs.connect(("d", 5), ("u", 0))
        with pytest.raises(CircuitSwitchError):
            cs.connect(("x", 0), ("u", 0))
        with pytest.raises(CircuitSwitchError):
            cs.connect(("ds", 2), ("u", 0))


class TestCircuits:
    def test_connect_and_peer(self):
        cs = make()
        cs.connect(("d", 0), ("u", 1))
        assert cs.peer(("d", 0)) == ("u", 1)
        assert cs.peer(("u", 1)) == ("d", 0)
        assert cs.peer(("d", 1)) is None

    def test_double_connect_rejected(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        with pytest.raises(CircuitSwitchError):
            cs.connect(("d", 0), ("u", 1))

    def test_self_loop_rejected(self):
        cs = make()
        with pytest.raises(CircuitSwitchError):
            cs.connect(("d", 0), ("d", 0))

    def test_disconnect_idempotent(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        cs.disconnect(("d", 0))
        cs.disconnect(("d", 0))
        assert cs.peer(("u", 0)) is None

    def test_mapping_copy(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        m = cs.mapping()
        m.clear()
        assert cs.peer(("d", 0)) == ("u", 0)


class TestReconfigure:
    def test_batch_swap(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        cs.connect(("d", 1), ("u", 1))
        latency = cs.reconfigure({("d", 0): ("u", 1), ("d", 1): ("u", 0)})
        assert cs.peer(("d", 0)) == ("u", 1)
        assert cs.peer(("d", 1)) == ("u", 0)
        assert latency == CROSSPOINT_RECONFIG_SECONDS

    def test_teardown_with_none(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        cs.reconfigure({("d", 0): None})
        assert cs.peer(("d", 0)) is None and cs.peer(("u", 0)) is None

    def test_reconfiguration_counter(self):
        cs = make()
        cs.reconfigure({("d", 0): ("u", 0)})
        cs.reconfigure({("d", 0): None})
        assert cs.reconfigurations == 2

    def test_down_switch_rejects_reconfig(self):
        cs = make()
        cs.up = False
        with pytest.raises(CircuitSwitchError):
            cs.reconfigure({("d", 0): ("u", 0)})

    def test_mems_latency(self):
        cs = CircuitSwitch("CS.mems", radix=2, reconfig_latency=MEMS_RECONFIG_SECONDS)
        assert cs.reconfigure({("d", 0): ("u", 0)}) == 40e-6

    def test_paper_latency_constants(self):
        assert CROSSPOINT_RECONFIG_SECONDS == 70e-9
        assert MEMS_RECONFIG_SECONDS == 40e-6


class TestCablingAndTraversal:
    def test_splice_once(self):
        cs = make()
        cs.splice(("d", 0), ("device", ("H.0.0.0", ("nic", 0))))
        with pytest.raises(CircuitSwitchError):
            cs.splice(("d", 0), ("device", ("H.0.0.1", ("nic", 0))))

    def test_traverse_follows_circuit_and_cable(self):
        cs = make()
        cs.splice(("d", 0), ("device", ("host", ("nic", 0))))
        cs.splice(("u", 0), ("device", ("edge", ("host", 0))))
        cs.connect(("d", 0), ("u", 0))
        assert cs.traverse(("d", 0)) == ("device", ("edge", ("host", 0)))
        assert cs.traverse(("u", 0)) == ("device", ("host", ("nic", 0)))

    def test_traverse_dark_port(self):
        cs = make()
        cs.splice(("d", 0), ("device", ("host", ("nic", 0))))
        assert cs.traverse(("d", 0)) is None  # no circuit

    def test_traverse_uncabled_far_port(self):
        cs = make()
        cs.connect(("d", 0), ("u", 0))
        assert cs.traverse(("d", 0)) is None  # circuit to nowhere

    def test_traverse_down_switch(self):
        cs = make()
        cs.splice(("d", 0), ("device", ("a", ())))
        cs.splice(("u", 0), ("device", ("b", ())))
        cs.connect(("d", 0), ("u", 0))
        cs.up = False
        assert cs.traverse(("d", 0)) is None

    def test_port_of_endpoint(self):
        cs = make()
        endpoint = ("device", ("edge", ("host", 0)))
        cs.splice(("u", 2), endpoint)
        assert cs.port_of_endpoint(endpoint) == ("u", 2)
        assert cs.port_of_endpoint(("device", ("x", ()))) is None
