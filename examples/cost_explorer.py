#!/usr/bin/env python3
"""Cost explorer: Table 2 and Figure 5 for any (k, n) you care about.

Prints the dollar cost of a fat-tree and the *additional* cost of making
it failure-resilient three different ways — ShareBackup, Aspen Tree, and
1:1 backup — under both price books (copper E-DC, optical O-DC).

Run:  python examples/cost_explorer.py [k] [n]
"""

import sys

from repro.cost import (
    E_DC,
    O_DC,
    aspen_extra_cost,
    fattree_cost,
    figure5_series,
    one_to_one_extra_cost,
    relative_extra_cost,
    sharebackup_extra_cost,
    sharebackup_inventory,
)


def dollars(x: float) -> str:
    return f"${x:,.0f}"


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    hosts = k**3 // 4
    print(f"=== k={k} fat-tree ({hosts:,} hosts), ShareBackup n={n} ===\n")

    inv = sharebackup_inventory(k, n)
    print("what ShareBackup adds to the fat-tree:")
    print(f"  backup switches:       {inv['backup_switches']:,.0f} "
          f"(backup ratio {n / (k / 2):.2%} vs ~0.01% switch failure rate)")
    print(f"  circuit switches:      {inv['circuit_switches']:,.0f} "
          f"({k // 2 + n + 2} ports per side)")
    print(f"  extra cable equivalents: {inv['extra_cable_equivalents']:,.0f}")

    for prices in (E_DC, O_DC):
        base = fattree_cost(k, prices)
        sb = sharebackup_extra_cost(k, n, prices)
        aspen = aspen_extra_cost(k, prices)
        oto = one_to_one_extra_cost(k, prices)
        print(f"\n--- {prices.name} (a=${prices.circuit_port}/port, "
              f"b=${prices.switch_port}/port, c=${prices.cable}/cable) ---")
        print(f"  fat-tree baseline:      {dollars(base)}")
        rows = [
            (f"ShareBackup (n={n})", sb),
            ("Aspen Tree", aspen),
            ("1:1 backup", oto),
        ]
        for name, extra in rows:
            rel = relative_extra_cost(extra, k, prices)
            print(f"  + {name:18s} {dollars(extra.total):>14s}  "
                  f"({rel:7.1%} of fat-tree; switches {dollars(extra.switch_ports)}, "
                  f"cables {dollars(extra.cables)}, circuits "
                  f"{dollars(extra.circuit_ports)})")

    print("\n=== Figure 5: relative additional cost vs network scale (E-DC) ===")
    series = figure5_series(prices=E_DC, ns=(1, 2, 4))
    ks = [k_ for k_, _ in series["aspen"]]
    header = "k:          " + "".join(f"{k_:>9d}" for k_ in ks)
    print(header)
    for name in ("sharebackup(n=1)", "sharebackup(n=2)", "sharebackup(n=4)",
                 "aspen", "1:1-backup"):
        row = "".join(f"{y:>9.1%}" for _, y in series[name])
        print(f"{name:12s}{row}")


if __name__ == "__main__":
    main()
