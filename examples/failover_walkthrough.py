#!/usr/bin/env python3
"""Physical-layer walkthrough: circuits, link-failure diagnosis, cascades.

Where the quickstart shows the API surface, this example opens the hood:

* what the circuit-switch internal configuration looks like and how a
  failover rewrites it (and only it — no cable ever moves);
* how a link failure replaces *both* suspect switches, and how offline
  diagnosis then exonerates the innocent side and recycles it as a spare;
* a cascade: the repaired switch later serves a different logical slot;
* live impersonation: packets forwarded through the *physical* wiring
  take identical logical paths before and after every swap.

Run:  python examples/failover_walkthrough.py
"""

from repro.core import (
    ImpersonationTables,
    PhysicalForwarder,
    ShareBackupController,
    ShareBackupNetwork,
)


def show_circuit(net: ShareBackupNetwork, name: str) -> None:
    cs = net.circuit_switches[name]
    circuits = sorted(
        (a, b) for a, b in cs.mapping().items() if a < b
    )
    rendered = ", ".join(f"{a[0]}{a[1]}<->{b[0]}{b[1]}" for a, b in circuits)
    print(f"  {name}: {rendered}")


def build_forwarder(net: ShareBackupNetwork) -> PhysicalForwarder:
    imp = ImpersonationTables(net.logical)
    tables = {}
    for pod in range(net.k):
        tables[f"FG.edge.{pod}"] = imp.combined_edge_table(pod)
        tables[f"FG.agg.{pod}"] = imp.agg_group_table(pod)
    core_table = imp.core_group_table()
    for j in range(net.half):
        tables[f"FG.core.{j}"] = core_table
    return PhysicalForwarder(net, tables)


def main() -> None:
    net = ShareBackupNetwork(k=6, n=1)
    ctrl = ShareBackupController(net)
    fwd = build_forwarder(net)

    src, dst = "H.0.0.0", "H.5.2.1"
    trail = fwd.send(src, dst)
    print("reference packet walk (through real circuits):")
    print("  " + " > ".join(trail))

    print("\nlayer-2 circuit switches of pod 0 before any failure:")
    for j in range(net.half):
        show_circuit(net, f"CS.2.0.{j}")

    # ------------------------------------------------------------------
    print("\n--- link failure: E.0.0 -- A.0.0 (the edge's interface is bad) ---")
    report = ctrl.handle_link_failure(
        ("E.0.0", ("up", 0)),
        ("A.0.0", ("down", 0)),
        now=0.0,
        true_faulty_interfaces=((("E.0.0", ("up", 0))),),
    )
    print(f"both suspects replaced immediately: {dict(report.replaced)}")
    print(f"recovery time: {report.recovery_time * 1e3:.3f} ms")
    print("\nlayer-2 circuits of pod 0 after the failover "
          "(ports 3 are the backups):")
    for j in range(net.half):
        show_circuit(net, f"CS.2.0.{j}")

    print("\noffline diagnosis runs in the background:")
    diagnosis = ctrl.run_pending_diagnoses()[0]
    for verdict in (diagnosis.end_a, diagnosis.end_b):
        outcome = "healthy" if verdict.healthy else "FAULTY"
        configs = [
            f"#{p.configuration}:{'pass' if p.passed else 'fail'}"
            for p in verdict.probes
        ]
        print(f"  {verdict.device} {verdict.interface}: {outcome} "
              f"({', '.join(configs)})")
    print(f"exonerated -> returned to spare pool: {diagnosis.exonerated_devices()}")
    print(f"condemned  -> awaiting repair:        {diagnosis.condemned_devices()}")

    agg_group = net.group_of("A.0.1")
    print(f"\nagg group spares now: {agg_group.spares} "
          "(the exonerated A.0.0 hardware)")

    # ------------------------------------------------------------------
    print("\n--- cascade: A.0.1 dies; the recycled A.0.0 hardware takes over ---")
    report2 = ctrl.handle_node_failure("A.0.1", now=60.0)
    print(f"replacement: {dict(report2.replaced)}")
    print(f"A.0.1 is now physically served by: {net.serving_switch('A.0.1')}")

    net.verify_fattree_equivalence()
    print("\nlogical topology: still a perfect fat-tree")

    trail_after = fwd.send(src, dst)
    print("the reference packet walks the *same logical path*:")
    print("  " + " > ".join(trail_after))
    assert trail_after == trail
    print("\nimpersonation verified: same tables, same VLAN tags, new hardware.")


if __name__ == "__main__":
    main()
