#!/usr/bin/env python3
"""Replaying a coflow-benchmark trace file through the failure study.

The paper replays the (publicly formatted, privately distributed)
Facebook coflow-benchmark trace.  If you have that file, point this
script at it; otherwise it writes a small synthetic trace in the same
text format first, then replays it — demonstrating the full path
`trace file → rack coflows → host flows → fluid simulation → CCT
comparison` that the real trace would take.

Run:  python examples/trace_replay.py [path/to/FB-trace.txt]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import cct_slowdowns, percentile
from repro.core import ShareBackupNetwork, ShareBackupSimulation
from repro.routing import GlobalOptimalRerouteRouter
from repro.simulation import FluidSimulation
from repro.topology import FatTree
from repro.workload import (
    CoflowTraceGenerator,
    WorkloadConfig,
    load_coflow_benchmark,
    materialize_hosts,
    partition_trace,
    save_coflow_benchmark,
)


def demo_trace_file() -> Path:
    """A synthetic trace written in the coflow-benchmark text format."""
    cfg = WorkloadConfig(num_racks=16, num_coflows=60, duration=30.0, seed=11)
    trace = CoflowTraceGenerator(cfg).generate()
    path = Path(tempfile.gettempdir()) / "synthetic-coflow-benchmark.txt"
    save_coflow_benchmark(path, 16, trace)
    print(f"(no trace file given — wrote a synthetic one to {path})")
    return path


def main() -> None:
    trace_path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_trace_file()
    num_racks, trace = load_coflow_benchmark(trace_path)
    flows = sum(c.width for c in trace)
    print(f"loaded {len(trace)} coflows / {flows} flows over {num_racks} racks "
          f"from {trace_path}")

    # Pick a fat-tree big enough for the trace's racks (paper: 150 racks
    # onto k=16 / 128 racks; rack ids beyond the fabric are folded).
    k = 4
    while (k * k) // 2 < num_racks and k < 16:
        k += 2
    tree = FatTree(k, hosts_per_edge=5 * (k // 2))  # 5:1 oversubscription
    if tree.num_racks < num_racks:
        from repro.workload import RackCoflow, RackFlow

        folded = []
        for coflow in trace:
            flows_folded = tuple(
                RackFlow(
                    f.flow_id,
                    f.coflow_id,
                    f.src_rack % tree.num_racks,
                    f.dst_rack % tree.num_racks,
                    f.size_bytes,
                )
                for f in coflow.flows
                if f.src_rack % tree.num_racks != f.dst_rack % tree.num_racks
            )
            if flows_folded:
                folded.append(
                    RackCoflow(coflow.coflow_id, coflow.arrival, coflow.category,
                               flows_folded)
                )
        trace = folded
        print(f"(folded {num_racks} trace racks onto the k={k} fabric's "
              f"{tree.num_racks})")

    partitions = partition_trace(trace, 30.0)
    partition = partitions[0]
    specs = [
        s
        for s in materialize_hosts(partition, tree)
    ]
    print(f"replaying partition 0: {len(specs)} coflows on k={k} "
          f"({tree.num_racks} racks, {tree.oversubscription:.0f}:1)")

    baseline = FluidSimulation(
        tree, GlobalOptimalRerouteRouter(tree), specs, horizon=100_000.0
    ).run()
    ccts = [c.cct for c in baseline.completed_coflows()]
    print(f"no-failure CCTs: median {percentile(ccts, 50) * 1e3:.1f} ms, "
          f"p99 {percentile(ccts, 99):.2f} s")

    net = ShareBackupNetwork(k, n=1)
    sb_specs = materialize_hosts(partition, net.logical)
    sb_base = FluidSimulation(
        FatTree(k),
        GlobalOptimalRerouteRouter(FatTree(k)),
        sb_specs,
        horizon=100_000.0,
    ).run()
    sbs = ShareBackupSimulation(net, sb_specs, horizon=100_000.0)
    sbs.inject_switch_failure(0.5, "A.0.0")
    report = cct_slowdowns(sb_base, sbs.run())
    worst = report.max_slowdown()
    print(f"ShareBackup under an aggregation failure: worst coflow slowdown "
          f"{worst:.3f}x across {len(report.slowdowns)} coflows")


if __name__ == "__main__":
    main()
