#!/usr/bin/env python3
"""A miniature of the paper's Section 2.2 failure study, plus ShareBackup.

Replays the same synthetic coflow trace on three architectures and
injects the same single failure into each:

* fat-tree with global optimal rerouting,
* F10 with local (3-hop) rerouting,
* ShareBackup (failed switch replaced by a shared backup).

Prints the affected flow/coflow fractions (the Figure 1(a)/(b) metric)
and the CCT slowdown distribution (the Figure 1(c) metric).  The full
paper-scale sweep lives in ``benchmarks/``; this example is sized to run
in under a minute.

Run:  python examples/coflow_failure_study.py
"""

import math

from repro.analysis import affected_by_scenario, cct_slowdowns, percentile
from repro.core import ShareBackupNetwork, ShareBackupSimulation
from repro.failures import FailureInjector
from repro.routing import F10LocalRerouteRouter, GlobalOptimalRerouteRouter
from repro.simulation import FluidSimulation
from repro.topology import F10Tree, FatTree, NodeKind
from repro.workload import CoflowTraceGenerator, WorkloadConfig, materialize_hosts

K = 8
HOSTS_PER_EDGE = 12  # 3:1 oversubscription at the edge (12 hosts, 4 uplinks)
COFLOWS = 100
SEED = 23


def make_specs(tree):
    cfg = WorkloadConfig(
        num_racks=tree.num_racks, num_coflows=COFLOWS, duration=40.0, seed=SEED
    )
    return materialize_hosts(CoflowTraceGenerator(cfg).generate(), tree)


def slowdown_digest(report) -> str:
    values = report.affected_slowdowns() or report.all_slowdowns()
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return "n/a"
    return (
        f"median {percentile(finite, 50):6.2f}x   "
        f"p90 {percentile(finite, 90):6.2f}x   "
        f"max {max(finite):7.2f}x   "
        f"never-finished {len(values) - len(finite)}"
    )


def main() -> None:
    reference = FatTree(K, hosts_per_edge=HOSTS_PER_EDGE)
    specs = make_specs(reference)
    total_flows = sum(c.width for c in specs)
    print(f"trace: {len(specs)} coflows / {total_flows} flows on a k={K} "
          f"fat-tree ({reference.num_racks} racks, "
          f"{reference.oversubscription:.0f}:1 oversubscribed)")

    # One aggregation-switch failure, the same for every architecture.
    injector = FailureInjector(
        reference, seed=3, switch_kinds=(NodeKind.AGGREGATION, NodeKind.CORE)
    )
    scenario = injector.single_node_failure()
    victim = scenario.nodes[0]
    counts = affected_by_scenario(reference, specs, scenario)
    print(f"\ninjected failure: {victim}")
    print(f"  affected flows:   {counts.flow_fraction:6.1%}")
    print(f"  affected coflows: {counts.coflow_fraction:6.1%}  "
          f"(amplification {counts.amplification:.1f}x — the coflow effect)")
    def affected_ids_for(tree) -> list[int]:
        """Coflows whose pre-failure ECMP pins cross the victim, per
        architecture (pin sets differ between fat-tree and F10 wiring)."""
        from repro.routing import EcmpSelector

        selector = EcmpSelector(tree)
        out = []
        for coflow in specs:
            for spec in coflow.flows:
                path = selector.select(spec.src, spec.dst, spec.flow_id)
                if path is not None and victim in path.nodes:
                    out.append(coflow.coflow_id)
                    break
        return out

    print("\nCCT slowdown of affected coflows under that single failure")
    print("(each architecture is compared against its *own* no-failure run):")

    # fat-tree, global optimal rerouting
    b1 = FluidSimulation(
        FatTree(K, hosts_per_edge=HOSTS_PER_EDGE),
        GlobalOptimalRerouteRouter(FatTree(K, hosts_per_edge=HOSTS_PER_EDGE)),
        specs,
        horizon=3600.0,
    ).run()
    t1 = FatTree(K, hosts_per_edge=HOSTS_PER_EDGE)
    sim1 = FluidSimulation(
        t1, GlobalOptimalRerouteRouter(t1), specs, horizon=3600.0
    )
    sim1.fail_node_at(0.0, victim)
    affected1 = affected_ids_for(FatTree(K, hosts_per_edge=HOSTS_PER_EDGE))
    r1 = cct_slowdowns(b1, sim1.run(), affected1)
    print(f"  fat-tree/global-reroute : {slowdown_digest(r1)}")

    # F10, local rerouting
    b2 = FluidSimulation(
        F10Tree(K, hosts_per_edge=HOSTS_PER_EDGE),
        F10LocalRerouteRouter(F10Tree(K, hosts_per_edge=HOSTS_PER_EDGE)),
        specs,
        horizon=3600.0,
    ).run()
    t2 = F10Tree(K, hosts_per_edge=HOSTS_PER_EDGE)
    sim2 = FluidSimulation(t2, F10LocalRerouteRouter(t2), specs, horizon=3600.0)
    sim2.fail_node_at(0.0, victim)
    affected2 = affected_ids_for(F10Tree(K, hosts_per_edge=HOSTS_PER_EDGE))
    r2 = cct_slowdowns(b2, sim2.run(), affected2)
    print(f"  f10/local-reroute       : {slowdown_digest(r2)}")

    # ShareBackup
    net = ShareBackupNetwork(K, n=1)
    sb_specs = make_specs(net.logical)  # canonical hosts (k/2 per rack)
    sb_base = FluidSimulation(
        FatTree(K), GlobalOptimalRerouteRouter(FatTree(K)), sb_specs, horizon=3600.0
    ).run()
    sbs = ShareBackupSimulation(net, sb_specs, horizon=3600.0)
    sbs.inject_switch_failure(0.0, victim)
    r3 = cct_slowdowns(sb_base, sbs.run())
    print(f"  sharebackup             : {slowdown_digest(r3)}")

    print("\nreading: rerouting keeps coflows alive but the slowdown tail is "
          "real; F10's")
    print("detours dilate paths and congest siblings; ShareBackup restores "
          "the exact")
    print("pre-failure network, so its slowdowns sit at ~1.0x.")


if __name__ == "__main__":
    main()
