#!/usr/bin/env python3
"""Capacity planner: Section 5.1/5.3 engineering trade-offs, interactive.

Given a circuit-switch port budget (32 for today's 2D MEMS optics, 256
for electrical crosspoints), explores the (k, n) design space:

* the largest fat-tree each n supports under ``k/2 + n + 2 <= ports``;
* the backup ratio vs the measured ~0.01% switch failure rate;
* the probability a failure group ever exceeds its spares (binomial);
* recovery-time expectations for both circuit technologies.

Run:  python examples/capacity_planner.py [ports]
"""

import sys

from repro.core import RecoveryTimeModel
from repro.failures import DEFAULT_FAILURE_MODEL


def main() -> None:
    ports = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    print(f"=== circuit switches with {ports} ports per side "
          f"(k/2 + n + 2 <= {ports}) ===\n")

    model = DEFAULT_FAILURE_MODEL
    print(f"device availability: {model.availability:.2%} "
          f"(failure rate {model.unavailability:.2%}), "
          f"median downtime {model.median_downtime:.0f}s\n")

    print(f"{'n':>3} {'max k':>6} {'hosts':>8} {'backup ratio':>13} "
          f"{'P(group exceeds spares)':>24}")
    for n in range(1, 9):
        max_half = ports - n - 2
        k = 2 * max_half
        if k < 4:
            break
        hosts = k**3 // 4
        ratio = n / max_half
        risk = model.concurrent_failure_probability(max_half, n)
        print(f"{n:>3} {k:>6} {hosts:>8,} {ratio:>12.2%} {risk:>24.3e}")

    print("\npaper checkpoints (32-port MEMS):")
    print("  n=1 -> k=58, 48k+ hosts, 3.45% backup ratio")
    print("  k=48 -> n can reach 6, 25% backup ratio")

    print("\n=== recovery-time budget (Section 5.3) ===\n")
    timing = RecoveryTimeModel()
    print(f"{'scheme':<24} {'detection':>10} {'control':>10} "
          f"{'reconfig':>12} {'total':>10}")
    for row in timing.comparison():
        print(f"{row.scheme:<24} {row.detection*1e3:>8.2f}ms "
              f"{row.control*1e3:>8.2f}ms {row.reconfiguration*1e6:>10.2f}us "
              f"{row.total*1e3:>8.2f}ms")
    print("\nShareBackup recovers in the same band as F10/Aspen local "
          "rerouting\nand no slower than one SDN rule update.")


if __name__ == "__main__":
    main()
