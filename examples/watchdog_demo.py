#!/usr/bin/env python3
"""Watchdog demo: failure detection through keep-alive probing, in the loop.

The other examples *tell* the controller about failures.  Here a switch
dies silently mid-transfer and the only thing that saves the flow is the
keep-alive watchdog: heartbeats stop, the controller notices at a probe
boundary, recovery runs, and the flow resumes — all inside the fluid
simulation, so the application-visible stall is exactly
detection + control + circuit reconfiguration.

Run:  python examples/watchdog_demo.py
"""

from repro.core import ShareBackupNetwork
from repro.core.watchdog import WatchdogSimulation
from repro.simulation import CoflowSpec, FlowSpec

GBIT = 1.25e8


def main() -> None:
    net = ShareBackupNetwork(k=8, n=1)
    flow = FlowSpec(1, 1, "H.0.0.0", "H.7.0.0", 100 * GBIT)  # 10 s at line rate
    sim = WatchdogSimulation(net, [CoflowSpec(1, 0.0, (flow,))])

    path = sim.router.initial_path("H.0.0.0", "H.7.0.0", 1)
    victim = path.nodes[3]  # the core switch on the flow's path
    death = 4.0002  # dies just after a probe boundary (worst case-ish)
    sim.inject_silent_switch_failure(death, victim)

    interval = sim.probe_interval()
    print(f"probe interval: {interval * 1e3:.1f} ms, "
          f"miss threshold: {sim.controller.miss_threshold} intervals")
    print(f"flow path: {' > '.join(path.nodes)}")
    print(f"{victim} dies silently at t={death}s ...")

    result = sim.run()
    record = result.flows[1]
    physical, died, detected = sim.detections[0]

    print(f"\ndetected: {physical} declared dead at t={detected:.6f}s "
          f"({(detected - died) * 1e3:.2f} ms after death)")
    report = sim.reports[0]
    print(f"recovered: {dict(report.replaced)} "
          f"({report.circuit_switches_touched} circuit switches, "
          f"+{(report.breakdown.control + report.breakdown.reconfiguration) * 1e3:.2f}"
          " ms)")
    print(f"\nflow outcome: finished at t={record.finish:.6f}s")
    print(f"  total stall: {record.stalled_time * 1e3:.2f} ms "
          "(detection dominates; reconfiguration is nanoseconds)")
    print(f"  reroutes: {record.reroutes}  <- the path never changed")
    net.verify_fattree_equivalence()
    print("  logical topology: still a perfect fat-tree")


if __name__ == "__main__":
    main()
