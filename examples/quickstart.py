#!/usr/bin/env python3
"""Quickstart: build a ShareBackup network, kill a switch, watch it heal.

This walks the happy path of the public API in ~60 lines:

1. build a ShareBackup network (k-ary fat-tree + circuit switches +
   shared backups) and its controller;
2. verify the logical topology is a perfect fat-tree;
3. fail an aggregation switch and let the controller recover it;
4. replay a small coflow workload through the fluid simulator with a
   failure mid-run, and see that application-level CCT is unharmed.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ShareBackupController,
    ShareBackupNetwork,
    ShareBackupSimulation,
)
from repro.simulation import CoflowSpec, FlowSpec
from repro.workload import CoflowTraceGenerator, WorkloadConfig, materialize_hosts


def main() -> None:
    # --- 1. the network -------------------------------------------------
    k, n = 8, 1
    net = ShareBackupNetwork(k=k, n=n)
    controller = ShareBackupController(net)
    print(f"ShareBackup network: k={k} fat-tree, n={n} backup per failure group")
    print(f"  hosts:            {net.logical.num_hosts}")
    print(f"  packet switches:  {len(net.logical.packet_switches())}")
    print(f"  backup switches:  {net.num_backup_switches}")
    print(f"  circuit switches: {net.num_circuit_switches} "
          f"({net.circuit_ports_per_side} ports per side)")
    print(f"  failure groups:   {len(net.groups)}")

    # --- 2. the logical network is a plain fat-tree ---------------------
    net.verify_fattree_equivalence()
    print("\nlogical topology == canonical fat-tree: verified")

    # --- 3. fail a switch, recover via a shared backup ------------------
    victim = "A.0.1"
    report = controller.handle_node_failure(victim, now=0.0)
    print(f"\nfailed {victim}:")
    print(f"  replaced by       {dict(report.replaced)[victim]}")
    print(f"  circuit switches reconfigured: {report.circuit_switches_touched}")
    print(f"  recovery time:    {report.recovery_time * 1e3:.3f} ms "
          f"(detection {report.breakdown.detection*1e3:.2f} ms + control "
          f"{report.breakdown.control*1e3:.2f} ms + reconfig "
          f"{report.breakdown.reconfiguration*1e9:.0f} ns)")
    net.verify_fattree_equivalence()
    print("  logical topology still a perfect fat-tree: verified")

    # --- 4. application-level view: coflows under a failure -------------
    fresh = ShareBackupNetwork(k=k, n=n)
    cfg = WorkloadConfig(
        num_racks=fresh.logical.num_racks, num_coflows=40, duration=20.0, seed=7
    )
    trace = materialize_hosts(CoflowTraceGenerator(cfg).generate(), fresh.logical)
    sim = ShareBackupSimulation(fresh, trace, horizon=600.0)
    sim.inject_switch_failure(5.0, "C.3")  # a core dies mid-run
    result = sim.run()

    done = result.completed_coflows()
    stalled = [f for f in result.flows.values() if f.stalled_time > 0]
    print(f"\nreplayed {len(trace)} coflows with a core failure at t=5s:")
    print(f"  coflows completed: {len(done)}/{len(result.coflows)}")
    print(f"  flows that even noticed (stalled briefly): {len(stalled)}")
    if stalled:
        worst = max(f.stalled_time for f in stalled)
        print(f"  worst stall: {worst * 1e3:.2f} ms "
              "(the recovery window; paths and bandwidth unchanged)")
    rerouted = sum(f.reroutes for f in result.flows.values())
    print(f"  flows rerouted: {rerouted}  <- stop rerouting!")


if __name__ == "__main__":
    main()
