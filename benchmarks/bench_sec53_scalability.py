"""Section 5.3 — "Scaling to large data centers with high robustness".

Regenerates the scalability analysis under the circuit-switch port
limits (32-port 2D MEMS, 256-port crosspoint): the largest supported
fat-tree per n, host counts, backup ratios — and validates the paper's
checkpoints (k=58 with 48k+ hosts at n=1; n up to 6 at k=48; the
1056-entry combined edge table at k=64) against the real builders.
"""

import pytest

from repro.core import ShareBackupNetwork, combined_edge_entry_count
from repro.core.impersonation import DEFAULT_TCAM_CAPACITY, ImpersonationTables
from repro.topology import FatTree


def design_space(port_limit: int) -> list[tuple[int, int, int, float]]:
    """(n, max even k, hosts, backup ratio) rows for a port budget."""
    rows = []
    for n in range(1, 9):
        half = port_limit - n - 2
        if half < 2:
            break
        k = 2 * half
        rows.append((n, k, k**3 // 4, n / half))
    return rows


def render(port_limit: int) -> str:
    lines = [
        f"Section 5.3 scalability at {port_limit}-port circuit switches "
        f"(k/2 + n + 2 <= {port_limit})",
        f"{'n':>3}{'max k':>7}{'hosts':>14}{'backup ratio':>14}",
    ]
    for n, k, hosts, ratio in design_space(port_limit):
        lines.append(f"{n:>3}{k:>7}{hosts:>14,}{ratio:>13.2%}")
    if port_limit > 130:
        lines.append(
            "(octet-based fat-tree addressing caps practical k at 254; "
            "larger entries show the circuit-switch limit alone)"
        )
    return "\n".join(lines)


def test_sec53_scalability(benchmark, emit):
    table = benchmark.pedantic(render, args=(32,), rounds=1, iterations=1)
    emit("sec53_scalability", table + "\n\n" + render(256))

    space = dict((n, (k, hosts, ratio)) for n, k, hosts, ratio in design_space(32))
    # paper: n=1 -> k=58 fat-tree with over 48k hosts, 3.45% backup ratio
    k, hosts, ratio = space[1]
    assert k == 58 and hosts > 48_000
    assert ratio == pytest.approx(0.0345, abs=5e-4)
    # paper: for k=48 (half=24), n can reach 6 -> 25% backup ratio
    n_for_48 = 32 - 24 - 2
    assert n_for_48 == 6
    assert 6 / 24 == 0.25


def test_builder_respects_port_limit(benchmark, emit):
    """A k=12, n=1 build fits 32-port optics with room to spare; the
    builder's reported per-side port count matches the formula."""
    net = benchmark.pedantic(
        ShareBackupNetwork, args=(12,), kwargs={"n": 1}, rounds=1, iterations=1
    )
    assert net.circuit_ports_per_side == 6 + 1 + 2
    for cs in net.circuit_switches.values():
        assert cs.ports_per_side == net.circuit_ports_per_side
    emit(
        "sec53_builder_ports",
        f"k=12 n=1 build: {net.num_circuit_switches} circuit switches, "
        f"{net.circuit_ports_per_side} ports per side each",
    )


def test_tcam_fits_at_paper_scale(benchmark, emit):
    """k=64: the combined edge table is exactly 1056 entries and fits
    commodity TCAM (paper §4.3's sizing argument, rebuilt for real)."""
    tree = FatTree(64)
    imp = ImpersonationTables(tree)
    report = benchmark.pedantic(imp.tcam_report, rounds=1, iterations=1)
    emit(
        "sec53_tcam",
        "\n".join(f"{key}: {value}" for key, value in report.items()),
    )
    assert report["edge_group_entries"] == 1056 == combined_edge_entry_count(64)
    assert report["fits"] and report["tcam_capacity"] == DEFAULT_TCAM_CAPACITY
