"""Table 3 — performance characteristics, *measured* per architecture.

For each architecture the probe pins a saturating host permutation,
injects the same failure class (a core switch used by pinned flows),
lets the architecture's recovery act, and measures the three columns:

* no bandwidth loss?   (aggregate max-min throughput unchanged)
* no path dilation?    (no flow ends on a longer path)
* no upstream repair?  (every repair decision local to the detection point)

Expected outcome = the paper's table:

    architecture   no-bw-loss  no-dilation  no-upstream-repair
    sharebackup        OK          OK             OK
    fat-tree           x           OK             x
    f10                x           x              OK
    aspen              x           OK             OK / x
"""

import pytest

from repro.analysis import Characteristics, PermutationProbe
from repro.core import ShareBackupController, ShareBackupNetwork
from repro.routing import (
    F10LocalRerouteRouter,
    GlobalOptimalRerouteRouter,
    StaticEcmpRouter,
)
from repro.topology import AspenTree, F10Tree, FatTree

K = 8


def _core_on_some_path(probe: PermutationProbe) -> str:
    for path in probe.paths.values():
        if path is not None and len(path.nodes) == 7:
            return path.nodes[3]
    raise AssertionError("no inter-pod pinned path found")


def measure_fattree() -> Characteristics:
    tree = FatTree(K)
    probe = PermutationProbe(tree, GlobalOptimalRerouteRouter(tree))
    return probe.measure(
        "fat-tree", lambda: tree.fail_node(_core_on_some_path(probe)), greedy=True
    )


def measure_f10() -> Characteristics:
    tree = F10Tree(K)
    probe = PermutationProbe(tree, F10LocalRerouteRouter(tree))
    return probe.measure(
        "f10", lambda: tree.fail_node(_core_on_some_path(probe))
    )


def measure_aspen() -> Characteristics:
    """Aspen's duplicated agg–core links: fail ONE link of a duplicated
    pair — the local parallel-link failover needs no reroute and no
    upstream action, but the pair's capacity halves."""
    tree = AspenTree(K)
    probe = PermutationProbe(tree, GlobalOptimalRerouteRouter(tree))

    def inject():
        pair = tree.links_between("A.0.0", "C.0")
        tree.fail_link(pair[0].link_id)

    return probe.measure("aspen", inject, greedy=True)


def measure_sharebackup() -> Characteristics:
    net = ShareBackupNetwork(K, n=1)
    tree = net.logical
    controller = ShareBackupController(net)
    probe = PermutationProbe(tree, StaticEcmpRouter(tree))
    victim = {}

    def inject():
        victim["name"] = _core_on_some_path(probe)
        tree.fail_node(victim["name"])

    def recover():
        # the backup replaces the failed switch; the *logical* element
        # comes back identical, which is how the simulator sees a swap
        report = controller.handle_node_failure(victim["name"])
        assert report.fully_recovered
        tree.restore_node(victim["name"])
        net.verify_fattree_equivalence()

    return probe.measure("sharebackup", inject, recover=recover)


def render(rows: list[Characteristics]) -> str:
    lines = [
        "Table 3 regeneration (measured, 'OK' = property holds)",
        f"{'architecture':<14}{'no bw loss':>12}{'no dilation':>13}{'no upstream':>13}",
    ]
    for ch in rows:
        name, bw, dil, up = ch.table_row()
        lines.append(f"{name:<14}{bw:>12}{dil:>13}{up:>13}")
    return "\n".join(lines)


def test_table3(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [
            measure_sharebackup(),
            measure_fattree(),
            measure_f10(),
            measure_aspen(),
        ],
        rounds=1,
        iterations=1,
    )
    emit("table3_characteristics", render(rows))
    by_name = {ch.architecture: ch for ch in rows}

    sb = by_name["sharebackup"]
    assert not sb.bandwidth_loss and not sb.path_dilation and not sb.upstream_repair

    ft = by_name["fat-tree"]
    assert ft.bandwidth_loss and not ft.path_dilation and ft.upstream_repair

    f10 = by_name["f10"]
    assert f10.bandwidth_loss and f10.path_dilation and not f10.upstream_repair

    aspen = by_name["aspen"]
    assert aspen.bandwidth_loss  # half the pair's capacity is gone
    assert not aspen.path_dilation
    assert not aspen.upstream_repair  # parallel-link failover is local
