"""Section 5.3 — "Recovering failures as fast as state of the art".

Regenerates the recovery-latency comparison from the paper's constants
(probing interval, sub-ms controller messaging, 70 ns crosspoint / 40 µs
MEMS reconfiguration, ~1 ms SDN rule update) and validates it against
the *live* control-plane path: the latency the controller reports for an
actual failover equals the model, and the circuit-switch reconfiguration
it performs is the parallel kind (one latency, not k/2 of them).
"""

import pytest

from repro.core import (
    RecoveryTimeModel,
    ShareBackupController,
    ShareBackupNetwork,
)


def render(model: RecoveryTimeModel) -> str:
    lines = [
        "Section 5.3 recovery-time comparison",
        f"{'scheme':<24}{'detection':>11}{'control':>10}{'reconfig':>12}{'total':>10}",
    ]
    for row in model.comparison():
        lines.append(
            f"{row.scheme:<24}{row.detection * 1e3:>9.2f}ms"
            f"{row.control * 1e3:>8.2f}ms{row.reconfiguration * 1e6:>10.2f}us"
            f"{row.total * 1e3:>8.2f}ms"
        )
    return "\n".join(lines)


def test_sec53_recovery_model(benchmark, emit):
    model = RecoveryTimeModel()
    table = benchmark.pedantic(render, args=(model,), rounds=1, iterations=1)
    emit("sec53_recovery", table)

    sb_x = model.sharebackup("crosspoint").total
    sb_m = model.sharebackup("mems").total
    f10 = model.f10().total
    sdn = model.sdn_rerouting().total
    # the paper's claim: as fast as F10/Aspen (same band), and not slower
    # than SDN-based rerouting
    assert sb_x < 1.6 * f10
    assert sb_m < 1.6 * f10
    assert sb_x < sdn and sb_m < sdn
    # the reconfiguration term itself is negligible
    assert model.sharebackup("crosspoint").reconfiguration == 70e-9
    assert model.sharebackup("mems").reconfiguration == 40e-6


@pytest.mark.parametrize(
    "technology,reconfig", [("crosspoint", 70e-9), ("mems", 40e-6)]
)
def test_live_controller_matches_model(benchmark, technology, reconfig, emit):
    net = ShareBackupNetwork(8, n=1, reconfig_latency=reconfig)
    ctrl = ShareBackupController(net, technology=technology)
    report = benchmark.pedantic(
        ctrl.handle_node_failure, args=("A.0.0",), rounds=1, iterations=1
    )
    model = RecoveryTimeModel().sharebackup(technology)
    assert report.recovery_time == pytest.approx(model.total)
    # reconfigurations executed in parallel on the group's circuit switches
    assert report.circuit_switches_touched == 8  # 2 layers x k/2
    per_cs = [
        cs.reconfigurations
        for cs in net.circuit_switches_of("FG.agg.0")
    ]
    assert all(c == 1 for c in per_cs)
    emit(
        f"sec53_live_{technology}",
        f"live failover ({technology}): {report.recovery_time * 1e3:.4f} ms, "
        f"{report.circuit_switches_touched} circuit switches reconfigured in parallel",
    )
