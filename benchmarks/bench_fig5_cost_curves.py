"""Figure 5 — additional cost relative to fat-tree vs network scale.

Regenerates both panels (E-DC copper, O-DC optics): ShareBackup at
n ∈ {1, 2, 4}, Aspen Tree, and 1:1 backup, for k = 8..64.  Asserts the
figure's shape: 1:1 backup flat at 300%, Aspen flat and multi-fold above
ShareBackup, ShareBackup decreasing in k, and the paper's flexibility
caveat (ShareBackup n=4 can out-cost Aspen at small k on optics but is
cheaper at deployment scale).
"""

import pytest

from repro.cost import E_DC, O_DC, figure5_series

KS = (8, 16, 24, 32, 40, 48, 56, 64)


def render(prices) -> tuple[str, dict]:
    series = figure5_series(ks=KS, ns=(1, 2, 4), prices=prices)
    lines = [f"Figure 5 ({prices.name}): extra cost / fat-tree cost"]
    lines.append("k:            " + "".join(f"{k:>9d}" for k in KS))
    for name in sorted(series):
        lines.append(
            f"{name:<14}" + "".join(f"{y:>9.1%}" for _, y in series[name])
        )
    return "\n".join(lines), series


def test_fig5_edc(benchmark, emit):
    text, series = benchmark.pedantic(render, args=(E_DC,), rounds=1, iterations=1)
    emit("fig5_cost_curves_edc", text)
    _assert_shape(series, prices=E_DC)


def test_fig5_odc(benchmark, emit):
    text, series = benchmark.pedantic(render, args=(O_DC,), rounds=1, iterations=1)
    emit("fig5_cost_curves_odc", text)
    _assert_shape(series, prices=O_DC)


def _assert_shape(series, prices) -> None:
    # 1:1 backup: flat 300% (4x total cost).
    assert all(y == pytest.approx(3.0) for _, y in series["1:1-backup"])
    # Aspen: flat in k (same k^3 scaling as fat-tree).
    aspen = [y for _, y in series["aspen"]]
    assert max(aspen) - min(aspen) < 1e-9
    # ShareBackup: strictly decreasing with scale for every n.
    for n in (1, 2, 4):
        ys = [y for _, y in series[f"sharebackup(n={n})"]]
        assert all(a > b for a, b in zip(ys, ys[1:]))
    # Multi-fold cheaper than the alternatives at deployment scale
    # (the gap is widest on copper: 6.5x at k=48 E-DC, 3.2x O-DC).
    for k, y in series["sharebackup(n=1)"]:
        aspen_y = dict(series["aspen"])[k]
        if k >= 24:
            assert aspen_y / y > 2.0
        if k >= 48:
            assert aspen_y / y > 3.0
    # The paper's caveat: even n=4 stays below Aspen at k=48.
    sb4 = dict(series["sharebackup(n=4)"])
    aspen_y = dict(series["aspen"])[48]
    assert sb4[48] < aspen_y
