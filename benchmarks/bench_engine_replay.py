"""End-to-end engine benchmark: one Figure 1(c)-sized failure replay.

This is the workload the incremental-allocator overhaul was sized
against (docs/simulator.md): the quick-profile fabric under a single
aggregation-switch failure at t=0, measured as one full fluid
simulation (trace generation excluded — it is identical either way).

After a measured run the benchmark rewrites ``BENCH_engine.json`` at
the repo root, recording the pre-overhaul baseline (captured on this
container at the last ENGINE_REV-1 commit) next to the current engine's
samples, so the "≥2× median wall-clock" acceptance bar stays auditable
from the artifact alone.  Under ``--benchmark-disable`` (the CI smoke
job) the replay still runs once for correctness but the artifact is
left untouched.
"""

import json
import statistics
from dataclasses import asdict
from pathlib import Path

from repro.experiments.config import StudyConfig
from repro.routing import GlobalOptimalRerouteRouter
from repro.simulation import ENGINE_REV, FluidSimulation
from repro.topology import FatTree

BENCH_JSON = Path(__file__).parent.parent / "BENCH_engine.json"

#: Pre-overhaul medians for this exact scenario, measured on this
#: container at commit 08e41de (ENGINE_REV 1: dict-keyed allocator,
#: O(active) completion scans and advance sweeps in the event loop).
BASELINE = {
    "engine_rev": 1,
    "commit": "08e41de",
    "median_s": 12.846,
    "samples_s": [13.573, 13.597, 12.846, 12.230, 12.562],
}

CONFIG = StudyConfig(
    k=6, hosts_per_edge=30, num_coflows=90, duration=12.0, seed=13
)
VICTIM = "A.0.1"


_SCENARIO = None


def _scenario():
    """Tree and trace built once; the timed region is router + engine
    construction + run, matching how the baseline was measured."""
    global _SCENARIO
    if _SCENARIO is None:
        tree = CONFIG.build_tree(FatTree)
        _SCENARIO = (tree, CONFIG.build_specs(tree))
    return _SCENARIO


def _replay(allocator):
    tree, specs = _scenario()
    sim = FluidSimulation(
        tree,
        GlobalOptimalRerouteRouter(tree),
        specs,
        horizon=CONFIG.horizon,
        allocator=allocator,
    )
    sim.fail_node_at(0.0, VICTIM)
    return sim.run()


def _samples(benchmark):
    """Raw per-round timings, or None under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None
    return sorted(stats.stats.data)


def test_perf_fig1c_replay_incremental(benchmark):
    result = benchmark.pedantic(_replay, args=("incremental",), rounds=3)
    assert result.flows and all(r.completed for r in result.flows.values())
    samples = _samples(benchmark)
    if samples is None:
        return
    current = {
        "engine_rev": ENGINE_REV,
        "allocator": "incremental",
        "median_s": round(statistics.median(samples), 3),
        "samples_s": [round(s, 3) for s in samples],
    }
    payload = {
        "bench": "fig1c_replay",
        "scenario": {
            "config": asdict(CONFIG),
            "router": "GlobalOptimalRerouteRouter",
            "failure": {"node": VICTIM, "at": 0.0},
        },
        "baseline": BASELINE,
        "current": current,
        "speedup": round(BASELINE["median_s"] / current["median_s"], 2),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert payload["speedup"] >= 2.0


def test_perf_fig1c_replay_oracle(benchmark):
    """The from-scratch oracle on the same replay, for comparison only
    (it shares the array core, so it too beats the old engine)."""
    result = benchmark.pedantic(_replay, args=("oracle",), rounds=3)
    assert result.flows and all(r.completed for r in result.flows.values())
