"""End-to-end engine benchmarks: full failure replays at two scales.

The Figure 1(c)-sized replay is the workload the incremental-allocator
overhaul was sized against (docs/simulator.md): the quick-profile
fabric under a single aggregation-switch failure at t=0, measured as
one full fluid simulation (trace generation excluded — it is identical
either way).  It now runs twice, once per challenger backend, so the
artifact records the incremental → vectorized progression next to the
pre-overhaul baseline.

The *large* replay is a k=32 fabric (1,024 hosts, 512 edge switches)
with a fail-and-repair storm in the middle — the warehouse-scale shape
the vectorized columnar backend exists for.  At that size the
per-component object-graph allocators spend tens of seconds per replay
(reference medians below, captured on this container), so only the
vectorized backend is re-timed on every run.

After a measured run each test read-modify-writes its own key of
``BENCH_engine.json`` at the repo root, so the acceptance bars stay
auditable from the artifact alone and no test clobbers another's
round.  Under ``--benchmark-disable`` (the CI smoke job) the replays
still run once for correctness but the artifact is left untouched.
"""

import json
import statistics
from dataclasses import asdict
from pathlib import Path

from repro.experiments.config import StudyConfig
from repro.routing import GlobalOptimalRerouteRouter
from repro.simulation import ENGINE_REV, FluidSimulation
from repro.topology import FatTree

BENCH_JSON = Path(__file__).parent.parent / "BENCH_engine.json"

#: Pre-overhaul medians for the Fig-1(c) scenario, measured on this
#: container at commit 08e41de (ENGINE_REV 1: dict-keyed allocator,
#: O(active) completion scans and advance sweeps in the event loop).
BASELINE = {
    "engine_rev": 1,
    "commit": "08e41de",
    "median_s": 12.846,
    "samples_s": [13.573, 13.597, 12.846, 12.562, 12.230],
}

#: The incremental backend's committed median at ENGINE_REV 2 (commit
#: 78c3014) — the bar the vectorized backend is measured against.
PR4_INCREMENTAL_MEDIAN_S = 4.789

CONFIG = StudyConfig(
    k=6, hosts_per_edge=30, num_coflows=90, duration=12.0, seed=13
)
VICTIM = "A.0.1"

LARGE_CONFIG = StudyConfig(
    k=32, hosts_per_edge=2, num_coflows=120, duration=4.0, seed=17
)
#: Object-graph backends on the large replay, one-shot medians captured
#: on this container at ENGINE_REV 3 (same process, interleaved with
#: the vectorized runs).  They are reference constants, not re-timed:
#: at ~29 s per replay they do not fit the bench budget — which is the
#: point of the columnar backend.
LARGE_REFERENCE = {
    "engine_rev": 3,
    "incremental_median_s": 29.344,
    "oracle_median_s": 28.444,
}


_SCENARIOS = {}


def _scenario(config):
    """Tree and trace built once per config; the timed region is router
    + engine construction + run, matching how the baseline was
    measured."""
    if config not in _SCENARIOS:
        tree = config.build_tree(FatTree)
        _SCENARIOS[config] = (tree, config.build_specs(tree))
    return _SCENARIOS[config]


def _replay(allocator):
    tree, specs = _scenario(CONFIG)
    sim = FluidSimulation(
        tree,
        GlobalOptimalRerouteRouter(tree),
        specs,
        horizon=CONFIG.horizon,
        allocator=allocator,
    )
    sim.fail_node_at(0.0, VICTIM)
    return sim.run()


def _large_replay(allocator):
    tree, specs = _scenario(LARGE_CONFIG)
    sim = FluidSimulation(
        tree,
        GlobalOptimalRerouteRouter(tree),
        specs,
        horizon=LARGE_CONFIG.horizon,
        allocator=allocator,
    )
    sim.fail_node_at(1.0, VICTIM)
    sim.restore_node_at(3.0, VICTIM)
    return sim.run()


def _samples(benchmark):
    """Raw per-round timings, or None under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None
    return sorted(stats.stats.data)


def _round(allocator, samples):
    return {
        "engine_rev": ENGINE_REV,
        "allocator": allocator,
        "median_s": round(statistics.median(samples), 3),
        "samples_s": [round(s, 3) for s in samples],
    }


def _merge_bench(update):
    """Read-modify-write ``BENCH_engine.json``: each test owns its keys
    and everything else (other rounds, the ``primitives`` map the
    microperf session hook maintains) survives."""
    try:
        payload = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update(update)
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_perf_fig1c_replay_incremental(benchmark):
    result = benchmark.pedantic(_replay, args=("incremental",), rounds=3)
    assert result.flows and all(r.completed for r in result.flows.values())
    samples = _samples(benchmark)
    if samples is None:
        return
    current = _round("incremental", samples)
    payload = _merge_bench(
        {
            "bench": "fig1c_replay",
            "scenario": {
                "config": asdict(CONFIG),
                "router": "GlobalOptimalRerouteRouter",
                "failure": {"node": VICTIM, "at": 0.0},
            },
            "baseline": BASELINE,
            "current": current,
            "speedup": round(BASELINE["median_s"] / current["median_s"], 2),
        }
    )
    assert payload["speedup"] >= 2.0


def test_perf_fig1c_replay_vectorized(benchmark):
    """The columnar backend on the same replay, measured against the
    incremental backend's committed ENGINE_REV-2 median."""
    result = benchmark.pedantic(_replay, args=("vectorized",), rounds=3)
    assert result.flows and all(r.completed for r in result.flows.values())
    samples = _samples(benchmark)
    if samples is None:
        return
    current = _round("vectorized", samples)
    current["speedup_vs_pr4_incremental"] = round(
        PR4_INCREMENTAL_MEDIAN_S / current["median_s"], 2
    )
    current["speedup_vs_rev1_baseline"] = round(
        BASELINE["median_s"] / current["median_s"], 2
    )
    payload = _merge_bench({"vectorized": current})
    # The container's clock speed drifts ±30% between sessions, so the
    # hard bar is the same-run incremental round (timed minutes earlier
    # in this very process), not an absolute constant; the committed
    # cross-session speedups above are recorded for the record.
    same_run = payload.get("current", {}).get("median_s")
    if same_run:
        assert same_run / current["median_s"] >= 2.5
    assert current["speedup_vs_pr4_incremental"] >= 2.0


def test_perf_fig1c_replay_oracle(benchmark):
    """The from-scratch oracle on the same replay, for comparison only
    (it shares the array core, so it too beats the old engine)."""
    result = benchmark.pedantic(_replay, args=("oracle",), rounds=3)
    assert result.flows and all(r.completed for r in result.flows.values())


def test_perf_large_replay_vectorized(benchmark):
    """The k=32 warehouse-scale replay, vectorized backend only.

    The object-graph backends take ~29 s a replay here (see
    ``LARGE_REFERENCE``); the bar is that the columnar backend clears
    the same replay at least twice as fast as the better of them, which
    is what makes this scale routinely benchmarkable at all.
    """
    result = benchmark.pedantic(_large_replay, args=("vectorized",), rounds=2)
    assert result.flows and result.reallocations > len(result.flows)
    samples = _samples(benchmark)
    if samples is None:
        return
    current = _round("vectorized", samples)
    current["reference"] = LARGE_REFERENCE
    current["speedup_vs_incremental"] = round(
        LARGE_REFERENCE["incremental_median_s"] / current["median_s"], 2
    )
    _merge_bench(
        {
            "large_replay": {
                "bench": "k32_failure_storm_replay",
                "scenario": {
                    "config": asdict(LARGE_CONFIG),
                    "router": "GlobalOptimalRerouteRouter",
                    "failure": {"node": VICTIM, "at": 1.0, "restored_at": 3.0},
                },
                **current,
            }
        }
    )
    assert current["speedup_vs_incremental"] >= 2.0
