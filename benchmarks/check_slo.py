"""SLO regression gate: fresh p99 vs the committed baseline.

CI's service-smoke job runs the SLO benchmark with
``--benchmark-disable`` — correctness only, no timing artifact.  This
script closes the loop: it re-runs the load test (and, when the
committed ``BENCH_service.json`` carries a ``failover`` round, the
failover benchmark) a few times on the CI host and fails the job when
the *best* fresh p99 is more than ``REPRO_SLO_GATE`` times the
committed p99 (default 2×).

Best-of-N against a generous multiplier is deliberate: shared CI
runners are noisy, and a gate that cries wolf gets deleted.  A genuine
regression — an accidental O(n²) in the resolver, a blocking call on
the event loop, a takeover that re-runs the whole log — blows through
2× on every run; scheduler jitter does not survive best-of-3.

Exit status: 0 when within the gate (or no baseline exists yet),
1 on regression, with a one-line verdict per gated metric.

Usage::

    PYTHONPATH=src python benchmarks/check_slo.py
    REPRO_SLO_GATE=3.0 PYTHONPATH=src python benchmarks/check_slo.py
"""

import json
import sys
from pathlib import Path

from _gate import ATTEMPTS, gate_from_env, verdict
from repro.service import (
    FailoverBenchConfig,
    LoadTestConfig,
    run_failover_benchmark,
    run_load_test,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_service.json"


def _fresh_slo_p99(config: LoadTestConfig) -> float:
    return min(
        run_load_test(config).latency["p99"] for _ in range(ATTEMPTS)
    )


def _fresh_failover_p99(config: FailoverBenchConfig) -> float:
    return min(
        run_failover_benchmark(config).summary()["p99"]
        for _ in range(ATTEMPTS)
    )


def main() -> int:
    if not BENCH_JSON.exists():
        print(f"no baseline at {BENCH_JSON}; nothing to gate")
        return 0
    baseline = json.loads(BENCH_JSON.read_text())
    gate = gate_from_env("REPRO_SLO_GATE")
    regressed = False

    committed_p99 = float(baseline["slo"]["p99"])
    config = LoadTestConfig(**baseline["config"])
    regressed |= verdict(
        "service-slo p99",
        _fresh_slo_p99(config),
        committed_p99,
        gate,
        unit="ms",
        scale=1e3,
    )

    failover = baseline.get("failover")
    if failover is not None:
        fo_config = FailoverBenchConfig(**failover["config"])
        regressed |= verdict(
            "failover p99",
            _fresh_failover_p99(fo_config),
            float(failover["slo"]["p99"]),
            gate,
            unit="ms",
            scale=1e3,
        )
    else:
        print("no failover round in the baseline; skipping that gate")

    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
