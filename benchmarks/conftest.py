"""Benchmark-harness plumbing.

Every ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Conventions:

* heavy experiments are computed **once** via ``benchmark.pedantic(...,
  rounds=1)`` so pytest-benchmark reports the wall time without
  re-running a minutes-long experiment;
* each benchmark *prints* its table/series and also writes it to
  ``benchmarks/results/<name>.txt`` so the regenerated artifact survives
  pytest's output capture;
* each benchmark *asserts* the paper's qualitative shape (who wins, by
  roughly what factor) — absolute numbers differ by design, since the
  substrate is a fluid simulator and a synthetic trace, not the authors'
  packet simulator and the raw Facebook trace;
* ``REPRO_BENCH_PROFILE=quick|full`` scales the experiment: ``quick``
  (default) finishes in a few minutes total, ``full`` runs paper-scale
  parameters (k=16 with 10:1 oversubscription, more failure samples);
* the scenario-sweep benchmarks (Fig 1a/1b/1c, §5.1 time-domain) run
  through :mod:`repro.runner`: ``REPRO_BENCH_JOBS`` sets the worker
  count (default: CPUs capped at 8, ``1`` forces serial),
  ``REPRO_BENCH_CACHE=0`` disables the content-addressed result cache
  (default: ``.repro-cache/`` at the repo root, making warm re-runs
  near-instant), and every orchestration event is journalled to
  ``benchmarks/results/run_journal.jsonl``.  Results are bit-identical
  to the serial path either way — only wall-clock changes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_ENGINE_JSON = Path(__file__).parent.parent / "BENCH_engine.json"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Fold measured micro-benchmark medians into ``BENCH_engine.json``.

    After any timed run of ``bench_microperf.py`` the per-primitive
    median wall-clocks are merged into the ``primitives`` block of the
    repo-root artifact (the end-to-end replay block is written by
    ``bench_engine_replay.py`` itself).  Under ``--benchmark-disable``
    no stats exist and the artifact is left untouched.
    """
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return
    primitives = {}
    for bench in session.benchmarks:
        fullname = getattr(bench, "fullname", "")
        stats = getattr(bench, "stats", None)
        if "bench_microperf" not in fullname or stats is None:
            continue
        primitives[bench.name] = {"median_s": round(stats.median, 9)}
    if not primitives:
        return
    try:
        payload = json.loads(BENCH_ENGINE_JSON.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.setdefault("primitives", {}).update(primitives)
    BENCH_ENGINE_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@dataclass(frozen=True)
class BenchProfile:
    """Experiment sizing for the failure-study benchmarks.

    The affected-fraction sweeps (Fig 1a/b) are static path analysis and
    can afford paper-scale traces; the CCT-slowdown study (Fig 1c) runs
    full fluid simulations whose *utilisation* must be meaningful — a
    bigger fabric therefore needs a denser trace, sized by the
    ``slowdown_*`` knobs (≈60% of bisection in both profiles).
    """

    name: str
    k: int
    hosts_per_edge: int  # 10:1 oversubscription like the paper's trace
    num_coflows: int
    duration: float
    failure_samples: int
    slowdown_num_coflows: int
    slowdown_duration: float

    @property
    def oversubscription(self) -> float:
        return self.hosts_per_edge / (self.k / 2)


QUICK = BenchProfile(
    name="quick", k=6, hosts_per_edge=30, num_coflows=90, duration=12.0,
    failure_samples=3, slowdown_num_coflows=90, slowdown_duration=12.0,
)
#: Paper-scale fabric (k=16, 128 racks, 10:1).  The Fig 1c portion runs
#: ~16 fluid simulations of a ~35k-flow trace — plan for several hours.
FULL = BenchProfile(
    name="full", k=16, hosts_per_edge=80, num_coflows=400, duration=300.0,
    failure_samples=5, slowdown_num_coflows=900, slowdown_duration=10.0,
)


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    choice = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    if choice not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_PROFILE must be quick|full, got {choice!r}")
    return FULL if choice == "full" else QUICK


@pytest.fixture(scope="session")
def runner():
    """The shared sweep runner: parallel, cached, journalled (env-tunable)."""
    from repro.runner import (
        NullCache,
        ResultCache,
        RunJournal,
        SweepRunner,
        default_jobs,
    )

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or default_jobs()
    if os.environ.get("REPRO_BENCH_CACHE", "1") == "0":
        cache = NullCache()
    else:
        cache = ResultCache(Path(__file__).parent.parent / ".repro-cache")
    journal = RunJournal(RESULTS_DIR / "run_journal.jsonl")
    try:
        yield SweepRunner(jobs=jobs, cache=cache, journal=journal)
    finally:
        journal.close()


@pytest.fixture(scope="session")
def emit():
    """Write a named result artifact (text + optional CSV) and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str, csv: str | None = None) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        if csv is not None:
            (RESULTS_DIR / f"{name}.csv").write_text(csv)
        print(f"\n===== {name} =====\n{text}")
        return path

    return _emit
