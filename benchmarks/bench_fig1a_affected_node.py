"""Figure 1(a) — % of flows and coflows affected vs **node** failure rate.

Methodology per Section 2.2: the coflow trace is mapped onto an
oversubscribed fat-tree (and F10's AB fat-tree); a flow is affected when
its ECMP-pinned path traverses a failed switch, a coflow when any of its
flows is.  The x-axis sweeps the fraction of failed switches.

Shape assertions (the paper's findings):

* coflow curves sit far above flow curves (amplification 3.3×–90×);
* both grow with the failure rate, the coflow curve climbing fastest at
  small rates ("a small number of failures have huge impact");
* a single node failure already affects a large share of coflows
  (paper: 29.6%).

The pipeline itself lives in :mod:`repro.experiments.affected`; the
scenario evaluations are dispatched through :mod:`repro.runner` (see the
session ``runner`` fixture in ``conftest.py`` for the knobs), which is
bit-identical to the serial ``AffectedSweepStudy.run`` path.
"""

from repro.experiments import StudyConfig, series_to_csv
from repro.runner import run_affected_sweep


def study_config(profile) -> StudyConfig:
    return StudyConfig(
        k=profile.k,
        hosts_per_edge=profile.hosts_per_edge,
        num_coflows=profile.num_coflows,
        duration=profile.duration,
        seed=97,
        failure_seed=5,
        failure_samples=profile.failure_samples,
    )


def render(results, kind: str) -> tuple[str, str]:
    text = f"Figure 1({'a' if kind == 'node' else 'b'})\n\n" + "\n\n".join(
        results[arch].table() for arch in sorted(results)
    )
    series = {}
    for arch, result in results.items():
        series[f"{arch}/flows"] = [(p.rate, p.flow_fraction) for p in result.points]
        series[f"{arch}/coflows"] = [
            (p.rate, p.coflow_fraction) for p in result.points
        ]
    return text, series_to_csv(series, x_name="failure_rate", y_name="fraction")


def assert_shape(results) -> None:
    for arch, result in results.items():
        flow_curve = [p.flow_fraction for p in result.points]
        coflow_curve = [p.coflow_fraction for p in result.points]
        # coflow impact dominates flow impact at every rate (amplification)
        for p in result.points:
            assert p.coflow_fraction > p.flow_fraction, f"{arch}: no amplification"
        # curves rise with the failure rate; adjacent points may jitter
        # when two rates round to the same failure *count* at quick scale
        assert all(a <= b + 0.06 for a, b in zip(flow_curve, flow_curve[1:]))
        assert flow_curve[-1] > flow_curve[0]
        assert coflow_curve[-1] > coflow_curve[0]
        # amplification within the paper's 3.3x-90x band at the low end
        assert 2.0 < results[arch].points[0].amplification < 120.0


def test_fig1a_affected_vs_node_failures(benchmark, emit, profile, runner):
    outcome = benchmark.pedantic(
        run_affected_sweep,
        args=(study_config(profile), "node"),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    results = outcome.values
    text, csv = render(results, "node")
    emit("fig1a_affected_node", text, csv=csv)
    print(outcome.summary.table())
    assert_shape(results)
    # a single switch failure hits a sizable share of coflows (paper: ~30%)
    assert results["fat-tree"].worst_single > 0.10
