"""Ablation — sharing backups vs dedicating them (the core design choice).

ShareBackup's bet is that a *shared* pool of n spares per k/2-switch
failure group gives practically the same protection as 1:1 dedicated
spares at a fraction of the cost.  This bench quantifies both sides:

* **protection**: Monte-Carlo over independent switch outages at the
  measured 99.99% availability — the probability that any failure group
  ever has more simultaneous failures than spares, for n = 0..3,
  cross-checked against the closed-form binomial tail;
* **cost**: the extra cost of ShareBackup at each n vs 1:1 backup.

Expected shape: n=1 already drives residual group risk below ~1e-5 per
group (per the §5.1 argument) while costing ~45× less than 1:1 backup.
"""

import numpy as np
import pytest

from repro.core import ShareBackupController, ShareBackupNetwork
from repro.cost import E_DC, one_to_one_extra_cost, sharebackup_extra_cost
from repro.failures import DEFAULT_FAILURE_MODEL
from repro.rng import ensure_rng


def monte_carlo_group_risk(
    group_size: int, spares: int, trials: int, rng: np.random.Generator
) -> float:
    """Fraction of trials where > ``spares`` of ``group_size`` devices are
    down simultaneously (devices independently down w.p. unavailability)."""
    p = DEFAULT_FAILURE_MODEL.unavailability
    downs = rng.binomial(group_size, p, size=trials)
    return float(np.mean(downs > spares))


def run(k: int, trials: int, seed: int = 42) -> list[dict]:
    rng = ensure_rng(seed)
    group = k // 2
    rows = []
    one_to_one = one_to_one_extra_cost(k, E_DC).total
    for n in (0, 1, 2, 3):
        analytic = DEFAULT_FAILURE_MODEL.concurrent_failure_probability(group, n)
        simulated = monte_carlo_group_risk(group, n, trials, rng)
        cost = sharebackup_extra_cost(k, n, E_DC).total if n else 0.0
        rows.append(
            {
                "n": n,
                "analytic_risk": analytic,
                "simulated_risk": simulated,
                "cost_vs_1to1": cost / one_to_one if n else 0.0,
            }
        )
    return rows


def test_ablation_sharing(benchmark, emit):
    k, trials = 48, 2_000_000
    rows = benchmark.pedantic(run, args=(k, trials), rounds=1, iterations=1)
    lines = [
        f"Ablation: shared pool vs dedicated backup (k={k}, group size {k//2}, "
        f"availability {DEFAULT_FAILURE_MODEL.availability:.2%})",
        f"{'n':>3}{'P(group exceeds spares)':>26}{'monte-carlo':>14}{'cost / 1:1':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>3}{row['analytic_risk']:>26.3e}"
            f"{row['simulated_risk']:>14.3e}{row['cost_vs_1to1']:>12.3f}"
        )
    emit("ablation_sharing", "\n".join(lines))

    by_n = {r["n"]: r for r in rows}
    # without spares the group is exposed at ~group_size x device risk
    assert by_n[0]["analytic_risk"] > 1e-3
    # one shared spare collapses the risk by >2 orders of magnitude
    assert by_n[1]["analytic_risk"] < by_n[0]["analytic_risk"] / 100
    # at a tiny fraction of dedicated backup's cost
    assert by_n[1]["cost_vs_1to1"] < 0.05
    # monte-carlo agrees with the closed form where it has resolution
    assert by_n[0]["simulated_risk"] == pytest.approx(
        by_n[0]["analytic_risk"], rel=0.25
    )


def test_ablation_sharing_live_exhaustion(benchmark, emit):
    """Live cross-check on a real network: with n=1 a group absorbs any
    single failure; a *double* failure inside one group is the (rare)
    case the analysis prices in."""
    net = ShareBackupNetwork(8, n=1)
    ctrl = ShareBackupController(net)
    assert benchmark.pedantic(
        ctrl.handle_node_failure, args=("C.0",), rounds=1, iterations=1
    ).fully_recovered
    assert ctrl.handle_node_failure("C.1").fully_recovered  # other group
    second_same_group = ctrl.handle_node_failure("C.4")  # group of C.0
    assert not second_same_group.fully_recovered
    ctrl.repair("C.0")
    assert ctrl.handle_node_failure("C.4").fully_recovered  # now restocked
    emit(
        "ablation_sharing_live",
        "n=1: single failures per group always recovered; double failure in "
        "one group refused until repair restocks the pool (as priced).",
    )
