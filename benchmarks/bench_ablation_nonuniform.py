"""Ablation — non-uniform failure groups (the paper's §6 extension).

Edge switches are the critical layer: racks are single-homed, so an
unrecovered edge failure severs hosts outright, while an unrecovered
aggregation/core failure only degrades to rerouting-grade service.
This bench compares provisioning plans at equal or lower cost:

* uniform n=1 / n=2 baselines;
* "edge-heavy" {edge: 2, agg: 1, core: 1} — concentrates the second
  spare where failure hurts most.

Measured: per-layer residual group risk (binomial at 99.99%
availability), the expected number of severed racks per unrecovered
failure, and cost.  Expected shape: edge-heavy provisioning achieves
uniform-n=2 protection where it matters at a cost strictly between
the uniform plans.
"""

import pytest

from repro.core import ShareBackupNetwork
from repro.cost import E_DC
from repro.cost.models import sharebackup_nonuniform_extra_cost
from repro.failures import DEFAULT_FAILURE_MODEL


PLANS = {
    "uniform n=1": {"edge": 1, "agg": 1, "core": 1},
    "uniform n=2": {"edge": 2, "agg": 2, "core": 2},
    "edge-heavy": {"edge": 2, "agg": 1, "core": 1},
}


def evaluate(k: int) -> dict[str, dict]:
    group = k // 2
    model = DEFAULT_FAILURE_MODEL
    out = {}
    for name, plan in PLANS.items():
        edge_risk = model.concurrent_failure_probability(group, plan["edge"])
        agg_risk = model.concurrent_failure_probability(group, plan["agg"])
        core_risk = model.concurrent_failure_probability(group, plan["core"])
        cost = sharebackup_nonuniform_extra_cost(
            k, plan["edge"], plan["agg"], plan["core"], E_DC
        ).total
        out[name] = {
            "edge_risk": edge_risk,
            "agg_risk": agg_risk,
            "core_risk": core_risk,
            "cost": cost,
        }
    return out


def test_ablation_nonuniform(benchmark, emit):
    k = 48
    results = benchmark.pedantic(evaluate, args=(k,), rounds=1, iterations=1)
    lines = [
        f"Ablation: non-uniform provisioning (k={k})",
        f"{'plan':<14}{'edge-group risk':>17}{'agg risk':>12}{'core risk':>12}"
        f"{'extra cost ($)':>16}",
    ]
    for name, row in results.items():
        lines.append(
            f"{name:<14}{row['edge_risk']:>17.2e}{row['agg_risk']:>12.2e}"
            f"{row['core_risk']:>12.2e}{row['cost']:>16,.0f}"
        )
    emit("ablation_nonuniform", "\n".join(lines))

    u1, u2, eh = (
        results["uniform n=1"],
        results["uniform n=2"],
        results["edge-heavy"],
    )
    # edge-heavy buys uniform-n=2 protection on the critical layer...
    assert eh["edge_risk"] == u2["edge_risk"] < u1["edge_risk"]
    # ...at a cost strictly between the uniform plans
    assert u1["cost"] < eh["cost"] < u2["cost"]


def test_nonuniform_network_behaves(benchmark, emit):
    """The edge-heavy plan on a live network: edge group absorbs a double
    failure that the uniform n=1 plan cannot."""
    from repro.core import ShareBackupController

    net = benchmark.pedantic(
        ShareBackupNetwork,
        args=(6,),
        kwargs={"n": {"edge": 2, "agg": 1, "core": 1}},
        rounds=1,
        iterations=1,
    )
    ctrl = ShareBackupController(net)
    assert ctrl.handle_node_failure("E.0.0").fully_recovered
    assert ctrl.handle_node_failure("E.0.1").fully_recovered  # second spare
    assert not ctrl.handle_node_failure("E.0.2").fully_recovered  # pool empty
    assert ctrl.handle_node_failure("A.1.0").fully_recovered  # agg unaffected
    net.verify_fattree_equivalence()
    emit(
        "ablation_nonuniform_live",
        "edge-heavy plan: double edge failure in one pod absorbed; "
        "agg/core layers keep single-spare protection.",
    )
