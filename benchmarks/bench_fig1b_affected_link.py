"""Figure 1(b) — % of flows and coflows affected vs **link** failure rate.

Same pipeline as Figure 1(a) with link failures; additionally asserts
the relationship the two panels show together: a single link failure
affects fewer coflows than a single node failure (the paper's in-text
numbers: 17% vs 29.6%), because one switch carries many links.
"""

from bench_fig1a_affected_node import assert_shape, render, study_config

from repro.runner import run_affected_sweep


def test_fig1b_affected_vs_link_failures(benchmark, emit, profile, runner):
    outcome = benchmark.pedantic(
        run_affected_sweep,
        args=(study_config(profile), "link"),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    results = outcome.values
    text, csv = render(results, "link")
    emit("fig1b_affected_link", text, csv=csv)
    print(outcome.summary.table())
    assert_shape(results)


def test_fig1ab_single_node_beats_single_link(benchmark, emit, profile, runner):
    config = study_config(profile)
    node = benchmark.pedantic(
        run_affected_sweep,
        args=(config, "node"),
        kwargs={"rates": (0.01,), "runner": runner},
        rounds=1,
        iterations=1,
    ).values
    link = run_affected_sweep(config, "link", rates=(0.01,), runner=runner).values
    node_avg = node["fat-tree"].mean_single
    link_avg = link["fat-tree"].mean_single
    emit(
        "fig1ab_single_failure_comparison",
        f"mean affected coflows, single node failure: {node_avg:.1%}\n"
        f"mean affected coflows, single link failure: {link_avg:.1%}\n"
        "(paper's in-text points: 29.6% vs 17%)",
    )
    assert node_avg > link_avg
