"""Section 5.1 — capacity to handle failures (in-text numbers).

Regenerates the capacity analysis: n concurrent switch failures per
failure group, up to k·n link failures, backup ratio vs device failure
rate, and binomial residual risk; then *exercises* the guarantee on a
live network: every failure group absorbs exactly n concurrent switch
failures, the (n+1)-th is refused, and concurrent link failures consume
one spare per faulty end after diagnosis.
"""

import pytest

from repro.core import ShareBackupController, ShareBackupNetwork
from repro.failures import DEFAULT_FAILURE_MODEL


def render_capacity_table() -> str:
    model = DEFAULT_FAILURE_MODEL
    lines = [
        "Section 5.1 capacity analysis",
        f"{'k':>4}{'n':>3}{'group':>7}{'backup ratio':>14}"
        f"{'ratio/failure-rate':>20}{'P(>n concurrent)':>18}",
    ]
    for k, n in ((16, 1), (48, 1), (48, 4), (58, 1), (64, 2)):
        group = k // 2
        ratio = n / group
        over = ratio / model.unavailability
        risk = model.concurrent_failure_probability(group, n)
        lines.append(
            f"{k:>4}{n:>3}{group:>7}{ratio:>13.2%}{over:>19.0f}x{risk:>18.2e}"
        )
    return "\n".join(lines)


def exercise_guarantee(k: int, n: int) -> dict[str, int]:
    """Push every failure group to its spare limit on a real network."""
    net = ShareBackupNetwork(k, n=n)
    ctrl = ShareBackupController(net)
    absorbed = refused = 0
    for group_id in sorted(net.groups):
        group = net.groups[group_id]
        for i in range(n):
            report = ctrl.handle_node_failure(group.logical_slots[i])
            assert report.fully_recovered
            absorbed += 1
        overflow = ctrl.handle_node_failure(group.logical_slots[n])
        assert not overflow.fully_recovered
        refused += 1
    net.verify_fattree_equivalence()  # everything recovered stays consistent
    return {"absorbed": absorbed, "refused": refused, "groups": len(net.groups)}


def test_sec51_capacity(benchmark, emit):
    table = render_capacity_table()

    outcome = benchmark.pedantic(
        exercise_guarantee, args=(6, 2), rounds=1, iterations=1
    )
    emit(
        "sec51_capacity",
        table
        + "\n\nlive guarantee exercise (k=6, n=2): "
        + f"{outcome['absorbed']} failures absorbed "
        f"({outcome['groups']} groups x n), "
        f"{outcome['refused']} overflow failures correctly refused",
    )

    # paper checkpoint: k=48, n=1 -> 4.17% backup ratio, >400x failure rate
    ratio = 1 / 24
    assert ratio == pytest.approx(0.0417, abs=1e-4)
    assert ratio / DEFAULT_FAILURE_MODEL.unavailability > 400
    assert outcome["absorbed"] == outcome["groups"] * 2
    assert outcome["refused"] == outcome["groups"]


def test_sec51_time_domain_availability(benchmark, emit, runner):
    """§5.1 made temporal: a 200-simulated-year Monte Carlo of one k=48
    failure group with repair dynamics (MTBF from 99.99% availability,
    log-normal minutes-scale repairs).  The time-domain exposure
    probability must reproduce the snapshot binomial.  Dispatched as a
    runner task so the Monte Carlo result is cached content-addressed."""
    from repro.runner import AvailabilityPoint, run_availability_sweep

    outcome = benchmark.pedantic(
        run_availability_sweep,
        args=([AvailabilityPoint(24, 1, years=200, seed=4)],),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    result = outcome.values[0]
    analytic = DEFAULT_FAILURE_MODEL.concurrent_failure_probability(24, 1)
    mean_episode = (
        result.exposed_time / result.exposure_episodes
        if result.exposure_episodes
        else 0.0
    )
    emit(
        "sec51_time_domain",
        f"200-year Monte Carlo, group of 24, n=1:\n"
        f"  switch failures simulated:   {result.failures:,}\n"
        f"  exposure episodes:           {result.exposure_episodes} "
        f"({result.episodes_per_year:.2f}/year, mean {mean_episode:.0f}s each)\n"
        f"  exposure probability:        {result.exposure_probability:.2e}\n"
        f"  binomial snapshot (paper):   {analytic:.2e}",
    )
    assert result.exposure_probability == pytest.approx(analytic, rel=0.5)


def test_sec51_link_failure_capacity(benchmark, emit):
    """kn link failures rooted at n switches per group: replace-both then
    exonerate-one leaves the group able to absorb repeated link failures."""
    net = benchmark.pedantic(
        ShareBackupNetwork, args=(6,), kwargs={"n": 1}, rounds=1, iterations=1
    )
    ctrl = ShareBackupController(net)
    # Three successive link failures on different uplinks of pod 0, each
    # with the *aggregation* side at fault; the edge side is exonerated
    # each time, so the edge group never runs out.
    for j, (edge, agg) in enumerate(
        (("E.0.0", "A.0.0"), ("E.0.1", "A.0.1"), ("E.0.2", "A.0.2"))
    ):
        report = ctrl.handle_link_failure(
            (edge, ("up", 0)),
            (agg, ("down", 0)),
            now=float(j),
            true_faulty_interfaces=(((agg, ("down", 0))),),
        )
        if j == 0:
            assert report.fully_recovered
        ctrl.run_pending_diagnoses()
        net.verify_fattree_equivalence()
    edge_group = net.group_of("E.0.0")
    assert edge_group.available_spares == 1  # exoneration kept it stocked
    emit(
        "sec51_link_capacity",
        "three successive link failures in one pod handled with n=1:\n"
        + "\n".join(ctrl.log),
    )
