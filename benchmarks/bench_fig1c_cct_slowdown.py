"""Figure 1(c) — CCT slowdown under a single failure, with rerouting.

The paper's headline motivation: replay trace partitions against a
single node/link failure ("we simulate the final states after failures
without the transient dynamics") and plot the CDF of per-coflow CCT
slowdown.  Three architectures:

* fat-tree with global optimal rerouting,
* F10 with local (3-hop) rerouting,
* ShareBackup (ours): the failed switch is *replaced*, so the network is
  unchanged and the slowdown distribution collapses to ≈ 1.0.

Shape assertions: rerouting architectures show a slowdown tail
(p90 > 1, max ≥ 2×); ShareBackup's slowdowns stay within the
sub-millisecond recovery window even for an *edge* failure, which no
rerouting scheme can recover at all.  Absolute tail magnitude is load-
and trace-dependent (see EXPERIMENTS.md): the paper's several-hundred-×
extremes come from the Facebook trace's hotspots; the synthetic trace at
~60% utilisation produces a 2–6× tail with the same ordering.

The pipeline lives in :mod:`repro.experiments.slowdown`; failure samples
per architecture are random aggregation/core switches plus the hottest
pod's aggregation switch (the unlucky draw that dominates the paper's
CDF) plus one agg–core link.  Each replay (one fluid simulation) is a
runner task, so ``REPRO_BENCH_JOBS`` parallelises the dominant cost of
this benchmark without changing a single output bit.
"""

from repro.analysis import percentile
from repro.experiments import StudyConfig, cdf_text, cdf_to_csv
from repro.runner import run_slowdown_study


def test_fig1c_cct_slowdown(benchmark, emit, profile, runner):
    config = StudyConfig(
        k=profile.k,
        hosts_per_edge=profile.hosts_per_edge,
        num_coflows=profile.slowdown_num_coflows,
        duration=profile.slowdown_duration,
        seed=13,
        failure_seed=5,
        failure_samples=profile.failure_samples,
    )
    outcome = benchmark.pedantic(
        run_slowdown_study,
        args=(config,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    results = outcome.values
    print(outcome.summary.table())

    lines = [
        "Figure 1(c): CCT slowdown of affected coflows under single failures",
        f"profile={profile.name} (k={profile.k}, "
        f"{profile.oversubscription:.0f}:1 oversubscribed, "
        f"{profile.num_coflows} coflows/partition)",
        "",
    ]
    lines += [digest.row() for digest in results.values()]
    lines.append("\nfat-tree slowdown CDF (finite part):")
    lines.append(cdf_text(results["fat-tree/global"].slowdowns))
    emit(
        "fig1c_cct_slowdown",
        "\n".join(lines),
        csv=cdf_to_csv(
            list(results["fat-tree/global"].slowdowns), label="fattree_slowdown"
        ),
    )

    ft = results["fat-tree/global"]
    f10 = results["f10/local"]
    sb = results["sharebackup"]

    # Rerouting leaves a real slowdown tail...
    assert max(ft.finite) > 2.0
    assert percentile(ft.finite, 90) > 1.05
    assert max(f10.finite) > 1.5
    # ...while ShareBackup's distribution collapses to ~1 with NO
    # never-finished coflows, even though its sample includes an edge
    # failure (unrecoverable for any rerouting scheme).
    assert sb.never_finished == 0, "ShareBackup left coflows unfinished"
    assert max(sb.finite) < 1.05
    assert percentile(sb.finite, 99) < 1.02
