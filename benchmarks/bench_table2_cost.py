"""Table 2 — cost equations and device prices.

Regenerates the cost table for the compared architectures under both
price books and asserts every numeric claim Section 5.2 makes about it.
"""

import pytest

from repro.cost import (
    E_DC,
    O_DC,
    aspen_extra_cost,
    fattree_cost,
    one_to_one_extra_cost,
    relative_extra_cost,
    sharebackup_extra_cost,
)


def render_table(k: int, n: int) -> str:
    lines = [
        f"Table 2 regeneration — k={k}, n={n}",
        f"{'architecture':<22}{'E-DC total ($)':>16}{'O-DC total ($)':>16}",
    ]
    base_e, base_o = fattree_cost(k, E_DC), fattree_cost(k, O_DC)
    lines.append(f"{'fat-tree':<22}{base_e:>16,.0f}{base_o:>16,.0f}")
    rows = [
        ("sharebackup extra", sharebackup_extra_cost(k, n, E_DC).total,
         sharebackup_extra_cost(k, n, O_DC).total),
        ("aspen extra", aspen_extra_cost(k, E_DC).total,
         aspen_extra_cost(k, O_DC).total),
        ("1:1 backup extra", one_to_one_extra_cost(k, E_DC).total,
         one_to_one_extra_cost(k, O_DC).total),
    ]
    for name, e, o in rows:
        lines.append(f"{name:<22}{e:>16,.0f}{o:>16,.0f}")
    lines.append("")
    lines.append(f"prices: a=${E_DC.circuit_port}/{O_DC.circuit_port} "
                 f"per circuit port, "
                 f"b=${E_DC.switch_port} per switch port, "
                 f"c=${E_DC.cable}/{O_DC.cable} per cable")
    return "\n".join(lines)


def test_table2(benchmark, emit):
    k, n = 48, 1
    table = benchmark.pedantic(render_table, args=(k, n), rounds=1, iterations=1)
    emit("table2_cost", table)

    # --- the paper's checkpoints, asserted -----------------------------
    sb_e = sharebackup_extra_cost(k, n, E_DC)
    sb_o = sharebackup_extra_cost(k, n, O_DC)
    assert relative_extra_cost(sb_e, k, E_DC) == pytest.approx(0.067, abs=0.001)
    assert relative_extra_cost(sb_o, k, O_DC) == pytest.approx(0.133, abs=0.001)
    assert aspen_extra_cost(k, E_DC).total / sb_e.total == pytest.approx(6.5, abs=0.1)
    assert aspen_extra_cost(k, O_DC).total / sb_o.total == pytest.approx(3.2, abs=0.1)
    for prices in (E_DC, O_DC):
        assert relative_extra_cost(
            one_to_one_extra_cost(k, prices), k, prices
        ) == pytest.approx(3.0)
