"""Shared best-of-N regression-gate plumbing for the check scripts.

``check_engine.py`` (Fig-1(c) replay medians) and ``check_slo.py``
(service p99s) gate the same way: take the best of a few fresh
measurements on the CI host, compare it against the committed
baseline, and fail the job only past a generous multiplier read from
an environment variable.  Best-of-N against a loose gate is
deliberate — shared CI runners are noisy, and a gate that cries wolf
gets deleted; a genuine regression blows through 2× on every attempt,
scheduler jitter does not survive best-of-3.

This module holds the one copy of that policy: the attempt count, the
default multiplier, the env-var parsing (with its ``> 1.0`` sanity
check), and the one-line verdict format the CI log greps for.
"""

import os

__all__ = ["ATTEMPTS", "DEFAULT_GATE", "gate_from_env", "verdict"]

#: Fresh measurements per metric; the best one speaks for the host.
ATTEMPTS = 3

#: Default worsening multiplier that fails a gate.
DEFAULT_GATE = 2.0


def gate_from_env(var: str, default: float = DEFAULT_GATE) -> float:
    """The gate multiplier from environment variable ``var``.

    Empty/unset falls back to ``default``; a value ≤ 1.0 would fail
    every measurement (or none meaningfully) and aborts instead.
    """
    raw = os.environ.get(var, "")
    if not raw:
        return default
    value = float(raw)
    if value <= 1.0:
        raise SystemExit(f"{var} must be > 1.0, got {value}")
    return value


def verdict(
    label: str,
    fresh: float,
    committed: float,
    gate: float,
    unit: str = "s",
    scale: float = 1.0,
) -> bool:
    """Print one gate line; returns True when the metric regressed.

    ``fresh``/``committed`` are in base units (seconds); ``scale`` and
    ``unit`` only affect the printed figures (``1e3``/``"ms"`` for the
    service p99s).  A non-positive committed baseline can never pass —
    it means the baseline artifact is corrupt, not that the code is
    infinitely fast.
    """
    ratio = fresh / committed if committed > 0 else float("inf")
    regressed = ratio >= gate
    status = "REGRESSION" if regressed else "ok"
    print(
        f"{status}: {label} {fresh * scale:.3f} {unit} vs committed "
        f"{committed * scale:.3f} {unit} ({ratio:.2f}x, gate {gate:.1f}x)"
    )
    return regressed
