"""Library micro-benchmarks (wall-clock performance of the hot primitives).

Unlike the experiment benches (one-shot pedantic runs that regenerate the
paper's artifacts), these exercise pytest-benchmark properly — many
rounds, statistics — over the primitives that dominate reproduction
runtime: the max-min allocator, ECMP selection, circuit failover, path
enumeration, and combined-table lookup.  They guard against performance
regressions (the allocator once cost 2.6× end-to-end before its segment
hash was fixed; see docs/simulator.md).
"""

import numpy as np

from repro.core import ImpersonationTables, ShareBackupNetwork
from repro.routing import EcmpSelector, Packet
from repro.routing.paths import enumerate_edge_paths
from repro.simulation import max_min_rates
from repro.topology import FatTree


def _allocation_problem(num_flows: int, seed: int = 7):
    """A fat-tree-shaped random allocation instance."""
    rng = np.random.default_rng(seed)
    num_segments = max(8, num_flows // 2)
    capacities = {s: 10e9 for s in range(num_segments)}
    flow_segments = {
        f: tuple(
            int(x) for x in rng.choice(num_segments, size=6, replace=False)
        )
        for f in range(num_flows)
    }
    return flow_segments, capacities


def test_perf_maxmin_small(benchmark):
    flow_segments, capacities = _allocation_problem(100)
    rates = benchmark(max_min_rates, flow_segments, capacities)
    assert len(rates) == 100


def test_perf_maxmin_large(benchmark):
    flow_segments, capacities = _allocation_problem(2000)
    rates = benchmark(max_min_rates, flow_segments, capacities)
    assert len(rates) == 2000


def test_perf_ecmp_selection(benchmark):
    tree = FatTree(16)
    selector = EcmpSelector(tree)
    hosts = tree.all_host_names()

    counter = iter(range(10**9))

    def select():
        label = next(counter)
        return selector.select(hosts[0], hosts[-1], label)

    path = benchmark(select)
    assert path is not None and path.hops == 6


def test_perf_path_enumeration_k16(benchmark):
    tree = FatTree(16)
    middles = benchmark(enumerate_edge_paths, tree, "E.0.0", "E.15.7")
    assert len(middles) == 64


def test_perf_failover(benchmark):
    """One full circuit failover, including group bookkeeping.

    Rounds each build their own victim rotation by repairing afterwards,
    so the benchmark can iterate.
    """
    net = ShareBackupNetwork(8, n=1)
    group = net.group_of("A.0.0")

    def failover_and_recycle():
        spare = group.allocate_spare()
        touched, _latency = net.failover("A.0.0", spare)
        # recycle: the displaced switch becomes the spare again
        displaced = sorted(group.offline)[0]
        group.reinstate(displaced)
        return touched

    touched = benchmark(failover_and_recycle)
    assert touched == 8


def test_perf_combined_table_lookup(benchmark):
    tree = FatTree(16)
    table = ImpersonationTables(tree).combined_edge_table(0)
    plan = tree.plan
    pkt = Packet(
        plan.host_address(0, 0, 0),
        plan.host_address(7, 3, 2),
        vlan=100,  # edge 0's VLAN
    )
    port = benchmark(table.lookup, pkt)
    assert port.startswith("up")


def test_perf_network_build(benchmark):
    """Full k=8 ShareBackup build (all cabling + circuits)."""
    net = benchmark(ShareBackupNetwork, 8, 1)
    assert net.num_circuit_switches == 96
