"""Library micro-benchmarks (wall-clock performance of the hot primitives).

Unlike the experiment benches (one-shot pedantic runs that regenerate the
paper's artifacts), these exercise pytest-benchmark properly — many
rounds, statistics — over the primitives that dominate reproduction
runtime: the max-min allocator, ECMP selection, circuit failover, path
enumeration, and combined-table lookup.  They guard against performance
regressions (the allocator once cost 2.6× end-to-end before its segment
hash was fixed; see docs/simulator.md).
"""

import numpy as np
import pytest

from repro.core import ImpersonationTables, ShareBackupNetwork
from repro.rng import ensure_rng
from repro.routing import EcmpSelector, Packet
from repro.routing.paths import enumerate_edge_paths
from repro.simulation import allocate_dense, max_min_rates
from repro.simulation.columnar import ColumnarWorkspace, pack_paths, waterfill
from repro.simulation.fairshare import AllocatorWorkspace
from repro.topology import FatTree


def _allocation_problem(num_flows: int, seed: int = 7):
    """A fat-tree-shaped random allocation instance."""
    rng = ensure_rng(seed)
    num_segments = max(8, num_flows // 2)
    capacities = {s: 10e9 for s in range(num_segments)}
    flow_segments = {
        f: tuple(
            int(x) for x in rng.choice(num_segments, size=6, replace=False)
        )
        for f in range(num_flows)
    }
    return flow_segments, capacities


def test_perf_maxmin_small(benchmark):
    flow_segments, capacities = _allocation_problem(100)
    rates = benchmark(max_min_rates, flow_segments, capacities)
    assert len(rates) == 100


def test_perf_maxmin_large(benchmark):
    flow_segments, capacities = _allocation_problem(2000)
    rates = benchmark(max_min_rates, flow_segments, capacities)
    assert len(rates) == 2000


def _dense_problem(num_flows: int, seed: int = 7):
    """The same instance as :func:`_allocation_problem`, pre-interned the
    way the engine holds it: dense ids, flat capacity list."""
    flow_segments, capacities = _allocation_problem(num_flows, seed)
    caps = [capacities[s] for s in range(len(capacities))]
    pairs = list(flow_segments.items())
    return pairs, caps


def test_perf_allocate_dense_large(benchmark):
    """The engine's actual hot call: dense core + reused workspace (no
    interning, no per-call array allocation — what a reallocation costs)."""
    pairs, caps = _dense_problem(2000)
    workspace = AllocatorWorkspace(len(caps))
    rates = benchmark(allocate_dense, pairs, caps, workspace)
    assert len(rates) == 2000


def test_perf_allocate_dense_single_component(benchmark):
    """One dense component through the ``assume_connected`` fast path —
    the shape the incremental engine feeds per dirty component."""
    pairs, caps = _dense_problem(2000)
    workspace = AllocatorWorkspace(len(caps))

    def solve():
        return allocate_dense(pairs, caps, workspace, assume_connected=True)

    rates = benchmark(solve)
    assert len(rates) == 2000


def test_perf_allocate_dense_many_components(benchmark):
    """200 disjoint 10-flow components: partition + per-component solves
    (the cost profile of a lightly-coupled trace)."""
    num_comps, flows_per, segs_per = 200, 10, 8
    pairs = []
    caps = [10e9] * (num_comps * segs_per)
    seed = 7
    rng = ensure_rng(seed)
    fid = 0
    for c in range(num_comps):
        base = c * segs_per
        for _ in range(flows_per):
            path = tuple(
                int(base + s)
                for s in rng.choice(segs_per, size=4, replace=False)
            )
            pairs.append((fid, path))
            fid += 1
    workspace = AllocatorWorkspace(len(caps))
    rates = benchmark(allocate_dense, pairs, caps, workspace)
    assert len(rates) == num_comps * flows_per


def _columnar_problem(num_flows: int, seed: int = 7):
    """The same instance again, packed the way the vectorized backend
    holds it: padded segment matrix, capacity array, reused workspace,
    and the incrementally-maintained incidence."""
    pairs, caps = _dense_problem(num_flows, seed)
    caps_arr = np.asarray(caps, dtype=np.float64)
    matrix = pack_paths([path for _, path in pairs], len(caps))
    workspace = ColumnarWorkspace(len(caps))
    incidence = np.bincount(matrix.ravel(), minlength=len(caps) + 1)
    return matrix, caps_arr, workspace, incidence


def test_perf_waterfill_large(benchmark):
    """The batched water-fill kernel alone on the 2000-flow instance —
    the vectorized engine's per-reallocation cost floor."""
    matrix, caps, workspace, incidence = _columnar_problem(2000)
    rates = benchmark(waterfill, matrix, caps, workspace, incidence)
    assert rates.shape[0] == 2000


@pytest.mark.parametrize("backend", ["oracle", "incremental", "vectorized"])
def test_perf_reallocation_backend(benchmark, backend):
    """One full reallocation of the 2000-flow instance per backend, in
    exactly the shape each engine mode feeds its allocator: the oracle
    re-interns from dicts, the incremental solves the dense pre-interned
    problem with a reused workspace, the vectorized one runs the batched
    kernel over the packed matrix.  All three produce bit-identical
    rates; the spread between their rounds is the engine-mode tradeoff
    quantified in docs/simulator.md."""
    if backend == "oracle":
        flow_segments, capacities = _allocation_problem(2000)
        rates = benchmark(max_min_rates, flow_segments, capacities)
        assert len(rates) == 2000
    elif backend == "incremental":
        pairs, caps = _dense_problem(2000)
        workspace = AllocatorWorkspace(len(caps))
        rates = benchmark(allocate_dense, pairs, caps, workspace)
        assert len(rates) == 2000
    else:
        matrix, caps, workspace, incidence = _columnar_problem(2000)
        rates = benchmark(waterfill, matrix, caps, workspace, incidence)
        assert rates.shape[0] == 2000


def test_perf_ecmp_selection(benchmark):
    tree = FatTree(16)
    selector = EcmpSelector(tree)
    hosts = tree.all_host_names()

    counter = iter(range(10**9))

    def select():
        label = next(counter)
        return selector.select(hosts[0], hosts[-1], label)

    path = benchmark(select)
    assert path is not None and path.hops == 6


def test_perf_path_enumeration_k16(benchmark):
    tree = FatTree(16)
    middles = benchmark(enumerate_edge_paths, tree, "E.0.0", "E.15.7")
    assert len(middles) == 64


def test_perf_failover(benchmark):
    """One full circuit failover, including group bookkeeping.

    Rounds each build their own victim rotation by repairing afterwards,
    so the benchmark can iterate.
    """
    net = ShareBackupNetwork(8, n=1)
    group = net.group_of("A.0.0")

    def failover_and_recycle():
        spare = group.allocate_spare()
        # This bench times the raw failover primitive *below* the
        # controller on purpose — the controller's retry/degradation
        # wrapper is measured separately by the chaos benches.
        touched, _latency = net.failover("A.0.0", spare)  # repro: noqa[CHS001]
        # recycle: the displaced switch becomes the spare again
        displaced = sorted(group.offline)[0]
        group.reinstate(displaced)
        return touched

    touched = benchmark(failover_and_recycle)
    assert touched == 8


def test_perf_combined_table_lookup(benchmark):
    tree = FatTree(16)
    table = ImpersonationTables(tree).combined_edge_table(0)
    plan = tree.plan
    pkt = Packet(
        plan.host_address(0, 0, 0),
        plan.host_address(7, 3, 2),
        vlan=100,  # edge 0's VLAN
    )
    port = benchmark(table.lookup, pkt)
    assert port.startswith("up")


def test_perf_network_build(benchmark):
    """Full k=8 ShareBackup build (all cabling + circuits)."""
    net = benchmark(ShareBackupNetwork, 8, 1)
    assert net.num_circuit_switches == 96
