"""Lint pipeline benchmark: cold vs warm wall time, with a CI budget.

Runs the full ``repro lint`` pipeline (per-file + whole-program rules
over the default targets) twice against a fresh cache directory:

* **cold** — empty cache, every corpus file parsed and summarised;
* **warm** — identical invocation, which must parse *nothing*: the
  incremental cache replays per-file diagnostics and the project model
  is linked from cached summaries.

A second, smaller **numeric** round lints just ``src/repro/simulation``
(per-file pass only): the numeric kernel analyzer (NUM001–NUM004 fact
extraction) runs during summarisation on every parse, so this round
tracks what it adds to a cold parse of the package that owns the
kernels — and that a warm run replays the facts without re-parsing.

The artifact lands at the repo root as ``BENCH_lint.json`` and the
script exits non-zero when the warm run exceeds the budget — CI wires
this into the lint job so a regression that breaks cache replay (or
makes the project pass quadratic) fails the build rather than slowly
rotting.  The budget is deliberately generous: it exists to catch
"warm run re-parses the world", not 10% noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py [--budget-s 10]

Unlike the simulation benches this is a plain script, not a
pytest-benchmark module: the measurement is two wall-clock samples of
one deterministic pipeline, and the budget check must be able to fail
the CI job directly.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_lint.json"

#: Warm full-repo lint must finish inside this (seconds).  A healthy
#: warm run is well under a second; the 10x headroom absorbs slow CI
#: runners while still catching a broken cache (which costs a full
#: re-parse and a visibly larger number).
DEFAULT_BUDGET_S = 10.0


def _timed_lint(
    cache_dir: Path,
    targets: list[Path] | None = None,
    project: bool = True,
) -> tuple[float, object]:
    from repro.checks import lint_paths

    if targets is None:
        targets = [REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"]
    targets = [t for t in targets if t.exists()]
    start = time.perf_counter()
    result = lint_paths(targets, cache_dir=cache_dir, project=project)
    return time.perf_counter() - start, result


def run(budget_s: float, output: Path) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-bench-lint-") as tmp:
        cache_dir = Path(tmp) / "lint-cache"
        cold_s, cold = _timed_lint(cache_dir)
        warm_s, warm = _timed_lint(cache_dir)

    # Numeric round: the simulation package alone, per-file pass only.
    # Kernel fact extraction (the numeric abstract interpreter) runs
    # inside summarize() on every parse, so the cold number isolates
    # what NUM analysis adds to the package that owns the kernels, and
    # the warm number proves the facts replay from cache.
    with tempfile.TemporaryDirectory(prefix="repro-bench-lint-num-") as tmp:
        cache_dir = Path(tmp) / "numeric-cache"
        sim = [REPO_ROOT / "src" / "repro" / "simulation"]
        num_cold_s, num_cold = _timed_lint(cache_dir, sim, project=False)
        num_warm_s, num_warm = _timed_lint(cache_dir, sim, project=False)

    failed = False
    for label, stats in (("warm", warm.stats), ("numeric warm", num_warm.stats)):
        if stats.parsed_files != 0:
            print(
                f"FAIL: {label} lint parsed {stats.parsed_files} files; "
                "the incremental cache is not replaying",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1

    within_budget = warm_s <= budget_s
    artifact = {
        "bench": "lint",
        "budget_s": budget_s,
        "within_budget": within_budget,
        "cold": {"wall_s": round(cold_s, 4), **cold.stats.as_dict()},
        "warm": {"wall_s": round(warm_s, 4), **warm.stats.as_dict()},
        "diagnostics": len(warm.diagnostics),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "numeric": {
            "targets": "src/repro/simulation",
            "cold": {
                "wall_s": round(num_cold_s, 4),
                **num_cold.stats.as_dict(),
            },
            "warm": {
                "wall_s": round(num_warm_s, 4),
                **num_warm.stats.as_dict(),
            },
            "speedup": (
                round(num_cold_s / num_warm_s, 2) if num_warm_s > 0 else None
            ),
        },
    }
    output.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")

    print(
        f"lint bench: cold {cold_s * 1000:.0f} ms "
        f"({cold.stats.parsed_files} files parsed), "
        f"warm {warm_s * 1000:.0f} ms (0 parsed), "
        f"budget {budget_s:.1f} s -> "
        + ("OK" if within_budget else "OVER BUDGET")
    )
    print(
        f"numeric round (simulation pkg): cold {num_cold_s * 1000:.0f} ms "
        f"({num_cold.stats.parsed_files} files parsed), "
        f"warm {num_warm_s * 1000:.0f} ms (0 parsed)"
    )
    if not within_budget:
        print(
            f"FAIL: warm lint took {warm_s:.2f} s > budget {budget_s:.1f} s",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget-s",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="warm-run wall-time budget in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=BENCH_JSON,
        help="artifact path (default: repo-root BENCH_lint.json)",
    )
    args = parser.parse_args(argv)
    return run(args.budget_s, args.output)


if __name__ == "__main__":
    sys.exit(main())
