"""Service SLO benchmark: decision latency under probe-storm load.

Drives the live recovery service (wall clock) with the ISSUE's floor
load — a synthetic fleet of 10,000 heartbeating switches and a burst of
1,024 concurrent failure reports round-robined over a real k=8, n=2
ShareBackup network — and distils every submission→decision latency
into the p50/p99/p999 summary recorded at the repo root as
``BENCH_service.json``.

Conventions follow ``benchmarks/conftest.py``: the load test is
replayed a handful of times via ``benchmark.pedantic`` (each round is a
fresh event loop, controller, and fleet), the artifact records the
median-by-p99 round plus every round's percentiles, and under
``--benchmark-disable`` (the CI smoke job) one round still runs for
correctness but the artifact is left untouched.  Target order is seeded
(:func:`repro.rng.derive_seed`); only the measured latencies belong to
the host.  ``REPRO_BENCH_PROFILE=full`` doubles the fleet and runs four
failure waves instead of one.
"""

import json
import os
from pathlib import Path

from repro.service import (
    FailoverBenchConfig,
    LoadTestConfig,
    run_failover_benchmark,
    run_load_test,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_service.json"

PROFILES = {
    # The acceptance floor: >=10k switches, >=1k concurrent failures.
    "quick": LoadTestConfig(
        k=8, n=2, switches=10_000, failures=1_024, wave_size=1_024, seed=0
    ),
    "full": LoadTestConfig(
        k=8, n=2, switches=20_000, failures=4_096, wave_size=1_024, seed=0
    ),
}

#: The failover round: crash the primary mid-batch, measure the
#: crash→first-post-takeover-decision latency (election + WAL resume).
FAILOVER = FailoverBenchConfig(
    k=6, n=1, trials=5, failures_per_trial=32, crash_after=6, seed=0
)

ROUNDS = 5


def _config():
    profile = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    return PROFILES.get(profile, PROFILES["quick"]), profile


def _check_failover(result):
    """The qualitative bar for the failover round."""
    config = result.config
    assert result.errors == 0
    assert len(result.latencies) == config.trials
    assert all(latency >= 0.0 for latency in result.latencies)
    # Every trial crashed once (epoch 1 → 2) and still decided every
    # submitted failure: the takeover lost and doubled nothing.
    assert result.final_epochs == (2,) * config.trials
    assert result.decisions == config.trials * config.failures_per_trial
    summary = result.summary()
    assert summary["p50"] <= summary["p99"] <= summary["max"]


def _check(result, config):
    """The qualitative bar every round must clear."""
    assert result.failures_submitted == config.failures
    assert result.failures_rejected == 0
    assert result.decisions == config.failures  # one decision per report
    assert result.errors == 0
    latency = result.latency
    assert latency["p50"] <= latency["p99"] <= latency["p999"]
    assert latency["p999"] <= latency["max"]
    # The conservation law held under the storm, on both queues.
    for queue in (result.heartbeat_queue, result.report_queue):
        accounted = (
            queue["rejected"] + queue["dropped_oldest"]
            + queue["dequeued"] + queue["depth"]
        )
        assert queue["submitted"] == accounted
    assert result.fleet_heartbeats >= config.switches  # the storm ran


def test_perf_service_slo(benchmark):
    config, profile = _config()
    rounds = []

    def one_round():
        result = run_load_test(config)
        _check(result, config)
        rounds.append(result)
        return result

    benchmark.pedantic(one_round, rounds=ROUNDS)
    # The failover round runs (and is correctness-checked) even under
    # --benchmark-disable: CI's smoke job must exercise the takeover
    # path, it just leaves the artifact untouched.
    failover = run_failover_benchmark(FAILOVER)
    _check_failover(failover)
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return  # --benchmark-disable: correctness only, keep the artifact

    by_p99 = sorted(rounds, key=lambda r: r.latency["p99"])
    representative = by_p99[len(by_p99) // 2]
    payload = {
        "bench": "service_slo",
        "profile": profile,
        "config": config.to_dict(),
        "slo": {
            key: round(representative.latency[key], 6)
            for key in ("p50", "p99", "p999", "mean", "max")
        },
        "rounds": [
            {
                "duration_s": round(r.duration, 6),
                "p50": round(r.latency["p50"], 6),
                "p99": round(r.latency["p99"], 6),
                "p999": round(r.latency["p999"], 6),
            }
            for r in rounds
        ],
        "failover": {
            "config": failover.config.to_dict(),
            "slo": {
                key: round(value, 6)
                for key, value in failover.summary().items()
            },
            "latencies": [round(v, 6) for v in failover.latencies],
            "decisions": failover.decisions,
            "fencing_rejections": failover.fencing_rejections,
            "final_epochs": list(failover.final_epochs),
        },
        "decisions": representative.decisions,
        "outcomes": representative.outcomes,
        "fleet_heartbeats": representative.fleet_heartbeats,
        "heartbeat_queue": representative.heartbeat_queue,
        "report_queue": representative.report_queue,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
