"""Engine regression gate: fresh Fig-1(c) replay vs the committed round.

CI's bench-smoke job runs the replay benchmarks with
``--benchmark-disable`` — correctness only, no timing artifact.  This
script closes the loop the same way ``check_slo.py`` does for the
service: it re-runs the Figure 1(c) failure replay a few times on the
CI host, once per backend round committed in ``BENCH_engine.json``
(``current`` is the incremental backend; ``vectorized`` the columnar
one), and fails the job when the *best* fresh median is more than
``REPRO_ENGINE_GATE`` times the committed median (default 2×).

Best-of-N against a generous multiplier is deliberate: shared CI
runners are noisy, and a gate that cries wolf gets deleted.  A genuine
regression — a quadratic sweep creeping back into the event loop, a
kernel falling off its no-copy path — blows through 2× on every run;
scheduler jitter does not survive best-of-3.

Exit status: 0 when within the gate (or no baseline exists yet),
1 on regression, with a one-line verdict per gated backend.

Usage::

    PYTHONPATH=src python benchmarks/check_engine.py
    REPRO_ENGINE_GATE=3.0 PYTHONPATH=src python benchmarks/check_engine.py
"""

import json
import sys
import time
from pathlib import Path

from _gate import ATTEMPTS, gate_from_env, verdict
from bench_engine_replay import _replay

BENCH_JSON = Path(__file__).parent.parent / "BENCH_engine.json"


def _fresh_replay_s(allocator: str) -> float:
    best = float("inf")
    for _ in range(ATTEMPTS):
        start = time.perf_counter()
        result = _replay(allocator)
        elapsed = time.perf_counter() - start
        assert result.flows and all(
            r.completed for r in result.flows.values()
        ), f"{allocator} replay did not complete"
        best = min(best, elapsed)
    return best


def main() -> int:
    if not BENCH_JSON.exists():
        print(f"no baseline at {BENCH_JSON}; nothing to gate")
        return 0
    baseline = json.loads(BENCH_JSON.read_text())
    gate = gate_from_env("REPRO_ENGINE_GATE")
    regressed = False

    gated = False
    for key, name in (("current", "incremental"), ("vectorized", "vectorized")):
        committed = baseline.get(key)
        if committed is None:
            print(f"no {key!r} round in the baseline; skipping that gate")
            continue
        allocator = committed.get("allocator", name)
        gated = True
        regressed |= verdict(
            f"{allocator} fig1c replay",
            _fresh_replay_s(allocator),
            float(committed["median_s"]),
            gate,
        )
    if not gated:
        print("no replay rounds committed; nothing to gate")

    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
