"""Setuptools shim.

The environment has setuptools 65 without the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
This shim lets ``python setup.py develop`` / legacy editable installs work
offline; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
