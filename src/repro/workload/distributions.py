"""Random-variate helpers for the synthetic coflow workload.

The generator in :mod:`repro.workload.coflow_trace` needs three shapes,
all standard in data center traffic modelling:

* Poisson arrivals (exponential inter-arrival gaps);
* log-normal "short" transfer sizes (the bulk of flows are small);
* bounded Pareto "long" transfer sizes (heavy tail that carries most of
  the bytes — the defining property of the Facebook trace the paper
  replays).

Every function takes an explicit RNG — anything
:func:`repro.rng.ensure_rng` accepts: a ``numpy.random.Generator``, an
int seed, or a stdlib :class:`random.Random` — so every experiment is
reproducible from one seed and the sweep runner can re-execute any
slice of a workload in any worker process.  Nothing here reads
module-global randomness.
"""

from __future__ import annotations

import random

import numpy as np

from ..rng import ensure_rng

__all__ = [
    "exponential_gaps",
    "lognormal_bytes",
    "bounded_pareto_bytes",
    "categorical",
    "sample_without_replacement",
]

#: What every ``rng`` argument below accepts.
RngLike = "np.random.Generator | int | random.Random"


def exponential_gaps(
    rng: np.random.Generator | int | random.Random, rate: float, n: int
) -> np.ndarray:
    """``n`` exponential inter-arrival gaps for a Poisson process of ``rate``/s."""
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    return ensure_rng(rng).exponential(scale=1.0 / rate, size=n)


def lognormal_bytes(
    rng: np.random.Generator | int | random.Random,
    median: float,
    sigma: float = 1.0,
    floor: float = 1.0,
) -> float:
    """One log-normal size with the given median (bytes)."""
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    value = float(ensure_rng(rng).lognormal(mean=np.log(median), sigma=sigma))
    return max(floor, value)


def bounded_pareto_bytes(
    rng: np.random.Generator | int | random.Random,
    low: float,
    high: float,
    alpha: float = 1.2,
) -> float:
    """One bounded-Pareto size in ``[low, high]`` (bytes).

    Inverse-CDF sampling of the bounded Pareto; ``alpha`` ≈ 1.2 gives the
    mice-and-elephants mix observed in MapReduce shuffles.
    """
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
    u = float(ensure_rng(rng).uniform())
    la, ha = low**alpha, high**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def categorical(
    rng: np.random.Generator | int | random.Random, weights: dict[str, float]
) -> str:
    """Draw a key of ``weights`` with probability proportional to its value."""
    keys = sorted(weights)
    probs = np.array([weights[k] for k in keys], dtype=float)
    if (probs < 0).any() or probs.sum() <= 0:
        raise ValueError(f"bad category weights {weights}")
    probs = probs / probs.sum()
    return keys[int(ensure_rng(rng).choice(len(keys), p=probs))]


def sample_without_replacement(
    rng: np.random.Generator | int | random.Random, population: int, count: int
) -> list[int]:
    """``count`` distinct integers from ``range(population)``."""
    count = min(count, population)
    draws = ensure_rng(rng).choice(population, size=count, replace=False)
    return [int(x) for x in draws]
