"""Synthetic coflow trace generator, calibrated to the published shape of
the Facebook coflow benchmark the paper replays.

The paper's failure study runs "the coflow trace of real data center
traffic [coflow-benchmark]" — rack-level aggregated traffic from a
150-rack, 10:1 oversubscribed MapReduce cluster.  The trace file itself
is not redistributable here, so this module synthesises traces with the
same *structural* properties, which are well documented (Chowdhury et
al., Varys/Aalo):

* coflows are shuffles: ``M`` mapper racks × ``R`` reducer racks, one
  flow per (mapper, reducer) pair;
* widths are bimodal — over half the coflows are *narrow* (≤ a handful
  of flows) while a minority are *wide* (tens to hundreds of flows), and
  wide coflows dominate the byte count;
* per-flow sizes are heavy-tailed: log-normal mice plus a bounded-Pareto
  elephant tail;
* arrivals are Poisson.

The four classic categories and their trace shares:

====================  ======  =========================================
category              share   meaning
====================  ======  =========================================
short & narrow (SN)    52 %   small M×R, small flows
long & narrow  (LN)    16 %   small M×R, elephant flows
short & wide   (SW)    15 %   large fan-out, small flows
long & wide    (LW)    17 %   large fan-out, elephant flows
====================  ======  =========================================

The coflow-level *amplification* of failure impact measured in
Figure 1(a)/(b) — a single failed element touching one flow taints the
whole coflow — depends only on these width/placement statistics, which
is why the synthetic trace preserves the paper's qualitative results.

Endpoints are racks; :func:`materialize_hosts` maps rack-level flows to
concrete hosts of a topology, spreading flows across the hosts of each
rack round-robin (the trace is rack-aggregated, so any spreading that
avoids artificial host-NIC bottlenecks is faithful).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..rng import ensure_rng
from ..simulation.flow import CoflowSpec, FlowSpec
from ..topology.fattree import FatTree
from .distributions import (
    bounded_pareto_bytes,
    categorical,
    exponential_gaps,
    lognormal_bytes,
    sample_without_replacement,
)

__all__ = [
    "CoflowCategory",
    "WorkloadConfig",
    "RackFlow",
    "RackCoflow",
    "CoflowTraceGenerator",
    "materialize_hosts",
    "partition_trace",
]


@dataclass(frozen=True)
class CoflowCategory:
    """Sampling recipe for one coflow class."""

    name: str
    share: float  # fraction of coflows in this class
    mappers: tuple[int, int]  # inclusive range of mapper-rack count
    reducers: tuple[int, int]  # inclusive range of reducer-rack count
    short: bool  # True → log-normal mice, False → Pareto elephants


#: The classic Facebook-trace mix.
DEFAULT_CATEGORIES: tuple[CoflowCategory, ...] = (
    CoflowCategory("short-narrow", 0.52, (1, 2), (1, 2), short=True),
    CoflowCategory("long-narrow", 0.16, (1, 2), (1, 2), short=False),
    CoflowCategory("short-wide", 0.15, (2, 10), (5, 30), short=True),
    CoflowCategory("long-wide", 0.17, (2, 10), (5, 30), short=False),
)


@dataclass
class WorkloadConfig:
    """Knobs of the synthetic trace.

    The defaults produce a moderate trace suitable for tests; the
    benchmark harness scales ``num_coflows``/``duration`` up to the
    paper's 5-minute partitions.
    """

    num_racks: int = 128
    num_coflows: int = 200
    duration: float = 300.0  # seconds over which arrivals spread (one partition)
    seed: int = 1
    categories: tuple[CoflowCategory, ...] = DEFAULT_CATEGORIES
    #: Median bytes of a "short" flow (log-normal).
    short_flow_median: float = 2e6
    short_flow_sigma: float = 1.0
    #: Bounded-Pareto range of a "long" flow.
    long_flow_low: float = 20e6
    long_flow_high: float = 2e9
    long_flow_alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.num_racks < 2:
            raise ValueError("need at least two racks")
        if self.num_coflows < 1:
            raise ValueError("need at least one coflow")
        total = sum(c.share for c in self.categories)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"category shares sum to {total}, expected 1")


@dataclass(frozen=True)
class RackFlow:
    """A rack-level transfer before host materialisation."""

    flow_id: int
    coflow_id: int
    src_rack: int
    dst_rack: int
    size_bytes: float


@dataclass(frozen=True)
class RackCoflow:
    """A rack-level coflow (what the generator emits)."""

    coflow_id: int
    arrival: float
    category: str
    flows: tuple[RackFlow, ...]

    @property
    def width(self) -> int:
        return len(self.flows)

    @property
    def total_bytes(self) -> float:
        return sum(f.size_bytes for f in self.flows)


class CoflowTraceGenerator:
    """Seeded generator of rack-level coflow traces.

    The stream defaults to ``config.seed``; pass ``rng`` (anything
    :func:`repro.rng.ensure_rng` accepts — an int, a numpy ``Generator``,
    or a stdlib ``random.Random``) to thread an external stream instead,
    e.g. a sweep shard's derived seed.
    """

    def __init__(self, config: WorkloadConfig, rng=None) -> None:
        self.config = config
        self._rng = ensure_rng(config.seed if rng is None else rng)

    def generate(self) -> list[RackCoflow]:
        """One trace of ``num_coflows`` coflows over ``duration`` seconds."""
        cfg = self.config
        rate = cfg.num_coflows / cfg.duration
        gaps = exponential_gaps(self._rng, rate, cfg.num_coflows)
        arrivals = np.cumsum(gaps)
        # Rescale so the last arrival lands inside the window; keeps
        # partition experiments comparable across seeds.
        if arrivals[-1] > 0:
            arrivals = arrivals * (cfg.duration * 0.98 / arrivals[-1])

        weights = {c.name: c.share for c in cfg.categories}
        by_name = {c.name: c for c in cfg.categories}
        flow_ids = itertools.count(1)

        trace: list[RackCoflow] = []
        for coflow_id, arrival in enumerate(arrivals, start=1):
            category = by_name[categorical(self._rng, weights)]
            trace.append(
                self._one_coflow(coflow_id, float(arrival), category, flow_ids)
            )
        return trace

    def _one_coflow(
        self,
        coflow_id: int,
        arrival: float,
        category: CoflowCategory,
        flow_ids: "itertools.count",
    ) -> RackCoflow:
        cfg = self.config
        rng = self._rng
        m = int(rng.integers(category.mappers[0], category.mappers[1] + 1))
        r = int(rng.integers(category.reducers[0], category.reducers[1] + 1))
        m = min(m, cfg.num_racks // 2)
        r = min(r, cfg.num_racks - m)
        racks = sample_without_replacement(rng, cfg.num_racks, m + r)
        mappers, reducers = racks[:m], racks[m:]

        flows = []
        for src in mappers:
            for dst in reducers:
                if category.short:
                    size = lognormal_bytes(
                        rng, cfg.short_flow_median, cfg.short_flow_sigma
                    )
                else:
                    size = bounded_pareto_bytes(
                        rng, cfg.long_flow_low, cfg.long_flow_high, cfg.long_flow_alpha
                    )
                flows.append(
                    RackFlow(next(flow_ids), coflow_id, src, dst, size)
                )
        return RackCoflow(coflow_id, arrival, category.name, tuple(flows))


def materialize_hosts(
    trace: list[RackCoflow], tree: FatTree, seed: int = 0
) -> list[CoflowSpec]:
    """Bind rack-level flows to concrete hosts of ``tree``.

    Each rack's flows are spread over its hosts round-robin (per-rack
    counters persist across coflows) so no artificial single-NIC
    bottleneck appears below the rack aggregation the trace encodes.
    """
    num_racks = tree.num_racks
    src_cursor = [0] * num_racks
    dst_cursor = [0] * num_racks
    per_rack = tree.hosts_per_edge

    def host_of(rack: int, cursor: list[int]) -> str:
        pod, edge = rack // tree.half, rack % tree.half
        h = cursor[rack] % per_rack
        cursor[rack] += 1
        return f"H.{pod}.{edge}.{h}"

    specs: list[CoflowSpec] = []
    for coflow in trace:
        flows = []
        for flow in coflow.flows:
            if flow.src_rack >= num_racks or flow.dst_rack >= num_racks:
                raise ValueError(
                    f"flow {flow.flow_id}: rack out of range for k={tree.k}"
                )
            flows.append(
                FlowSpec(
                    flow_id=flow.flow_id,
                    coflow_id=flow.coflow_id,
                    src=host_of(flow.src_rack, src_cursor),
                    dst=host_of(flow.dst_rack, dst_cursor),
                    size_bytes=flow.size_bytes,
                )
            )
        specs.append(CoflowSpec(coflow.coflow_id, coflow.arrival, tuple(flows)))
    return specs


def partition_trace(
    trace: list[RackCoflow], window: float
) -> list[list[RackCoflow]]:
    """Split a trace into ``window``-second partitions with re-zeroed arrivals.

    The paper runs "5-minute partitions of the coflow trace" against each
    sampled failure; this helper reproduces that slicing.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    partitions: dict[int, list[RackCoflow]] = {}
    for coflow in trace:
        index = int(coflow.arrival // window)
        shifted = RackCoflow(
            coflow.coflow_id,
            coflow.arrival - index * window,
            coflow.category,
            coflow.flows,
        )
        partitions.setdefault(index, []).append(shifted)
    return [partitions[i] for i in sorted(partitions)]
