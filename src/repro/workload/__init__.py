"""Workload substrate: synthetic coflow traces with the Facebook
coflow-benchmark's structural properties (see DESIGN.md, substitution table).
"""

from .coflow_trace import (
    DEFAULT_CATEGORIES,
    CoflowCategory,
    CoflowTraceGenerator,
    RackCoflow,
    RackFlow,
    WorkloadConfig,
    materialize_hosts,
    partition_trace,
)
from .distributions import (
    bounded_pareto_bytes,
    categorical,
    exponential_gaps,
    lognormal_bytes,
    sample_without_replacement,
)
from .traceio import (
    TraceFormatError,
    load_coflow_benchmark,
    load_trace,
    save_coflow_benchmark,
    save_trace,
)

__all__ = [
    "DEFAULT_CATEGORIES",
    "CoflowCategory",
    "CoflowTraceGenerator",
    "RackCoflow",
    "RackFlow",
    "WorkloadConfig",
    "bounded_pareto_bytes",
    "categorical",
    "exponential_gaps",
    "lognormal_bytes",
    "materialize_hosts",
    "partition_trace",
    "sample_without_replacement",
    "TraceFormatError",
    "load_coflow_benchmark",
    "load_trace",
    "save_coflow_benchmark",
    "save_trace",
]
