"""Probe ingestion: bounded buffers with explicit backpressure.

The service's front door.  Heartbeats and failure reports arrive as
:class:`Probe` values through :meth:`ProbeQueue.offer` — a synchronous,
non-blocking call usable from HTTP handlers, replay timers, and load
generators alike — and are consumed by the service's ingest coroutine
via :meth:`ProbeQueue.get`.

Backpressure is a *policy*, not an accident (the van Adrichem/Capone
controller lineage: a controller that falls behind must shed load
somewhere, and the operator should get to choose where):

* ``drop-oldest`` — a full queue evicts its oldest entry to admit the
  new one.  Heartbeats are naturally redundant (the next round
  refreshes the same switches), so losing stale ones under a probe
  storm is the right default.
* ``reject`` — a full queue refuses the new entry and ``offer`` returns
  ``False``; the REST layer surfaces this as ``429 Too Many Requests``.
  Failure reports are not redundant, so a dedicated report queue may
  prefer pushing the retry burden back onto the reporter.

Every submitted probe is accounted for, exactly once, by the
:class:`QueueCounters` conservation law::

    submitted == rejected + dropped_oldest + dequeued
                 + lost_on_crash + len(queue)

which the hypothesis suite (``tests/test_service_backpressure.py``)
enforces under arbitrary arrival/drain interleavings — including
across a crash/restart boundary: :meth:`ProbeQueue.snapshot` captures
the counters, :meth:`ProbeQueue.restore` rebuilds an *empty* queue from
them, and the probes that were in flight at the crash move to the
``lost_on_crash`` bucket instead of silently vanishing from the books.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "OVERFLOW_POLICIES",
    "Heartbeat",
    "FailureReport",
    "Probe",
    "QueueCounters",
    "QueueFullError",
    "ProbeQueue",
]

#: The two admission policies a bounded probe queue supports.
OVERFLOW_POLICIES: tuple[str, ...] = ("drop-oldest", "reject")


@dataclass(frozen=True)
class Heartbeat:
    """One keep-alive from a (possibly synthetic) switch."""

    switch: str
    sent_at: float | None = None

    def to_dict(self) -> dict[str, object]:
        return {"type": "heartbeat", "switch": self.switch,
                "sent_at": self.sent_at}


@dataclass(frozen=True)
class FailureReport:
    """One failure report submitted to the control plane.

    ``kind`` is ``"node"`` (``logical`` names the dead logical switch)
    or ``"link"`` (``end_a``/``end_b`` name the logical devices and
    interfaces of the dead link, in the controller's
    ``(device, interface)`` shape).  ``reported_at`` is service-clock
    time at submission; decision latency is measured from it.
    """

    kind: str
    logical: str = ""
    end_a: tuple[str, tuple] | None = None
    end_b: tuple[str, tuple] | None = None
    true_faulty: tuple[tuple[str, tuple], ...] = ()
    reported_at: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("node", "link"):
            raise ValueError(f"unknown failure kind {self.kind!r}")
        if self.kind == "node" and not self.logical:
            raise ValueError("node failure report needs a logical switch")
        if self.kind == "link" and (self.end_a is None or self.end_b is None):
            raise ValueError("link failure report needs both ends")

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "failure-report",
            "kind": self.kind,
            "logical": self.logical,
            "end_a": list(self.end_a) if self.end_a else None,
            "end_b": list(self.end_b) if self.end_b else None,
            "reported_at": self.reported_at,
        }


Probe = Union[Heartbeat, FailureReport]


@dataclass
class QueueCounters:
    """Exact accounting of one bounded queue's admissions.

    ``submitted`` counts every ``offer``; the other buckets partition
    it: ``rejected`` never entered, ``dropped_oldest`` entered and was
    evicted, ``dequeued`` entered and was consumed, ``lost_on_crash``
    was in flight when the process died, and the remainder is still
    queued.
    """

    submitted: int = 0
    rejected: int = 0
    dropped_oldest: int = 0
    dequeued: int = 0
    lost_on_crash: int = 0

    def accounted(self, queued_now: int) -> int:
        """Left-hand side of the conservation law, for assertions."""
        return (
            self.rejected
            + self.dropped_oldest
            + self.dequeued
            + self.lost_on_crash
            + queued_now
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dropped_oldest": self.dropped_oldest,
            "dequeued": self.dequeued,
            "lost_on_crash": self.lost_on_crash,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "QueueCounters":
        return cls(
            submitted=int(data.get("submitted", 0)),
            rejected=int(data.get("rejected", 0)),
            dropped_oldest=int(data.get("dropped_oldest", 0)),
            dequeued=int(data.get("dequeued", 0)),
            lost_on_crash=int(data.get("lost_on_crash", 0)),
        )


class QueueFullError(Exception):
    """Raised by callers that treat a rejected offer as exceptional."""


class ProbeQueue:
    """A bounded FIFO with an explicit overflow policy.

    ``offer`` is synchronous and never blocks: the bound is enforced by
    policy (evict or reject), not by making the producer wait — a
    controller that blocks its own probe ingestion deadlocks the very
    failure detector it exists to serve.  ``get`` is the awaitable
    consumer side; a single consumer is assumed (the service's ingest
    loop), though nothing breaks with several.
    """

    def __init__(self, maxsize: int, policy: str = "drop-oldest") -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        self.maxsize = maxsize
        self.policy = policy
        self.counters = QueueCounters()
        self._items: deque[Probe] = deque()
        self._waiters: deque[asyncio.Future[Probe]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.maxsize

    def offer(self, item: Probe) -> bool:
        """Submit one probe; ``False`` means the policy rejected it."""
        self.counters.submitted += 1
        waiter = self._next_waiter()
        if waiter is not None:
            # Direct hand-off to a parked consumer: the item never
            # occupies a queue slot, but it still counts as dequeued.
            self.counters.dequeued += 1
            waiter.set_result(item)
            return True
        if len(self._items) >= self.maxsize:
            if self.policy == "reject":
                self.counters.rejected += 1
                return False
            self._items.popleft()
            self.counters.dropped_oldest += 1
        self._items.append(item)
        return True

    async def get(self) -> Probe:
        """Await the next probe (FIFO)."""
        if self._items:
            self.counters.dequeued += 1
            return self._items.popleft()
        waiter: asyncio.Future[Probe] = (
            asyncio.get_running_loop().create_future()
        )
        self._waiters.append(waiter)
        return await waiter

    def get_nowait(self) -> Probe | None:
        """Pop the next probe without waiting, or ``None`` when empty."""
        if not self._items:
            return None
        self.counters.dequeued += 1
        return self._items.popleft()

    def _next_waiter(self) -> asyncio.Future[Probe] | None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():  # skip cancelled consumers
                return waiter
        return None

    # ------------------------------------------------------------------
    # the crash/restart boundary
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Durable view of this queue at a crash instant.

        Only the *accounting* survives a crash — queued probes are
        process memory and die with it.  The snapshot therefore records
        the depth (so :meth:`restore` can book it as ``lost_on_crash``)
        alongside the counters and configuration.
        """
        return {
            "maxsize": self.maxsize,
            "policy": self.policy,
            "depth": len(self._items),
            "counters": self.counters.to_dict(),
        }

    @classmethod
    def restore(cls, snapshot: dict[str, object]) -> "ProbeQueue":
        """Rebuild an empty queue after a crash, conserving the books.

        Probes queued at the crash were submitted but never dequeued,
        rejected, or dropped; they land in ``lost_on_crash`` so the
        conservation law ``submitted == accounted`` holds across the
        restart exactly as it held before it.
        """
        queue = cls(
            int(snapshot["maxsize"]),  # type: ignore[call-overload]
            str(snapshot["policy"]),
        )
        counters = QueueCounters.from_dict(
            snapshot["counters"]  # type: ignore[arg-type]
        )
        counters.lost_on_crash += int(snapshot["depth"])  # type: ignore[call-overload]
        queue.counters = counters
        return queue
