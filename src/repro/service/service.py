"""The recovery control-plane service: queues in, decisions out.

:class:`RecoveryService` assembles the subsystem around one
:class:`~repro.core.controller.ShareBackupController`:

* two bounded :class:`~repro.service.ingest.ProbeQueue` front doors —
  heartbeats (``drop-oldest``: redundant by nature) and failure reports
  (``reject``: each one matters, push retries back to the reporter);
* an ingest coroutine per queue, draining greedily so a settled event
  loop means *everything submitted has been acted on*;
* a periodic probe-boundary scan that runs the controller's real
  keep-alive detector (:meth:`detect_silent_switches`) and turns fresh
  silences into resolver work;
* the :class:`~repro.service.resolver.FailureGroupResolver`, committing
  failover group-concurrently and timing every decision;
* an :class:`~repro.service.events.EventBus` publishing decisions,
  degradation reports, and errors as JSON-safe dicts for the
  ``GET /events`` stream and the replay/test drivers.

All waiting goes through one :class:`~repro.service.clock.ServiceClock`,
so the same service instance is deterministic under
:class:`~repro.service.clock.VirtualClock` and honest under
:class:`~repro.service.clock.WallClock`.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, replace

from ..core.controller import (
    ControllerCluster,
    EpochFencedError,
    ShareBackupController,
)
from .clock import ServiceClock, WallClock
from .events import EventBus
from .federation import ServiceFederation
from .fleet import FleetRegistry
from .ingest import FailureReport, Heartbeat, ProbeQueue
from .resolver import FailoverDecision, FailureGroupResolver, PendingFailure
from .wal import DecisionWAL

__all__ = ["ServiceConfig", "RecoveryService", "percentile"]

#: Floating-point slack when mapping "now" onto a probe boundary index.
_BOUNDARY_EPS = 1e-9


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) by the nearest-rank method.

    Nearest-rank keeps the answer an *observed* latency — an SLO report
    should never quote an interpolated time nobody experienced.
    """
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`RecoveryService` instance."""

    heartbeat_queue_size: int = 4096
    heartbeat_policy: str = "drop-oldest"
    report_queue_size: int = 1024
    report_policy: str = "reject"
    #: How long the resolver lets correlated losses pile into one batch.
    #: Zero (the default) batches only what is already queued — the right
    #: setting under a virtual clock, where "simultaneous" submissions
    #: share an instant anyway.
    batch_window: float = 0.0
    #: Probe-scan period; ``None`` means the controller's own
    #: ``timing.probe_interval`` (keeping detection arithmetic identical
    #: to the call-driven watchdog).
    scan_interval: float | None = None
    #: Per-subscriber event buffer (oldest events drop beyond it).
    event_buffer: int = 1024


class RecoveryService:
    """Long-lived asyncio control plane over one ShareBackup controller."""

    def __init__(
        self,
        controller: ShareBackupController,
        clock: ServiceClock | None = None,
        config: ServiceConfig | None = None,
        cluster: ControllerCluster | None = None,
        wal: DecisionWAL | None = None,
    ) -> None:
        self.controller = controller
        self.clock: ServiceClock = clock if clock is not None else WallClock()
        self.config = config or ServiceConfig()
        self.heartbeats = ProbeQueue(
            self.config.heartbeat_queue_size, self.config.heartbeat_policy
        )
        self.reports = ProbeQueue(
            self.config.report_queue_size, self.config.report_policy
        )
        self.bus = EventBus()
        self.fleet = FleetRegistry()
        self.federation = ServiceFederation(cluster)
        self.wal = wal
        self.resolver = FailureGroupResolver(
            controller,
            self.clock,
            on_decision=self._record_decision,
            on_error=self._record_error,
            batch_window=self.config.batch_window,
            wal=wal,
            federation=self.federation,
            on_fenced=self._record_fenced,
        )
        #: Audit of commits rejected by epoch fencing, service view.
        self.fencing_rejections: list[dict[str, object]] = []
        #: Chaos-induced primary crashes observed by this service.
        self.primary_crashes: list[dict[str, object]] = []
        self.federation.add_election_listener(self._on_election)
        self.decisions: list[FailoverDecision] = []
        self.errors: list[dict[str, object]] = []
        #: (physical switch, detection time) in scan order.
        self.detections: list[tuple[str, float]] = []
        self.started = False
        self._tasks: list[asyncio.Task[None]] = []
        #: Physicals the scan already dispatched; prevents a slot that
        #: degraded to rerouting (its silence never clears) from being
        #: re-detected at every subsequent boundary.  Analogous to the
        #: watchdog popping ``_silent_since`` when it handles a switch.
        self._handled: set[str] = set()
        self._degradations_published = len(controller.degradations)

    # ==================================================================
    # submission side (synchronous, callable from handlers and loadgen)
    # ==================================================================

    def submit_heartbeat(self, heartbeat: Heartbeat) -> bool:
        """Offer a keep-alive; ``False`` only under a ``reject`` policy."""
        return self.heartbeats.offer(heartbeat)

    def submit_failure(self, report: FailureReport) -> bool:
        """Offer a failure report; ``False`` means backpressure (429)."""
        return self.reports.offer(report)

    # ==================================================================
    # lifecycle
    # ==================================================================

    async def start(self) -> None:
        """Spawn the service coroutines on the running event loop."""
        if self.started:
            raise RuntimeError("service already started")
        self.started = True
        self._tasks = [
            asyncio.ensure_future(coro)
            for coro in (
                self._heartbeat_loop(),
                self._report_loop(),
                self._scan_loop(),
                self.resolver.run(),
            )
        ]
        self.bus.publish(
            {"type": "service-started", "now": self.clock.now()}
        )
        # Cold-start takeover: a restarted service replaying an existing
        # WAL resumes every intent the previous incarnation logged but
        # never committed.  Idempotent — committed keys are skipped at
        # commit time, so starting over the same log twice re-emits
        # nothing.
        resumed = self._resume_incomplete()
        if resumed:
            self.bus.publish(
                {
                    "type": "takeover",
                    "reason": "restart",
                    "resumed": resumed,
                    "epoch": self.federation.epoch,
                    "now": self.clock.now(),
                }
            )

    async def stop(self) -> None:
        """Cancel the coroutines and end every event stream."""
        if not self.started:
            return
        self.started = False
        self.bus.publish({"type": "service-stopped", "now": self.clock.now()})
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self.bus.close()

    # ==================================================================
    # the service coroutines
    # ==================================================================

    async def _heartbeat_loop(self) -> None:
        """Drain the heartbeat queue greedily.

        After the first await each pass empties the whole backlog, so a
        single settle round observes every heartbeat submitted at the
        current instant — the property the boundary scan's determinism
        rests on.
        """
        while True:
            probe = await self.heartbeats.get()
            while probe is not None:
                assert isinstance(probe, Heartbeat)
                self._handle_heartbeat(probe)
                probe = self.heartbeats.get_nowait()  # type: ignore[assignment]

    async def _report_loop(self) -> None:
        """Drain failure reports into the resolver, greedily."""
        while True:
            probe = await self.reports.get()
            while probe is not None:
                assert isinstance(probe, FailureReport)
                self.resolver.submit(
                    PendingFailure.from_report(probe, self.clock.now())
                )
                probe = self.reports.get_nowait()  # type: ignore[assignment]

    def _handle_heartbeat(self, heartbeat: Heartbeat) -> None:
        now = self.clock.now()
        if heartbeat.switch not in self.controller.net.physical_health:
            # Not a switch the controller owns: a synthetic fleet member
            # (load generation) — track it service-side.
            self.fleet.record(heartbeat.switch, now)
            return
        self.controller.heartbeat(heartbeat.switch, now)
        # A switch heartbeating again after a spurious failover
        # (heartbeat loss) is eligible for future detection.
        self._handled.discard(heartbeat.switch)

    async def _scan_loop(self) -> None:
        """Run the keep-alive detector at every probe boundary.

        Boundaries are integer multiples of the probe interval, matching
        :meth:`WatchdogSimulation.detection_deadline` — the reason the
        service path detects at the *identical* instant the call-driven
        path does.
        """
        interval = self._scan_interval()
        while True:
            now = self.clock.now()
            boundary = (
                math.floor(now / interval + _BOUNDARY_EPS) + 1
            ) * interval
            await self.clock.sleep(boundary - now)
            self._scan_once()

    def _scan_interval(self) -> float:
        if self.config.scan_interval is not None:
            return self.config.scan_interval
        return self.controller.timing.probe_interval

    def _scan_once(self) -> None:
        now = self.clock.now()
        for physical in self.controller.detect_silent_switches(now):
            if physical in self._handled:
                continue
            logical = self._logical_of_physical(physical)
            if logical is None:
                continue
            self._handled.add(physical)
            self.detections.append((physical, now))
            self.resolver.submit(
                PendingFailure(
                    kind="node",
                    logical=logical,
                    detected_at=now,
                    source="scan",
                )
            )

    def _logical_of_physical(self, physical: str) -> str | None:
        for group in self.controller.net.groups.values():
            logical = group.logical_of(physical)
            if logical is not None:
                return logical
        return None

    # ==================================================================
    # resolver callbacks
    # ==================================================================

    def _record_decision(self, decision: FailoverDecision) -> None:
        self.decisions.append(decision)
        self.bus.publish(decision.to_dict())
        self._publish_new_degradations()
        # Armed ``service-primary-crash`` faults fire here — synchronously
        # inside the decision callback, i.e. genuinely mid-batch.  The
        # WAL commit for *this* decision already landed (the resolver
        # appends before calling us), so the interrupted decision
        # survives; the batch's remaining members get fenced and resumed
        # under the new epoch.
        crashed = self.federation.note_decision()
        if crashed is not None:
            self.primary_crashes.append(
                {
                    "type": "primary-crashed",
                    "replica": crashed,
                    "epoch": self.federation.epoch,
                    "now": self.clock.now(),
                }
            )
            self.bus.publish(dict(self.primary_crashes[-1]))

    def _record_fenced(
        self,
        pending: PendingFailure,
        group_id: str,
        seq: int,
        exc: EpochFencedError,
    ) -> None:
        """Audit a fenced commit and requeue the work under the new epoch.

        The resubmitted item carries its original WAL key, so when the
        next batch (running under the fenced-in primary's epoch) reaches
        it, the intent is recognised rather than re-minted — and if a
        concurrent takeover already resumed and committed it, the
        commit-time idempotency guard drops the duplicate.
        """
        record: dict[str, object] = {
            "type": "fencing-rejected",
            "group": group_id,
            "decision_seq": seq,
            "holder_epoch": exc.holder_epoch,
            "current_epoch": exc.current_epoch,
            "kind": pending.kind,
            "logical": pending.logical,
            "now": self.clock.now(),
        }
        self.fencing_rejections.append(record)
        self.bus.publish(dict(record))
        if self.federation.primary is not None:
            self.resolver.submit(
                replace(pending, wal_key=(group_id, seq))
            )

    def _on_election(self, primary: str | None, epoch: int) -> None:
        """A new primary is seated: announce it and replay the WAL."""
        self.bus.publish(
            {
                "type": "election",
                "primary": primary,
                "epoch": epoch,
                "now": self.clock.now(),
            }
        )
        if primary is None:
            return
        resumed = self._resume_incomplete()
        if resumed:
            self.bus.publish(
                {
                    "type": "takeover",
                    "reason": "election",
                    "resumed": resumed,
                    "epoch": epoch,
                    "now": self.clock.now(),
                }
            )

    def _resume_incomplete(self) -> int:
        """Resubmit every WAL intent that never reached a commit."""
        if self.wal is None:
            return 0
        resumed = 0
        for record in self.wal.incomplete():
            self.resolver.submit(
                PendingFailure.from_payload(record.data, wal_key=record.key)
            )
            resumed += 1
        return resumed

    def _record_error(self, pending: PendingFailure, exc: Exception) -> None:
        record: dict[str, object] = {
            "type": "error",
            "kind": pending.kind,
            "logical": pending.logical,
            "detected_at": pending.detected_at,
            "error": type(exc).__name__,
            "detail": str(exc),
        }
        self.errors.append(record)
        self.bus.publish(dict(record))
        self._publish_new_degradations()

    def _publish_new_degradations(self) -> None:
        """Stream controller degradation reports as they appear."""
        reports = self.controller.degradations
        while self._degradations_published < len(reports):
            report = reports[self._degradations_published]
            self._degradations_published += 1
            event = {"type": "degradation"}
            event.update(report.to_dict())
            self.bus.publish(event)

    # ==================================================================
    # observability
    # ==================================================================

    def mark_repaired(self, physical: str) -> None:
        """A repaired switch may fail (and be detected) again."""
        self._handled.discard(physical)

    def latency_summary(self) -> dict[str, float] | None:
        """p50/p99/p999 (and extremes) of decision latency, if any."""
        latencies = [d.latency for d in self.decisions]
        if not latencies:
            return None
        return {
            "p50": percentile(latencies, 0.50),
            "p99": percentile(latencies, 0.99),
            "p999": percentile(latencies, 0.999),
            "mean": sum(latencies) / len(latencies),
            "max": max(latencies),
        }

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.outcome] = counts.get(decision.outcome, 0) + 1
        return counts

    def metrics(self) -> dict[str, object]:
        """JSON-safe operational snapshot (the ``GET /metrics`` body)."""
        return {
            "now": self.clock.now(),
            "started": self.started,
            "decisions": len(self.decisions),
            "errors": len(self.errors),
            "detections": len(self.detections),
            "fleet_switches": len(self.fleet),
            "events_published": self.bus.published,
            "resolver": {
                "backlog": self.resolver.backlog,
                "batches_resolved": self.resolver.batches_resolved,
            },
            "heartbeat_queue": self._queue_metrics(self.heartbeats),
            "report_queue": self._queue_metrics(self.reports),
            "latency": self.latency_summary(),
            "outcomes": self.outcome_counts(),
            "federation": {
                "attached": self.federation.attached,
                "primary": self.federation.primary,
                "epoch": self.federation.epoch,
                "fencing_rejections": len(self.fencing_rejections),
                "primary_crashes": len(self.primary_crashes),
            },
            "wal": self.wal.stats() if self.wal is not None else None,
        }

    @staticmethod
    def _queue_metrics(queue: ProbeQueue) -> dict[str, object]:
        snapshot: dict[str, object] = {
            "policy": queue.policy,
            "maxsize": queue.maxsize,
            "depth": len(queue),
        }
        snapshot.update(queue.counters.to_dict())
        return snapshot
