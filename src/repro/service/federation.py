"""The sanctioned federation surface between the service and the cluster.

`repro.service` must never reach into :class:`ControllerCluster`
internals directly — epoch bumps, primary swaps, and replica state all
have to flow through one audited seam so a crash, an election, and a
fencing check cannot race or diverge (the SVC014 lint rule enforces the
boundary the same way CHS001 fences circuit-switch mutation out of
application code).  :class:`ServiceFederation` is that seam:

* it forwards fencing checks (:meth:`check_fence`) and election
  listeners to the cluster,
* it exposes chaos hooks — :meth:`crash_primary`, :meth:`restore`, and
  the decision-triggered :meth:`arm_primary_crash` used by the
  ``service-primary-crash`` fault — with an audit trail, and
* it degrades to a no-op single-controller mode when no cluster is
  attached, so the service keeps its PR 6 behaviour byte-for-byte when
  federation is off.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.controller import ControllerCluster

__all__ = ["ServiceFederation"]


class ServiceFederation:
    """Epoch-fenced view of an optional :class:`ControllerCluster`.

    Without a cluster the federation reports epoch 0 forever and every
    fence check passes — the degenerate single-controller deployment.
    """

    def __init__(self, cluster: Optional[ControllerCluster] = None) -> None:
        self.cluster = cluster
        #: Audit of chaos-induced primary crashes (replica id + epoch).
        self.crashes: list[dict] = []
        #: Armed decision-count triggers for ``service-primary-crash``.
        self._crash_triggers: list[int] = []

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    @property
    def epoch(self) -> int:
        return self.cluster.epoch if self.cluster is not None else 0

    @property
    def primary(self) -> Optional[str]:
        return self.cluster.primary if self.cluster is not None else None

    def check_fence(self, epoch: int, context: str = "") -> None:
        """Delegate to the cluster's fence; always passes un-federated."""
        if self.cluster is not None:
            self.cluster.check_fence(epoch, context)

    def add_election_listener(
        self, callback: Callable[[Optional[str], int], None]
    ) -> None:
        if self.cluster is not None:
            self.cluster.add_election_listener(callback)

    # ------------------------------------------------------------------
    # chaos hooks (the only sanctioned cluster mutation in this package)
    # ------------------------------------------------------------------

    def crash_primary(self) -> Optional[str]:
        """Crash the current primary; returns its id, or None."""
        if self.cluster is None:
            return None
        old_epoch = self.cluster.epoch
        failed = self.cluster.fail_primary()
        if failed is not None:
            self.crashes.append(
                {
                    "replica": failed,
                    "deposed_epoch": old_epoch,
                    "new_epoch": self.cluster.epoch,
                }
            )
        return failed

    def restore(self, replica_id: str) -> None:
        """Bring a crashed replica back into the candidate set."""
        if self.cluster is not None:
            self.cluster.restore_replica(replica_id)

    def arm_primary_crash(self, after_decisions: int = 1) -> None:
        """Arm a crash that fires after ``after_decisions`` more decisions.

        This is the ``service-primary-crash`` mechanism: the crash lands
        *synchronously inside the decision callback* — i.e. genuinely
        mid-batch, between two members of an in-flight resolver batch —
        which is the exact window a wall-clock primary loss would hit.
        """
        if after_decisions < 1:
            raise ValueError("after_decisions must be >= 1")
        self._crash_triggers.append(after_decisions)

    def note_decision(self) -> Optional[str]:
        """Tick armed crash triggers; fire (at most) the head trigger.

        Returns the crashed replica id when a trigger fires, else None.
        """
        if not self._crash_triggers or self.cluster is None:
            return None
        self._crash_triggers[0] -= 1
        if self._crash_triggers[0] > 0:
            return None
        self._crash_triggers.pop(0)
        return self.crash_primary()
