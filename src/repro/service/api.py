"""REST + streaming-events API over asyncio streams (stdlib only).

A deliberately small HTTP/1.1 surface — enough for operators, load
generators, and CI smoke tests, with zero dependencies beyond asyncio:

========  ==================  ===========================================
method    path                semantics
========  ==================  ===========================================
GET       ``/healthz``        liveness + service clock reading
GET       ``/metrics``        :meth:`RecoveryService.metrics` snapshot
GET       ``/decisions``      all failover decisions (``?since=SEQ``)
POST      ``/heartbeats``     ``{"switches": [...]}`` or ``{"switch": s}``
POST      ``/failures``       one failure report → 202, or 429 on
                              backpressure (``reject`` queue full)
GET       ``/events``         JSONL stream of service events (decisions,
                              degradations, errors, lifecycle), live
========  ==================  ===========================================

Connections are one-shot (``Connection: close``) except ``/events``,
which streams newline-delimited JSON until the client disconnects or
the service stops.  Backpressure is explicit end to end: a rejected
failure report is an HTTP 429, and a slow ``/events`` consumer drops
oldest events in its own subscription buffer, never in the service.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from .ingest import FailureReport, Heartbeat
from .service import RecoveryService

__all__ = ["ApiError", "ServiceAPI"]

#: Upper bound on accepted request bodies (probe payloads are tiny).
_MAX_BODY = 1 << 20
_MAX_HEADER_LINES = 100


class ApiError(Exception):
    """A request error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _iface(value: Any) -> tuple[str, tuple]:
    """Decode one ``[device, interface]`` endpoint from JSON."""
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not isinstance(value[0], str)
    ):
        raise ApiError(400, "endpoint must be [device, interface]")
    iface = value[1]
    if isinstance(iface, list):
        iface = tuple(iface)
    elif not isinstance(iface, tuple):
        iface = (iface,)
    return (value[0], iface)


def _parse_failure(body: dict[str, Any], now: float) -> FailureReport:
    kind = body.get("kind")
    if kind not in ("node", "link"):
        raise ApiError(400, "kind must be 'node' or 'link'")
    try:
        if kind == "node":
            logical = body.get("logical")
            if not isinstance(logical, str) or not logical:
                raise ApiError(400, "node failure needs 'logical'")
            return FailureReport(kind="node", logical=logical, reported_at=now)
        if "end_a" not in body or "end_b" not in body:
            raise ApiError(400, "link failure needs 'end_a' and 'end_b'")
        return FailureReport(
            kind="link",
            end_a=_iface(body["end_a"]),
            end_b=_iface(body["end_b"]),
            reported_at=now,
        )
    except ValueError as exc:
        raise ApiError(400, str(exc)) from exc


class ServiceAPI:
    """Serves one :class:`RecoveryService` over HTTP."""

    def __init__(
        self,
        service: RecoveryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; updated on start()
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ==================================================================
    # connection handling
    # ==================================================================

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except ApiError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            if method == "GET" and path == "/events":
                await self._stream_events(writer)
                return
            try:
                status, payload = self._route(method, path, query, body)
            except ApiError as exc:
                status, payload = exc.status, {"error": str(exc)}
            await self._respond_json(writer, status, payload)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # Loop teardown cancels in-flight handlers; a handler
                # dying mid-goodbye must not spam the exception log.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], dict[str, Any] | None]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ApiError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ApiError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        path, _, raw_query = target.partition("?")
        query: dict[str, str] = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise ApiError(400, "bad Content-Length") from exc
        else:
            raise ApiError(431, "too many header lines")
        body: dict[str, Any] | None = None
        if content_length:
            if content_length > _MAX_BODY:
                raise ApiError(413, "request body too large")
            raw = await reader.readexactly(content_length)
            try:
                decoded = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ApiError(400, f"invalid JSON body: {exc}") from exc
            if not isinstance(decoded, dict):
                raise ApiError(400, "JSON body must be an object")
            body = decoded
        return method.upper(), path, query, body

    # ==================================================================
    # routing
    # ==================================================================

    def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: dict[str, Any] | None,
    ) -> tuple[int, dict[str, Any]]:
        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "now": self.service.clock.now(),
                    "started": self.service.started,
                }
            if path == "/metrics":
                return 200, self.service.metrics()
            if path == "/decisions":
                return self._get_decisions(query)
            raise ApiError(404, f"no such resource: {path}")
        if method == "POST":
            if path == "/heartbeats":
                return self._post_heartbeats(body)
            if path == "/failures":
                return self._post_failure(body)
            raise ApiError(404, f"no such resource: {path}")
        raise ApiError(405, f"method {method} not supported")

    def _get_decisions(
        self, query: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        since = -1
        if "since" in query:
            try:
                since = int(query["since"])
            except ValueError as exc:
                raise ApiError(400, "since must be an integer") from exc
        decisions = [
            d.to_dict() for d in self.service.decisions if d.seq > since
        ]
        return 200, {"decisions": decisions, "total": len(decisions)}

    def _post_heartbeats(
        self, body: dict[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        if body is None:
            raise ApiError(400, "heartbeat POST needs a JSON body")
        switches: list[str]
        if "switches" in body:
            raw = body["switches"]
            if not isinstance(raw, list) or not all(
                isinstance(s, str) for s in raw
            ):
                raise ApiError(400, "'switches' must be a list of names")
            switches = raw
        elif "switch" in body and isinstance(body["switch"], str):
            switches = [body["switch"]]
        else:
            raise ApiError(400, "need 'switch' or 'switches'")
        now = self.service.clock.now()
        accepted = sum(
            self.service.submit_heartbeat(Heartbeat(switch, now))
            for switch in switches
        )
        return 202, {"accepted": accepted, "submitted": len(switches)}

    def _post_failure(
        self, body: dict[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        if body is None:
            raise ApiError(400, "failure POST needs a JSON body")
        report = _parse_failure(body, self.service.clock.now())
        if not self.service.submit_failure(report):
            counters = self.service.reports.counters
            return 429, {
                "error": "failure-report queue full",
                "rejected": counters.rejected,
            }
        return 202, {"accepted": True, "reported_at": report.reported_at}

    # ==================================================================
    # responses
    # ==================================================================

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        writer.write(body)
        await writer.drain()

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        """The JSONL event stream: one JSON object per line, live."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        subscription = self.service.bus.subscribe(
            maxsize=self.service.config.event_buffer
        )
        try:
            async for event in subscription:
                writer.write((json.dumps(event) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            subscription.unsubscribe()


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
}
