"""Concurrent failure-group resolution with per-decision latency.

Detected silent switches and ingested failure reports become
:class:`PendingFailure` work items; the resolver batches items that
arrive close together (one virtual instant, or ``batch_window`` of
wall time), partitions each batch by ShareBackup *failure group* —
failures in the same group contend for the same spare pool and circuit
switches, failures in different groups are independent — and commits
the groups concurrently, one asyncio task per group.

Inside a group the items run sequentially in ``(detected_at, target)``
order, each through the controller's existing two-phase machinery:
``validate_reconfigure`` then commit inside
:meth:`~repro.core.controller.ShareBackupController._assign_backup`,
wrapped in the shared :class:`~repro.retry.RetryPolicy` and the PR 3
degradation ladder (assign backup → alternate spare → global reroute).
The service adds no second recovery path — it *schedules* the proven
one, which is why the chaos-replay A/B test can demand decision
identity with the call-driven watchdog.

Every commit yields a :class:`FailoverDecision` carrying two clocks:

* ``latency`` — service-clock detection→decision delay (the SLO the
  benchmark aggregates into p50/p99/p999);
* ``recovery_time`` — the modelled data-plane recovery latency from
  :class:`~repro.core.recovery.RecoveryTimeModel` (the paper's <1 ms
  claim), carried through from the controller's report.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from dataclasses import dataclass, field

from ..core.controller import (
    EpochFencedError,
    RecoveryReport,
    ShareBackupController,
)
from .clock import ServiceClock
from .federation import ServiceFederation
from .ingest import FailureReport
from .wal import DecisionWAL

__all__ = [
    "PendingFailure",
    "FailoverDecision",
    "FailureGroupResolver",
    "report_outcome",
]


def report_outcome(report: RecoveryReport) -> str:
    """Classify a recovery report: recovered | rerouted | stranded.

    Shared by the service path and the call-driven comparison helpers
    (:func:`repro.service.replay.report_decision_key`) so the A/B test
    judges both paths by one rulebook.
    """
    if report.replaced and not report.unrecoverable:
        return "recovered"
    if report.degraded:
        return "rerouted"
    if report.unrecoverable:
        return "stranded"
    return "recovered" if report.fully_recovered else "stranded"


@dataclass(frozen=True)
class PendingFailure:
    """One failure awaiting a failover decision."""

    kind: str  # "node" | "link"
    logical: str = ""  # node failures: the logical slot
    end_a: tuple[str, tuple] | None = None  # link failures: the two ends
    end_b: tuple[str, tuple] | None = None
    true_faulty: tuple[tuple[str, tuple], ...] = ()
    detected_at: float = 0.0  # service-clock detection/report time
    source: str = "report"  # "scan" (watchdog path) | "report" (API)
    #: Set on items re-derived from the WAL during takeover so the
    #: replayed item reuses its original (group, decision_seq) key.
    wal_key: tuple[str, int] | None = None

    @classmethod
    def from_report(
        cls, report: FailureReport, detected_at: float
    ) -> "PendingFailure":
        return cls(
            kind=report.kind,
            logical=report.logical,
            end_a=report.end_a,
            end_b=report.end_b,
            true_faulty=report.true_faulty,
            detected_at=(
                report.reported_at
                if report.reported_at is not None
                else detected_at
            ),
            source="report",
        )

    def sort_key(self) -> tuple[float, str]:
        return (self.detected_at, self.logical or str(self.end_a))

    def to_payload(self) -> dict:
        """JSON-safe form for a WAL ``intent`` record."""
        def end(value: tuple[str, tuple] | None) -> list | None:
            return [value[0], list(value[1])] if value is not None else None

        return {
            "kind": self.kind,
            "logical": self.logical,
            "end_a": end(self.end_a),
            "end_b": end(self.end_b),
            "true_faulty": [
                [device, list(iface)] for device, iface in self.true_faulty
            ],
            "detected_at": self.detected_at,
            "source": self.source,
        }

    @classmethod
    def from_payload(
        cls, data: dict, wal_key: tuple[str, int] | None = None
    ) -> "PendingFailure":
        """Re-derive a pending failure from a WAL ``intent`` payload."""
        def end(value: object) -> tuple[str, tuple] | None:
            if value is None:
                return None
            device, iface = value  # type: ignore[misc]
            return (str(device), tuple(iface))

        return cls(
            kind=str(data["kind"]),
            logical=str(data.get("logical", "")),
            end_a=end(data.get("end_a")),
            end_b=end(data.get("end_b")),
            true_faulty=tuple(
                (str(device), tuple(iface))
                for device, iface in data.get("true_faulty", [])
            ),
            detected_at=float(data.get("detected_at", 0.0)),
            source=str(data.get("source", "report")),
            wal_key=wal_key,
        )


@dataclass(frozen=True)
class FailoverDecision:
    """The outcome of one resolved failure, JSON-safe."""

    seq: int
    kind: str
    logical: str
    group: str
    detected_at: float
    decided_at: float
    latency: float
    outcome: str  # "recovered" | "rerouted" | "stranded"
    replaced: tuple[tuple[str, str], ...]
    unrecoverable: tuple[str, ...]
    degraded: tuple[str, ...]
    circuit_switches_touched: int
    recovery_time: float
    source: str = "report"
    #: The fencing epoch the committing primary held.  Deliberately
    #: *not* part of :data:`~repro.service.replay.DecisionKey`: a
    #: takeover changes the stamp, never the decision.
    epoch: int = 0

    @classmethod
    def from_report(
        cls,
        seq: int,
        pending: PendingFailure,
        group: str,
        report: RecoveryReport,
        decided_at: float,
        epoch: int = 0,
    ) -> "FailoverDecision":
        return cls(
            seq=seq,
            kind=pending.kind,
            logical=pending.logical or (report.replaced[0][0]
                                        if report.replaced else ""),
            group=group,
            detected_at=pending.detected_at,
            decided_at=decided_at,
            latency=max(0.0, decided_at - pending.detected_at),
            outcome=report_outcome(report),
            replaced=report.replaced,
            unrecoverable=report.unrecoverable,
            degraded=report.degraded,
            circuit_switches_touched=report.circuit_switches_touched,
            recovery_time=report.recovery_time,
            source=pending.source,
            epoch=epoch,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "decision",
            "seq": self.seq,
            "kind": self.kind,
            "logical": self.logical,
            "group": self.group,
            "detected_at": self.detected_at,
            "decided_at": self.decided_at,
            "latency": self.latency,
            "outcome": self.outcome,
            "replaced": [list(pair) for pair in self.replaced],
            "unrecoverable": list(self.unrecoverable),
            "degraded": list(self.degraded),
            "circuit_switches_touched": self.circuit_switches_touched,
            "recovery_time": self.recovery_time,
            "source": self.source,
            "epoch": self.epoch,
        }


@dataclass
class _Batch:
    """Work items accumulated since the resolver last woke."""

    items: list[PendingFailure] = field(default_factory=list)


class FailureGroupResolver:
    """Batches correlated failures and commits them group-concurrently."""

    def __init__(
        self,
        controller: ShareBackupController,
        clock: ServiceClock,
        on_decision: Callable[[FailoverDecision], None],
        on_error: Callable[[PendingFailure, Exception], None],
        batch_window: float = 0.0,
        wal: DecisionWAL | None = None,
        federation: ServiceFederation | None = None,
        on_fenced: Callable[
            [PendingFailure, str, int, EpochFencedError], None
        ] | None = None,
    ) -> None:
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.controller = controller
        self.clock = clock
        self.batch_window = batch_window
        self._on_decision = on_decision
        self._on_error = on_error
        self._on_fenced = on_fenced
        self.wal = wal
        self.federation = federation
        self._batch = _Batch()
        self._wakeup: asyncio.Future[None] | None = None
        # Replaying over an existing WAL resumes the sequence spaces
        # where the previous incarnation left them, so resumed work
        # reuses its original keys instead of minting colliding ones.
        self._seq = len(wal.committed_keys()) if wal is not None else 0
        self._group_seq: dict[str, int] = (
            wal.next_seqs() if wal is not None else {}
        )
        self.batches_resolved = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def submit(self, pending: PendingFailure) -> None:
        """Queue one failure for the next batch and wake the loop."""
        self._batch.items.append(pending)
        if self._wakeup is not None and not self._wakeup.done():
            self._wakeup.set_result(None)

    @property
    def backlog(self) -> int:
        return len(self._batch.items)

    # ------------------------------------------------------------------
    # the resolution loop
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Forever: wait for work, correlate a batch, commit it."""
        while True:
            if not self._batch.items:
                self._wakeup = asyncio.get_running_loop().create_future()
                try:
                    await self._wakeup
                finally:
                    self._wakeup = None
            if self.batch_window > 0:
                # Let correlated losses pile into the same batch.
                await self.clock.sleep(self.batch_window)
            batch, self._batch = self._batch, _Batch()
            if batch.items:
                await self._resolve_batch(batch.items)

    async def resolve_backlog(self) -> int:
        """Resolve whatever is queued right now (driver/test hook)."""
        batch, self._batch = self._batch, _Batch()
        if batch.items:
            await self._resolve_batch(batch.items)
        return len(batch.items)

    async def _resolve_batch(self, items: list[PendingFailure]) -> None:
        groups = self._correlate(items)
        # Every commit in this batch is stamped with the epoch observed
        # *here*: if the primary is deposed while the batch is in
        # flight, the remaining members fail the fence check instead of
        # landing as the deposed primary's late writes.
        epoch = self.federation.epoch if self.federation is not None else 0
        tasks = [
            asyncio.ensure_future(
                self._resolve_group(group_id, members, epoch)
            )
            for group_id, members in groups
        ]
        if tasks:
            await asyncio.gather(*tasks)
        self.batches_resolved += 1

    def _correlate(
        self, items: list[PendingFailure]
    ) -> list[tuple[str, list[PendingFailure]]]:
        """Partition a batch into failure groups, deterministically.

        Link failures touch two groups (one per endpoint); they are
        keyed by the *pair* so the controller call stays atomic, and
        ordered with node failures by the shared sort key.
        """
        by_group: dict[str, list[PendingFailure]] = {}
        for pending in items:
            try:
                key = self._group_key(pending)
            # A report naming a device the controller does not own must
            # not kill the resolution loop — it is journalled like any
            # other failed commit and the rest of the batch proceeds.
            except Exception as exc:  # repro: noqa[EXC001]
                self._on_error(pending, exc)
                continue
            by_group.setdefault(key, []).append(pending)
        for members in by_group.values():
            members.sort(key=PendingFailure.sort_key)
        return sorted(by_group.items())

    def _group_key(self, pending: PendingFailure) -> str:
        net = self.controller.net
        if pending.kind == "node":
            return net.group_of(pending.logical).group_id
        parts = []
        assert pending.end_a is not None and pending.end_b is not None
        for device, _iface in (pending.end_a, pending.end_b):
            if not device.startswith("H."):
                parts.append(net.group_of(device).group_id)
        return "+".join(sorted(parts)) or "hosts"

    async def _resolve_group(
        self, group_id: str, members: list[PendingFailure], epoch: int = 0
    ) -> None:
        """Commit one group's failures in order.

        The commit itself is synchronous controller code (two-phase
        validate-then-commit plus the retry/degradation ladder); the
        ``sleep(0)`` between members keeps one exhausted group from
        starving the others of the event loop.

        With a WAL attached each member is write-ahead logged: intents
        for the whole group land *before* the first commit, every
        commit is fence-checked against the batch epoch, and the commit
        record is durable before the decision callback fires — so a
        primary crash inside that callback can never lose the decision
        it interrupts, and replaying an already-committed key is a
        no-op rather than a double commit.
        """
        keyed: list[tuple[PendingFailure, int]] = []
        for pending in members:
            seq = self._wal_seq(group_id, pending)
            keyed.append((pending, seq))
            if self.wal is not None:
                self.wal.append_intent(
                    group_id, seq, epoch, pending.to_payload()
                )
        for pending, seq in keyed:
            if self.wal is not None and self.wal.is_committed(group_id, seq):
                # Idempotent replay: this key was durably decided by a
                # previous incarnation (or an earlier duplicate submit).
                continue
            try:
                if self.federation is not None:
                    self.federation.check_fence(
                        epoch, context=f"{group_id}:{seq}"
                    )
                report = self._commit(pending)
            except EpochFencedError as exc:
                # A deposed primary's late write.  The controller was
                # never touched; the intent stays incomplete for the
                # fenced-in primary to resume.
                if self.wal is not None:
                    self.wal.append_fence(
                        group_id, seq, epoch, {"error": str(exc)}
                    )
                if self._on_fenced is not None:
                    self._on_fenced(pending, group_id, seq, exc)
                continue
            # Every failure is journalled through the on_error callback
            # (service error log + event stream); one poisoned failure
            # must not kill the whole resolution loop.
            except Exception as exc:  # repro: noqa[EXC001]
                # Tombstone the key so takeover replay does not retry a
                # commit that terminally failed (at-most-once errors).
                if self.wal is not None:
                    self.wal.append_commit(
                        group_id,
                        seq,
                        epoch,
                        {"error": type(exc).__name__, "detail": str(exc)},
                    )
                self._on_error(pending, exc)
                continue
            decision = FailoverDecision.from_report(
                self._next_seq(),
                pending,
                group_id,
                report,
                self.clock.now(),
                epoch=epoch,
            )
            if self.wal is not None:
                self.wal.append_commit(group_id, seq, epoch, decision.to_dict())
            self._on_decision(decision)
            await asyncio.sleep(0)

    def _commit(self, pending: PendingFailure) -> RecoveryReport:
        now = self.clock.now()
        if pending.kind == "node":
            return self.controller.handle_node_failure(
                pending.logical, now=now
            )
        assert pending.end_a is not None and pending.end_b is not None
        return self.controller.handle_link_failure(
            pending.end_a,
            pending.end_b,
            now=now,
            true_faulty_interfaces=pending.true_faulty,
        )

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _wal_seq(self, group_id: str, pending: PendingFailure) -> int:
        """Allocate (or reuse) an item's per-group decision_seq.

        Work re-derived from the WAL carries its original key; fresh
        work draws the next sequence number for its group.
        """
        if pending.wal_key is not None and pending.wal_key[0] == group_id:
            return pending.wal_key[1]
        nxt = self._group_seq.get(group_id, 0)
        self._group_seq[group_id] = nxt + 1
        return nxt
