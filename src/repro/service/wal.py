"""The write-ahead decision log: append-before-commit durability.

ShareBackup's §4 keeps multiple controller replicas so recovery
survives the recovery machinery itself failing.  Replicas alone are not
enough for the *service* path: a primary that crashes mid-batch in the
:class:`~repro.service.resolver.FailureGroupResolver` would otherwise
lose in-flight failures (never decided) or double-commit them (decided
by both the deposed primary and its successor).  The
:class:`DecisionWAL` closes that gap with three record types, one JSON
line each:

* ``intent`` — appended *before* the controller commit, carrying the
  serialized :class:`~repro.service.resolver.PendingFailure` payload.
  An intent without a matching commit is exactly the work a newly
  elected primary must resume.
* ``commit`` — appended after the controller commit succeeds and before
  the decision is published, carrying the decision payload.  The pair
  key ``(failure_group_id, decision_seq)`` makes replay idempotent:
  a key that is committed is never re-executed.
* ``fence`` — an audit record for a commit rejected by epoch fencing
  (a deposed primary's late write).  Fences never resurrect work; the
  intent they annotate stays incomplete until a fenced-in primary
  resumes it.

Every record carries a CRC-32 checksum over its canonical JSON body.
Opening a log recovers it line by line: a corrupt *tail* (torn final
write — the crash case) is truncated and forgotten; a corrupt record
*followed by valid ones* is real corruption and raises
:class:`WalCorruptionError` rather than silently dropping decisions
from the middle of history.

All I/O here is synchronous and runs from the resolver's synchronous
commit path — never inside an ``await`` gap — so the append is ordered
before the decision callback by construction (and SVC001's no-blocking-
calls-in-coroutines rule does not apply to these plain methods).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = ["WalRecord", "WalCorruptionError", "DecisionWAL"]

#: The record vocabulary; anything else fails checksum-independent decode.
RECORD_TYPES: tuple[str, ...] = ("intent", "commit", "fence")


class WalCorruptionError(Exception):
    """A corrupt record *inside* the log (not a torn tail)."""


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry, keyed by ``(group, group_seq)``."""

    type: str  # "intent" | "commit" | "fence"
    group: str  # failure-group id
    group_seq: int  # per-group decision sequence number
    epoch: int  # fencing epoch the writer held
    data: dict

    @property
    def key(self) -> tuple[str, int]:
        return (self.group, self.group_seq)


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _encode(record: WalRecord) -> str:
    """One JSON line: the record body plus a CRC over its canonical form."""
    body = {
        "type": record.type,
        "group": record.group,
        "group_seq": record.group_seq,
        "epoch": record.epoch,
        "data": record.data,
    }
    crc = zlib.crc32(_canonical(body).encode("utf-8")) & 0xFFFFFFFF
    body["crc"] = crc
    return _canonical(body)


def _decode(line: str) -> WalRecord | None:
    """Parse one line back into a record; ``None`` for anything torn."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict) or "crc" not in payload:
        return None
    crc = payload.pop("crc")
    try:
        expected = zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF
    except (TypeError, ValueError):
        return None
    if crc != expected:
        return None
    try:
        record = WalRecord(
            type=str(payload["type"]),
            group=str(payload["group"]),
            group_seq=int(payload["group_seq"]),
            epoch=int(payload["epoch"]),
            data=dict(payload["data"]),
        )
    except (KeyError, TypeError, ValueError):
        return None
    if record.type not in RECORD_TYPES:
        return None
    return record


class DecisionWAL:
    """Append-before-commit decision log with idempotent replay.

    ``path=None`` keeps the log purely in memory — same semantics, no
    durability — which is what the deterministic chaos replays use (the
    crash they simulate is a *primary* crash inside one process, not a
    process crash).  With a path, records additionally persist as JSONL
    and survive a process restart.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: list[WalRecord] = []
        #: intents in append order (dict preserves insertion order).
        self._intents: dict[tuple[str, int], WalRecord] = {}
        self._commits: dict[tuple[str, int], WalRecord] = {}
        self._fences: list[WalRecord] = []
        self.truncated_bytes = 0
        self._file = None
        if self.path is not None:
            self._recover()
            self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Load the log, truncating a torn tail; bail on mid-log damage."""
        assert self.path is not None
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        good_bytes = 0
        bad_at: int | None = None
        offset = 0
        for chunk in raw.split(b"\n"):
            line_end = offset + len(chunk) + 1  # +1 for the newline
            if chunk:
                record = _decode(chunk.decode("utf-8", errors="replace"))
                if record is None:
                    # A record without a trailing newline is also treated
                    # as torn: the write was cut mid-line.
                    if bad_at is None:
                        bad_at = offset
                elif bad_at is not None:
                    raise WalCorruptionError(
                        f"{self.path}: valid record at byte {offset} after "
                        f"corrupt record at byte {bad_at}; refusing to "
                        "silently drop decisions from the middle of the log"
                    )
                elif line_end <= len(raw):  # complete line (newline present)
                    self._admit(record)
                    good_bytes = line_end
                else:  # valid JSON but no newline: torn mid-flush
                    if bad_at is None:
                        bad_at = offset
            offset = line_end
        if good_bytes < len(raw):
            self.truncated_bytes = len(raw) - good_bytes
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)

    def _admit(self, record: WalRecord) -> None:
        self._records.append(record)
        if record.type == "intent":
            self._intents.setdefault(record.key, record)
        elif record.type == "commit":
            self._commits.setdefault(record.key, record)
        else:
            self._fences.append(record)

    # ------------------------------------------------------------------
    # the append side (idempotent by key)
    # ------------------------------------------------------------------

    def append_intent(
        self, group: str, group_seq: int, epoch: int, payload: dict
    ) -> bool:
        """Log intent to decide ``(group, group_seq)``; no-op if known."""
        key = (group, group_seq)
        if key in self._intents or key in self._commits:
            return False
        self._append(WalRecord("intent", group, group_seq, epoch, payload))
        return True

    def append_commit(
        self, group: str, group_seq: int, epoch: int, payload: dict
    ) -> bool:
        """Log a committed decision; no-op if the key already committed."""
        key = (group, group_seq)
        if key in self._commits:
            return False
        self._append(WalRecord("commit", group, group_seq, epoch, payload))
        return True

    def append_fence(
        self, group: str, group_seq: int, epoch: int, detail: dict
    ) -> None:
        """Audit one fencing rejection (always appended; never replayed)."""
        self._append(WalRecord("fence", group, group_seq, epoch, detail))

    def _append(self, record: WalRecord) -> None:
        self._admit(record)
        if self._file is not None:
            self._file.write(_encode(record) + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # the replay side
    # ------------------------------------------------------------------

    def is_committed(self, group: str, group_seq: int) -> bool:
        return (group, group_seq) in self._commits

    def incomplete(self) -> list[WalRecord]:
        """Intents without commits, in original append order.

        This is the takeover work list: everything a deposed primary
        promised to decide but never durably decided.  Calling recovery
        twice is safe — once a key commits it leaves this list, so a
        second replay resumes nothing.
        """
        return [
            record
            for key, record in self._intents.items()
            if key not in self._commits
        ]

    def committed_keys(self) -> list[tuple[str, int]]:
        return list(self._commits)

    def next_seqs(self) -> dict[str, int]:
        """Per-group next decision_seq (max known + 1) for the resolver."""
        highest: dict[str, int] = {}
        for group, group_seq in (*self._intents, *self._commits):
            highest[group] = max(highest.get(group, -1), group_seq)
        return {group: seq + 1 for group, seq in highest.items()}

    @property
    def records(self) -> tuple[WalRecord, ...]:
        return tuple(self._records)

    @property
    def fences(self) -> tuple[WalRecord, ...]:
        return tuple(self._fences)

    def stats(self) -> dict:
        return {
            "records": len(self._records),
            "intents": len(self._intents),
            "commits": len(self._commits),
            "fences": len(self._fences),
            "incomplete": len(self.incomplete()),
            "truncated_bytes": self.truncated_bytes,
            "path": str(self.path) if self.path is not None else None,
        }

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "DecisionWAL":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
