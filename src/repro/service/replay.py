"""Replay chaos schedules through the *live* service, deterministically.

:class:`ServiceReplay` is the service-path twin of
:class:`repro.chaos.harness.ChaosHarness`: the same network, the same
controller construction (seed discipline included), the same
:class:`~repro.chaos.faults.FaultSchedule` vocabulary — but instead of
a call-driven :class:`~repro.core.watchdog.WatchdogSimulation`, the
faults play out against a running :class:`RecoveryService` under a
:class:`~repro.service.clock.VirtualClock`:

* a heartbeat emitter submits keep-alives for every healthy,
  non-silenced physical switch at each probe boundary (the probes a
  real fleet would send);
* ``silent-node-failure`` just *stops the target's heartbeats* — the
  service's boundary scan must notice, exactly like the paper's
  keep-alive detection;
* ``heartbeat-loss`` suppresses a healthy switch's probes for
  ``duration`` (spurious failover if it outlives the miss threshold);
* the hardware/control-plane kinds (``stuck-crosspoint``,
  ``transient-reconfig``, ``cs-reboot``, ``pool-drain``,
  ``controller-crash``) mutate the same state the chaos harness
  mutates, on the virtual timeline — ``controller-crash`` through the
  *service's own* :class:`~repro.service.federation.ServiceFederation`,
  so chaos schedules exercise the same election code the REST service
  runs;
* ``service-primary-crash`` arms a decision-count trigger that deposes
  the primary synchronously inside a decision callback — genuinely
  mid-batch — proving the WAL + epoch-fencing takeover path keeps the
  decision stream identical to an uncrashed run.

Because the clock is virtual and every queue/batch boundary is settled
between time advances, a replay is a pure function of
``(config, schedule)`` — which is what lets the regression suite assert
the service path is *decision-identical* to the call-driven path.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

from ..chaos.faults import ChaosFault, FaultSchedule, generate_schedule
from ..chaos.harness import ChaosScenarioConfig
from ..core.circuit_switch import CircuitSwitch, CircuitSwitchError
from ..core.controller import (
    ControllerCluster,
    RecoveryReport,
    ShareBackupController,
)
from ..core.sharebackup import ShareBackupNetwork
from ..rng import derive_seed
from .clock import VirtualClock
from .ingest import Heartbeat
from .resolver import FailoverDecision, report_outcome
from .service import RecoveryService, ServiceConfig
from .wal import DecisionWAL

__all__ = [
    "DecisionKey",
    "ReplayOutcome",
    "ServiceReplay",
    "decision_key",
    "report_decision_key",
    "run_service_replay",
]

#: The order-insensitive identity of one failover decision.
DecisionKey = tuple[
    str,  # kind
    str,  # logical slot
    str,  # outcome
    tuple[tuple[str, str], ...],  # replaced
    tuple[str, ...],  # unrecoverable
    tuple[str, ...],  # degraded
]


def decision_key(decision: FailoverDecision) -> DecisionKey:
    """Comparable identity of a service-path decision."""
    return (
        decision.kind,
        decision.logical,
        decision.outcome,
        tuple(decision.replaced),
        tuple(decision.unrecoverable),
        tuple(decision.degraded),
    )


def report_decision_key(report: RecoveryReport) -> DecisionKey:
    """Comparable identity of a call-driven :class:`RecoveryReport`.

    Uses the same outcome/logical derivation as
    :meth:`FailoverDecision.from_report`, so the two paths meet on
    common ground.
    """
    if report.replaced:
        logical = report.replaced[0][0]
    elif report.unrecoverable:
        logical = report.unrecoverable[0]
    else:
        logical = ""
    return (
        report.kind,
        logical,
        report_outcome(report),
        tuple(report.replaced),
        tuple(report.unrecoverable),
        tuple(report.degraded),
    )


@dataclass(frozen=True)
class ReplayOutcome:
    """The distilled result of one service-path replay."""

    seed: int
    decisions: tuple[FailoverDecision, ...]
    detections: tuple[tuple[str, float], ...]
    elections: int
    errors: int
    events_published: int
    metrics: dict[str, object]
    fencing_rejections: int = 0
    primary_crashes: int = 0
    final_epoch: int = 0

    def decision_keys(self) -> tuple[DecisionKey, ...]:
        """Sorted (order-insensitive) decision identities."""
        return tuple(sorted(decision_key(d) for d in self.decisions))

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.outcome] = counts.get(decision.outcome, 0) + 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "decisions": [d.to_dict() for d in self.decisions],
            "detections": [list(d) for d in self.detections],
            "elections": self.elections,
            "errors": self.errors,
            "events_published": self.events_published,
            "outcomes": self.outcome_counts(),
            "fencing_rejections": self.fencing_rejections,
            "primary_crashes": self.primary_crashes,
            "final_epoch": self.final_epoch,
        }


class ServiceReplay:
    """One chaos schedule, replayed through a live RecoveryService."""

    def __init__(
        self,
        config: ChaosScenarioConfig,
        schedule: FaultSchedule | None = None,
        service_config: ServiceConfig | None = None,
    ) -> None:
        self.config = config
        self.schedule = schedule or generate_schedule(
            config.k,
            config.n,
            derive_seed(config.seed, "schedule"),
            duration=config.duration,
            profile=config.profile,
        )
        self.net = ShareBackupNetwork(config.k, config.n)
        # Same construction (and controller RNG label) as ChaosHarness:
        # the two paths must start from interchangeable controllers.
        self.controller = ShareBackupController(
            self.net,
            degrade_to_reroute=True,
            rng=derive_seed(config.seed, "controller"),
        )
        self.cluster = ControllerCluster(controller=self.controller)
        self.clock = VirtualClock()
        # The cluster and an (in-memory) WAL ride inside the service, so
        # chaos-injected crashes run the same federation/takeover code a
        # deployed service runs — not a detached side-channel cluster.
        self.service = RecoveryService(
            self.controller,
            clock=self.clock,
            config=service_config or ServiceConfig(),
            cluster=self.cluster,
            wal=DecisionWAL(),
        )
        #: Physical switches whose heartbeats stopped (dead switches).
        self.silenced: set[str] = set()
        #: Healthy switches whose heartbeats chaos is eating in transit.
        self.suppressed: set[str] = set()

    # ------------------------------------------------------------------

    def probe_interval(self) -> float:
        return self.controller.timing.probe_interval

    def detection_deadline(self, death_time: float) -> float:
        """Delegates to the controller — shared with the watchdog path."""
        return self.controller.detection_deadline(death_time)

    def default_horizon(self) -> float:
        """Far enough to detect and settle every scheduled fault."""
        interval = self.probe_interval()
        latest = interval
        for fault in self.schedule.faults:
            latest = max(
                latest,
                fault.time + fault.duration,
                self.detection_deadline(fault.time + fault.duration),
            )
        return latest + 2 * interval

    # ------------------------------------------------------------------

    def run(self, horizon: float | None = None) -> ReplayOutcome:
        """Replay to ``horizon`` (default: past every detection)."""
        return asyncio.run(self._run(horizon))

    async def _run(self, horizon: float | None) -> ReplayOutcome:
        end = horizon if horizon is not None else self.default_horizon()
        await self.service.start()
        side_tasks = [asyncio.ensure_future(self._emit_heartbeats())]
        side_tasks.extend(
            asyncio.ensure_future(self._inject(fault))
            for fault in self.schedule.faults
        )
        await self.clock.run_all(end)
        for task in side_tasks:
            task.cancel()
        await asyncio.gather(*side_tasks, return_exceptions=True)
        metrics = self.service.metrics()
        await self.service.stop()
        return ReplayOutcome(
            seed=self.config.seed,
            decisions=tuple(self.service.decisions),
            detections=tuple(self.service.detections),
            elections=self.cluster.elections,
            errors=len(self.service.errors),
            events_published=self.service.bus.published,
            metrics=metrics,
            fencing_rejections=len(self.service.fencing_rejections),
            primary_crashes=len(self.service.primary_crashes),
            final_epoch=self.cluster.epoch,
        )

    # ------------------------------------------------------------------
    # the simulated fleet
    # ------------------------------------------------------------------

    async def _emit_heartbeats(self) -> None:
        """Keep-alives from every healthy switch, at each probe boundary."""
        interval = self.probe_interval()
        while True:
            now = self.clock.now()
            boundary = (math.floor(now / interval + 1e-9) + 1) * interval
            await self.clock.sleep(boundary - now)
            now = self.clock.now()
            for physical in sorted(self.net.physical_health):
                if (
                    self.net.physical_health[physical]
                    and physical not in self.silenced
                    and physical not in self.suppressed
                ):
                    self.service.submit_heartbeat(Heartbeat(physical, now))

    # ------------------------------------------------------------------
    # fault injection (mirrors repro.chaos.harness installers)
    # ------------------------------------------------------------------

    async def _inject(self, fault: ChaosFault) -> None:
        await self.clock.sleep(fault.time)
        handler = {
            "silent-node-failure": self._silent_failure,
            "heartbeat-loss": self._heartbeat_loss,
            "stuck-crosspoint": self._stuck_crosspoint,
            "transient-reconfig": self._transient_reconfig,
            "cs-reboot": self._cs_reboot,
            "pool-drain": self._pool_drain,
            "controller-crash": self._controller_crash,
            "service-primary-crash": self._service_primary_crash,
        }[fault.kind]
        await handler(fault)

    async def _silent_failure(self, fault: ChaosFault) -> None:
        physical = self.net.serving_switch(fault.target)
        self.silenced.add(physical)

    async def _heartbeat_loss(self, fault: ChaosFault) -> None:
        physical = self.net.serving_switch(fault.target)
        self.suppressed.add(physical)
        if fault.duration <= 0:
            return
        await self.clock.sleep(fault.duration)
        self.suppressed.discard(physical)
        if self.net.physical_health.get(physical, False):
            # Not yet condemned: the backlog of keep-alives arrives and
            # the silence window closes (watchdog's resume path).
            self.service.submit_heartbeat(
                Heartbeat(physical, self.clock.now())
            )

    async def _stuck_crosspoint(self, fault: ChaosFault) -> None:
        cs = self.net.circuit_switches[fault.target]
        jammed = 0
        for group in self.net.groups.values():
            for spare in list(group.spares):
                ports = cs.ports_of_device(spare)
                if ports:
                    cs.stuck_ports.update(ports)
                    jammed += 1
                    if jammed >= fault.count:
                        return

    async def _transient_reconfig(self, fault: ChaosFault) -> None:
        budget = {"remaining": fault.count}

        def injector(cs: CircuitSwitch, changes: dict) -> None:
            if budget["remaining"] > 0:
                budget["remaining"] -= 1
                raise CircuitSwitchError(
                    f"{cs.name}: injected transient reconfiguration failure "
                    f"({budget['remaining']} more to come)"
                )

        self.net.circuit_switches[fault.target].fault_injector = injector

    async def _cs_reboot(self, fault: ChaosFault) -> None:
        self.net.circuit_switches[fault.target].crash()
        await self.clock.sleep(max(fault.duration, 1e-6))
        self.controller.circuit_switch_rebooted(
            fault.target, now=self.clock.now()
        )

    async def _pool_drain(self, fault: ChaosFault) -> None:
        group = self.net.groups[fault.target]
        for _ in range(min(fault.count, len(group.spares))):
            spare = group.spares.pop()
            group.offline.add(spare)
            self.net.physical_health[spare] = False

    async def _controller_crash(self, fault: ChaosFault) -> None:
        # Routed through the service's federation (not the raw cluster)
        # so the service observes the election: it publishes the event
        # and replays any incomplete WAL intents on takeover.
        failed = self.service.federation.crash_primary()
        if failed is not None and fault.duration > 0:
            await self.clock.sleep(fault.duration)
            self.service.federation.restore(failed)

    async def _service_primary_crash(self, fault: ChaosFault) -> None:
        # The crash fires ``count`` decisions from now, synchronously
        # inside the decision callback — mid-batch by construction.  No
        # restore: the remaining replicas carry the rest of the replay,
        # which is exactly the takeover path under test.
        self.service.federation.arm_primary_crash(
            after_decisions=max(1, fault.count)
        )


def run_service_replay(
    config: ChaosScenarioConfig,
    schedule: FaultSchedule | None = None,
    horizon: float | None = None,
) -> ReplayOutcome:
    """Build the service stack, replay the schedule, distil the result."""
    return ServiceReplay(config, schedule=schedule).run(horizon)
