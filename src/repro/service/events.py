"""Fan-out of service events to streaming subscribers.

The service publishes JSON-safe event dicts — failover decisions,
:class:`~repro.core.degradation.DegradationReport` records, lifecycle
markers — and any number of subscribers (the ``GET /events`` JSONL
stream, the chaos replay driver, tests) each read their own bounded
buffer.  A slow subscriber never stalls the control plane: its buffer
drops oldest events and counts what it lost, mirroring the ingestion
layer's backpressure discipline on the egress side.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import AsyncIterator

__all__ = ["EventBus", "Subscription"]

#: Sentinel queued to tell a subscriber the bus closed.
_CLOSED = object()


class Subscription:
    """One subscriber's bounded view of the event stream."""

    def __init__(self, bus: "EventBus", maxsize: int) -> None:
        self._bus = bus
        self._maxsize = maxsize
        self._items: deque[object] = deque()
        self._waiter: asyncio.Future[None] | None = None
        self.dropped = 0
        self.closed = False

    def _push(self, event: object) -> None:
        if self.closed:
            return
        if len(self._items) >= self._maxsize:
            self._items.popleft()
            self.dropped += 1
        self._items.append(event)
        self._wake()

    def _wake(self) -> None:
        if self._waiter is not None and not self._waiter.done():
            self._waiter.set_result(None)

    async def next_event(self) -> dict | None:
        """The next event, or ``None`` once the bus has closed."""
        while True:
            if self._items:
                item = self._items.popleft()
                if item is _CLOSED:
                    self.closed = True
                    return None
                assert isinstance(item, dict)
                return item
            if self.closed:
                return None
            self._waiter = asyncio.get_running_loop().create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None

    def __aiter__(self) -> AsyncIterator[dict]:
        return self._iterate()

    async def _iterate(self) -> AsyncIterator[dict]:
        while True:
            event = await self.next_event()
            if event is None:
                return
            yield event

    def unsubscribe(self) -> None:
        self.closed = True
        self._items.clear()
        self._wake()
        self._bus._subscriptions.discard(self)


class EventBus:
    """Publish/subscribe hub for the service's event stream."""

    def __init__(self) -> None:
        self._subscriptions: set[Subscription] = set()
        self._seq = 0
        self.published = 0
        self.closed = False

    def subscribe(self, maxsize: int = 1024) -> Subscription:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        sub = Subscription(self, maxsize)
        if self.closed:
            sub._push(_CLOSED)
        else:
            self._subscriptions.add(sub)
        return sub

    def publish(self, event: dict) -> dict:
        """Stamp ``event`` with a sequence number and fan it out.

        Returns the stamped event (the caller's dict, mutated) so
        publishers can log exactly what subscribers saw.
        """
        if self.closed:
            return event
        event.setdefault("seq", self._seq)
        self._seq += 1
        self.published += 1
        for sub in list(self._subscriptions):
            sub._push(event)
        return event

    def close(self) -> None:
        """End every stream; subscribers see end-of-stream after their
        buffered backlog."""
        if self.closed:
            return
        self.closed = True
        for sub in list(self._subscriptions):
            sub._push(_CLOSED)
        self._subscriptions.clear()
