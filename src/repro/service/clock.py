"""The service's time authority: one clock interface, two personalities.

The recovery service (:mod:`repro.service.service`) is a long-lived set
of coroutines — probe ingestion, boundary scans, failure-group
resolution — and every one of them asks *this* object what time it is
and how to wait.  That indirection is what lets the same service code
run in two modes:

* :class:`WallClock` — real time: ``now()`` is a monotonic offset from
  service start and ``sleep()`` is :func:`asyncio.sleep`.  The SLO
  benchmark (:mod:`repro.service.loadgen`) runs here, so its decision
  latencies are genuine wall-clock numbers.
* :class:`VirtualClock` — simulated time under test control: ``sleep()``
  parks the coroutine on a deadline heap and time only advances when the
  driver (:meth:`VirtualClock.run_until`) says so.  Two runs of the same
  scenario execute the exact same interleaving, which is what makes the
  chaos-replay A/B test (service path vs. call-driven
  :class:`~repro.core.watchdog.WatchdogSimulation`) a determinism
  *equation* rather than a flaky race.

The virtual driver alternates two moves: *settle* (yield to the event
loop a fixed number of times so every causal chain at the current
instant runs dry — offer → ingest → resolve → publish is four hops) and
*advance* (pop the earliest deadline, move ``now``, wake that sleeper).
Sleepers due at one instant wake in the order their sleeps were issued,
so the schedule is a pure function of the program, never of the host.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Protocol

__all__ = ["ServiceClock", "WallClock", "VirtualClock", "SETTLE_ROUNDS"]

#: Event-loop yields per settle pass.  Each yield lets every runnable
#: task take one step; the longest same-instant causal chain in the
#: service (probe offer → ingest handle → resolver batch → decision →
#: event fan-out → subscriber) is well under this.
SETTLE_ROUNDS = 16

#: Deadlines within this of each other count as the same instant.
_TIME_EPS = 1e-12


class ServiceClock(Protocol):
    """What the service needs from time: a reading and a wait."""

    def now(self) -> float:
        """Seconds since the clock's origin."""
        ...  # pragma: no cover - protocol

    async def sleep(self, delay: float) -> None:
        """Suspend the calling coroutine for ``delay`` seconds."""
        ...  # pragma: no cover - protocol


class WallClock:
    """Real time, as a monotonic offset from construction."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(max(0.0, delay))


class VirtualClock:
    """Deterministic simulated time for service tests and replays.

    Coroutines call :meth:`sleep`; the test/replay driver pumps time
    forward with :meth:`run_until` (or one :meth:`settle` at the current
    instant).  Nothing here reads the host clock.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._seq = itertools.count()
        #: (deadline, issue order, waiter) — a min-heap.
        self._sleepers: list[tuple[float, int, asyncio.Future[None]]] = []

    def now(self) -> float:
        return self._now

    @property
    def pending_sleepers(self) -> int:
        """Sleeps issued but not yet woken (cancelled ones included
        until their turn comes up)."""
        return len(self._sleepers)

    def next_deadline(self) -> float | None:
        """The earliest pending wake-up time, if any."""
        return self._sleepers[0][0] if self._sleepers else None

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            # A zero-length sleep is still a scheduling point.
            await asyncio.sleep(0)
            return
        waiter: asyncio.Future[None] = (
            asyncio.get_running_loop().create_future()
        )
        heapq.heappush(
            self._sleepers, (self._now + delay, next(self._seq), waiter)
        )
        await waiter

    # ------------------------------------------------------------------
    # the driver side
    # ------------------------------------------------------------------

    async def settle(self, rounds: int = SETTLE_ROUNDS) -> None:
        """Let every causal chain at the current instant run dry."""
        for _ in range(rounds):
            await asyncio.sleep(0)

    async def run_until(self, deadline: float) -> None:
        """Advance virtual time to ``deadline``, waking sleepers in order.

        Each due sleeper is woken individually and the loop settles
        before the next advance, so a woken coroutine that issues a new
        (possibly earlier-than-the-next) sleep is honoured.
        """
        await self.settle()
        while self._sleepers and (
            self._sleepers[0][0] <= deadline + _TIME_EPS
        ):
            due, _, waiter = heapq.heappop(self._sleepers)
            self._now = max(self._now, due)
            if not waiter.done():
                waiter.set_result(None)
            await self.settle()
        self._now = max(self._now, deadline)
        await self.settle()

    async def run_all(self, horizon: float = float("inf")) -> None:
        """Drain every pending sleeper up to ``horizon``."""
        # Settle before the first deadline check: freshly spawned tasks
        # have not run yet, so their initial sleeps are not on the heap.
        await self.settle()
        while True:
            upcoming = self.next_deadline()
            if upcoming is None or upcoming > horizon:
                break
            await self.run_until(upcoming)
        if horizon != float("inf"):
            self._now = max(self._now, horizon)
        await self.settle()
