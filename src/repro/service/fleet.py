"""Synthetic fleet registry for load generation.

The controller only knows the physical switches of its ShareBackup
network — a few dozen for the test topologies.  The SLO benchmark needs
*tens of thousands* of heartbeat sources, so the service keeps this
side table: any heartbeat from a switch the controller does not own is
recorded here instead of raising ``KeyError``.  The registry is pure
bookkeeping (liveness map + counters); it exists so the ingest path
under benchmark load does the same per-probe work a real deployment
would (lookup + timestamp write), not so the fleet participates in
failover.
"""

from __future__ import annotations

__all__ = ["FleetRegistry"]


class FleetRegistry:
    """Liveness bookkeeping for switches outside the controller's net."""

    def __init__(self) -> None:
        self._last_seen: dict[str, float] = {}
        self.heartbeats_recorded = 0

    def __len__(self) -> int:
        return len(self._last_seen)

    def __contains__(self, switch: str) -> bool:
        return switch in self._last_seen

    def register(self, switch: str) -> None:
        """Pre-register a switch (its last-seen time starts at 0)."""
        self._last_seen.setdefault(switch, 0.0)

    def register_many(self, prefix: str, count: int) -> list[str]:
        """Register ``count`` switches named ``{prefix}{index}``."""
        names = [f"{prefix}{index}" for index in range(count)]
        for name in names:
            self.register(name)
        return names

    def record(self, switch: str, now: float) -> None:
        """A heartbeat arrived (auto-registers unknown switches)."""
        self._last_seen[switch] = now
        self.heartbeats_recorded += 1

    def last_seen(self, switch: str) -> float | None:
        return self._last_seen.get(switch)

    def silent(self, now: float, deadline: float) -> list[str]:
        """Fleet members silent for longer than ``deadline`` seconds."""
        return sorted(
            switch
            for switch, seen in self._last_seen.items()
            if now - seen > deadline
        )
