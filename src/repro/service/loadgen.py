"""Deterministic load-test harness for the service SLO benchmark.

Drives a live :class:`~repro.service.service.RecoveryService` (wall
clock) with the two loads the paper's control plane must absorb at
once:

* a **probe storm** — a synthetic fleet of tens of thousands of
  switches heartbeating continuously through the bounded ingestion
  queue (drop-oldest soaks the excess, and the counters prove it);
* **failure waves** — bursts of over a thousand concurrent failure
  reports, round-robined across every logical slot of a real
  ShareBackup network with graceful degradation on, every spare pool
  repaired between waves.

Every report produces exactly one failover decision (recovered,
rerouted, or stranded), each carrying its submission→decision latency;
the harness distils them into the p50/p99/p999 SLO summary that
``benchmarks/bench_service_slo.py`` records as ``BENCH_service.json``.
Target order is a pure function of the seed
(:func:`repro.rng.derive_seed` discipline); only the measured latencies
depend on the host.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..core.controller import ShareBackupController
from ..core.sharebackup import ShareBackupNetwork
from ..rng import derive_seed, ensure_rng
from .clock import WallClock
from .ingest import FailureReport, Heartbeat
from .service import RecoveryService, ServiceConfig

__all__ = ["LoadTestConfig", "LoadTestResult", "run_load_test"]

#: Safety valve: a wave that produces no new decision for this many
#: polls in a row aborts the run instead of hanging CI.
_STALL_POLLS = 5000


@dataclass(frozen=True)
class LoadTestConfig:
    """One SLO load-test run, fully specified."""

    k: int = 8
    n: int = 2
    switches: int = 10_000
    failures: int = 1_024
    wave_size: int = 1_024
    seed: int = 0
    heartbeat_queue_size: int = 4_096
    report_queue_size: int = 4_096

    def __post_init__(self) -> None:
        if self.switches < 1 or self.failures < 1 or self.wave_size < 1:
            raise ValueError("switches, failures, wave_size must be >= 1")
        if self.wave_size > self.report_queue_size:
            raise ValueError(
                "wave_size must fit in the report queue "
                f"({self.wave_size} > {self.report_queue_size})"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "k": self.k,
            "n": self.n,
            "switches": self.switches,
            "failures": self.failures,
            "wave_size": self.wave_size,
            "seed": self.seed,
            "heartbeat_queue_size": self.heartbeat_queue_size,
            "report_queue_size": self.report_queue_size,
        }


@dataclass(frozen=True)
class LoadTestResult:
    """Distilled outcome of one load-test run (JSON-safe)."""

    config: LoadTestConfig
    duration: float
    failures_submitted: int
    failures_rejected: int
    decisions: int
    errors: int
    latency: dict[str, float]
    outcomes: dict[str, int]
    heartbeat_queue: dict[str, object]
    report_queue: dict[str, object]
    fleet_heartbeats: int

    def to_dict(self) -> dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "duration": self.duration,
            "failures_submitted": self.failures_submitted,
            "failures_rejected": self.failures_rejected,
            "decisions": self.decisions,
            "errors": self.errors,
            "latency": dict(self.latency),
            "outcomes": dict(self.outcomes),
            "heartbeat_queue": dict(self.heartbeat_queue),
            "report_queue": dict(self.report_queue),
            "fleet_heartbeats": self.fleet_heartbeats,
        }


def run_load_test(config: LoadTestConfig | None = None) -> LoadTestResult:
    """Run one load test on a fresh event loop and distil the result."""
    return asyncio.run(_run(config or LoadTestConfig()))


async def _run(config: LoadTestConfig) -> LoadTestResult:
    net = ShareBackupNetwork(config.k, config.n)
    controller = ShareBackupController(
        net,
        degrade_to_reroute=True,
        rng=derive_seed(config.seed, "controller"),
    )
    service = RecoveryService(
        controller,
        clock=WallClock(),
        config=ServiceConfig(
            heartbeat_queue_size=config.heartbeat_queue_size,
            report_queue_size=config.report_queue_size,
            # Failures are injected by *report* here, and under wall
            # clock a 10k-probe storm cycle can outlast the 3 ms miss
            # window — so the boundary scan is parked, or it would
            # condemn switches whose heartbeats are merely queued
            # behind the storm.  The scan path has its own coverage
            # (the virtual-clock chaos replays), where detection
            # timing is exact by construction.
            scan_interval=3600.0,
        ),
    )
    fleet = service.fleet.register_many("sw-", config.switches)
    await service.start()
    storm = asyncio.ensure_future(_heartbeat_storm(service, fleet))
    try:
        submitted, rejected = await _failure_waves(config, service, controller)
    finally:
        storm.cancel()
        await asyncio.gather(storm, return_exceptions=True)
        duration = service.clock.now()
        metrics = service.metrics()
        await service.stop()
    latency = service.latency_summary() or {}
    heartbeat_queue = metrics["heartbeat_queue"]
    report_queue = metrics["report_queue"]
    assert isinstance(heartbeat_queue, dict)
    assert isinstance(report_queue, dict)
    return LoadTestResult(
        config=config,
        duration=duration,
        failures_submitted=submitted,
        failures_rejected=rejected,
        decisions=len(service.decisions),
        errors=len(service.errors),
        latency=latency,
        outcomes=service.outcome_counts(),
        heartbeat_queue=heartbeat_queue,
        report_queue=report_queue,
        fleet_heartbeats=service.fleet.heartbeats_recorded,
    )


async def _heartbeat_storm(
    service: RecoveryService, fleet: list[str]
) -> None:
    """The whole synthetic fleet heartbeats, forever, politely yielding."""
    while True:
        now = service.clock.now()
        for index, switch in enumerate(fleet):
            service.submit_heartbeat(Heartbeat(switch, now))
            if (index + 1) % 512 == 0:
                await asyncio.sleep(0)
        await service.clock.sleep(0.001)


async def _failure_waves(
    config: LoadTestConfig,
    service: RecoveryService,
    controller: ShareBackupController,
) -> tuple[int, int]:
    """Submit failures in concurrent bursts; repair pools between waves.

    Returns ``(submitted_accepted, rejected)``.
    """
    rng = ensure_rng(derive_seed(config.seed, "loadgen"))
    slots = sorted(
        slot
        for group in controller.net.groups.values()
        for slot in group.logical_slots
    )
    submitted = 0
    rejected = 0
    while submitted + rejected < config.failures:
        remaining = config.failures - submitted - rejected
        wave = min(config.wave_size, remaining)
        order = rng.permutation(len(slots))
        targets = [slots[int(order[i % len(slots)])] for i in range(wave)]
        for logical in targets:
            report = FailureReport(
                kind="node", logical=logical, reported_at=service.clock.now()
            )
            if service.submit_failure(report):
                submitted += 1
            else:
                rejected += 1
        await _await_decisions(service, submitted)
        _repair_all(service, controller)
    return submitted, rejected


async def _await_decisions(service: RecoveryService, expected: int) -> None:
    """Wait until every accepted report has a decision (or errored)."""
    stalled = 0
    last = -1
    while len(service.decisions) + len(service.errors) < expected:
        settled = len(service.decisions) + len(service.errors)
        stalled = stalled + 1 if settled == last else 0
        if stalled >= _STALL_POLLS:  # give up rather than hang CI
            return
        last = settled
        await service.clock.sleep(0.001)


def _repair_all(
    service: RecoveryService, controller: ShareBackupController
) -> None:
    """Refill every spare pool so the next wave starts from full health."""
    for group in controller.net.groups.values():
        for physical in sorted(group.offline):
            controller.repair(physical)
            service.mark_repaired(physical)
