"""Deterministic load-test harness for the service SLO benchmark.

Drives a live :class:`~repro.service.service.RecoveryService` (wall
clock) with the two loads the paper's control plane must absorb at
once:

* a **probe storm** — a synthetic fleet of tens of thousands of
  switches heartbeating continuously through the bounded ingestion
  queue (drop-oldest soaks the excess, and the counters prove it);
* **failure waves** — bursts of over a thousand concurrent failure
  reports, round-robined across every logical slot of a real
  ShareBackup network with graceful degradation on, every spare pool
  repaired between waves.

Every report produces exactly one failover decision (recovered,
rerouted, or stranded), each carrying its submission→decision latency;
the harness distils them into the p50/p99/p999 SLO summary that
``benchmarks/bench_service_slo.py`` records as ``BENCH_service.json``.
Target order is a pure function of the seed
(:func:`repro.rng.derive_seed` discipline); only the measured latencies
depend on the host.

The module also hosts the **failover benchmark**
(:func:`run_failover_benchmark`): each trial drives a federated
wall-clock service (controller cluster + decision WAL), arms a
mid-batch primary crash, and measures the crash→first-post-takeover-
decision latency — the service-path cost of an election plus a
WAL-resumed commit.  It rides the same artifact as a ``failover``
round and is regression-gated by ``benchmarks/check_slo.py``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..core.controller import ControllerCluster, ShareBackupController
from ..core.sharebackup import ShareBackupNetwork
from ..rng import derive_seed, ensure_rng
from .clock import WallClock
from .ingest import FailureReport, Heartbeat
from .service import RecoveryService, ServiceConfig, percentile
from .wal import DecisionWAL

__all__ = [
    "LoadTestConfig",
    "LoadTestResult",
    "run_load_test",
    "FailoverBenchConfig",
    "FailoverBenchResult",
    "run_failover_benchmark",
]

#: Safety valve: a wave that produces no new decision for this many
#: polls in a row aborts the run instead of hanging CI.
_STALL_POLLS = 5000


@dataclass(frozen=True)
class LoadTestConfig:
    """One SLO load-test run, fully specified."""

    k: int = 8
    n: int = 2
    switches: int = 10_000
    failures: int = 1_024
    wave_size: int = 1_024
    seed: int = 0
    heartbeat_queue_size: int = 4_096
    report_queue_size: int = 4_096

    def __post_init__(self) -> None:
        if self.switches < 1 or self.failures < 1 or self.wave_size < 1:
            raise ValueError("switches, failures, wave_size must be >= 1")
        if self.wave_size > self.report_queue_size:
            raise ValueError(
                "wave_size must fit in the report queue "
                f"({self.wave_size} > {self.report_queue_size})"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "k": self.k,
            "n": self.n,
            "switches": self.switches,
            "failures": self.failures,
            "wave_size": self.wave_size,
            "seed": self.seed,
            "heartbeat_queue_size": self.heartbeat_queue_size,
            "report_queue_size": self.report_queue_size,
        }


@dataclass(frozen=True)
class LoadTestResult:
    """Distilled outcome of one load-test run (JSON-safe)."""

    config: LoadTestConfig
    duration: float
    failures_submitted: int
    failures_rejected: int
    decisions: int
    errors: int
    latency: dict[str, float]
    outcomes: dict[str, int]
    heartbeat_queue: dict[str, object]
    report_queue: dict[str, object]
    fleet_heartbeats: int

    def to_dict(self) -> dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "duration": self.duration,
            "failures_submitted": self.failures_submitted,
            "failures_rejected": self.failures_rejected,
            "decisions": self.decisions,
            "errors": self.errors,
            "latency": dict(self.latency),
            "outcomes": dict(self.outcomes),
            "heartbeat_queue": dict(self.heartbeat_queue),
            "report_queue": dict(self.report_queue),
            "fleet_heartbeats": self.fleet_heartbeats,
        }


def run_load_test(config: LoadTestConfig | None = None) -> LoadTestResult:
    """Run one load test on a fresh event loop and distil the result."""
    return asyncio.run(_run(config or LoadTestConfig()))


async def _run(config: LoadTestConfig) -> LoadTestResult:
    net = ShareBackupNetwork(config.k, config.n)
    controller = ShareBackupController(
        net,
        degrade_to_reroute=True,
        rng=derive_seed(config.seed, "controller"),
    )
    service = RecoveryService(
        controller,
        clock=WallClock(),
        config=ServiceConfig(
            heartbeat_queue_size=config.heartbeat_queue_size,
            report_queue_size=config.report_queue_size,
            # Failures are injected by *report* here, and under wall
            # clock a 10k-probe storm cycle can outlast the 3 ms miss
            # window — so the boundary scan is parked, or it would
            # condemn switches whose heartbeats are merely queued
            # behind the storm.  The scan path has its own coverage
            # (the virtual-clock chaos replays), where detection
            # timing is exact by construction.
            scan_interval=3600.0,
        ),
    )
    fleet = service.fleet.register_many("sw-", config.switches)
    await service.start()
    storm = asyncio.ensure_future(_heartbeat_storm(service, fleet))
    try:
        submitted, rejected = await _failure_waves(config, service, controller)
    finally:
        storm.cancel()
        await asyncio.gather(storm, return_exceptions=True)
        duration = service.clock.now()
        metrics = service.metrics()
        await service.stop()
    latency = service.latency_summary() or {}
    heartbeat_queue = metrics["heartbeat_queue"]
    report_queue = metrics["report_queue"]
    assert isinstance(heartbeat_queue, dict)
    assert isinstance(report_queue, dict)
    return LoadTestResult(
        config=config,
        duration=duration,
        failures_submitted=submitted,
        failures_rejected=rejected,
        decisions=len(service.decisions),
        errors=len(service.errors),
        latency=latency,
        outcomes=service.outcome_counts(),
        heartbeat_queue=heartbeat_queue,
        report_queue=report_queue,
        fleet_heartbeats=service.fleet.heartbeats_recorded,
    )


async def _heartbeat_storm(
    service: RecoveryService, fleet: list[str]
) -> None:
    """The whole synthetic fleet heartbeats, forever, politely yielding."""
    while True:
        now = service.clock.now()
        for index, switch in enumerate(fleet):
            service.submit_heartbeat(Heartbeat(switch, now))
            if (index + 1) % 512 == 0:
                await asyncio.sleep(0)
        await service.clock.sleep(0.001)


async def _failure_waves(
    config: LoadTestConfig,
    service: RecoveryService,
    controller: ShareBackupController,
) -> tuple[int, int]:
    """Submit failures in concurrent bursts; repair pools between waves.

    Returns ``(submitted_accepted, rejected)``.
    """
    rng = ensure_rng(derive_seed(config.seed, "loadgen"))
    slots = sorted(
        slot
        for group in controller.net.groups.values()
        for slot in group.logical_slots
    )
    submitted = 0
    rejected = 0
    while submitted + rejected < config.failures:
        remaining = config.failures - submitted - rejected
        wave = min(config.wave_size, remaining)
        order = rng.permutation(len(slots))
        targets = [slots[int(order[i % len(slots)])] for i in range(wave)]
        for logical in targets:
            report = FailureReport(
                kind="node", logical=logical, reported_at=service.clock.now()
            )
            if service.submit_failure(report):
                submitted += 1
            else:
                rejected += 1
        await _await_decisions(service, submitted)
        _repair_all(service, controller)
    return submitted, rejected


async def _await_decisions(service: RecoveryService, expected: int) -> None:
    """Wait until every accepted report has a decision (or errored)."""
    stalled = 0
    last = -1
    while len(service.decisions) + len(service.errors) < expected:
        settled = len(service.decisions) + len(service.errors)
        stalled = stalled + 1 if settled == last else 0
        if stalled >= _STALL_POLLS:  # give up rather than hang CI
            return
        last = settled
        await service.clock.sleep(0.001)


def _repair_all(
    service: RecoveryService, controller: ShareBackupController
) -> None:
    """Refill every spare pool so the next wave starts from full health."""
    for group in controller.net.groups.values():
        for physical in sorted(group.offline):
            controller.repair(physical)
            service.mark_repaired(physical)


# ======================================================================
# the failover-latency benchmark (crash → first post-takeover decision)
# ======================================================================


@dataclass(frozen=True)
class FailoverBenchConfig:
    """One failover-latency benchmark run, fully specified.

    Each trial drives a federated wall-clock service (cluster + WAL),
    arms a mid-batch primary crash ``crash_after`` decisions in, and
    measures the crash→first-post-takeover-decision latency — the
    service-path cost of an election plus WAL-resumed commit.
    """

    k: int = 6
    n: int = 1
    trials: int = 5
    failures_per_trial: int = 32
    crash_after: int = 6
    seed: int = 0
    report_queue_size: int = 256

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.crash_after < 1:
            raise ValueError("crash_after must be >= 1")
        if self.failures_per_trial <= self.crash_after:
            raise ValueError(
                "failures_per_trial must exceed crash_after "
                "(the crash needs post-takeover work to resume)"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "k": self.k,
            "n": self.n,
            "trials": self.trials,
            "failures_per_trial": self.failures_per_trial,
            "crash_after": self.crash_after,
            "seed": self.seed,
            "report_queue_size": self.report_queue_size,
        }


@dataclass(frozen=True)
class FailoverBenchResult:
    """Distilled failover latencies across all trials (JSON-safe)."""

    config: FailoverBenchConfig
    latencies: tuple[float, ...]
    decisions: int
    errors: int
    fencing_rejections: int
    final_epochs: tuple[int, ...]

    def summary(self) -> dict[str, float]:
        values = list(self.latencies)
        return {
            "p50": percentile(values, 0.50),
            "p99": percentile(values, 0.99),
            "mean": sum(values) / len(values),
            "max": max(values),
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "latencies": list(self.latencies),
            "summary": self.summary(),
            "decisions": self.decisions,
            "errors": self.errors,
            "fencing_rejections": self.fencing_rejections,
            "final_epochs": list(self.final_epochs),
        }


def run_failover_benchmark(
    config: FailoverBenchConfig | None = None,
) -> FailoverBenchResult:
    """Measure crash→first-post-takeover-decision latency over trials."""
    config = config or FailoverBenchConfig()
    latencies: list[float] = []
    decisions = 0
    errors = 0
    fenced = 0
    epochs: list[int] = []
    for trial in range(config.trials):
        outcome = asyncio.run(_failover_trial(config, trial))
        latencies.append(outcome["latency"])  # type: ignore[arg-type]
        decisions += int(outcome["decisions"])  # type: ignore[call-overload]
        errors += int(outcome["errors"])  # type: ignore[call-overload]
        fenced += int(outcome["fencing_rejections"])  # type: ignore[call-overload]
        epochs.append(int(outcome["epoch"]))  # type: ignore[call-overload]
    return FailoverBenchResult(
        config=config,
        latencies=tuple(latencies),
        decisions=decisions,
        errors=errors,
        fencing_rejections=fenced,
        final_epochs=tuple(epochs),
    )


async def _failover_trial(
    config: FailoverBenchConfig, trial: int
) -> dict[str, object]:
    """One crash/takeover cycle on a fresh federated service."""
    net = ShareBackupNetwork(config.k, config.n)
    controller = ShareBackupController(
        net,
        degrade_to_reroute=True,
        rng=derive_seed(config.seed, f"failover-controller-{trial}"),
    )
    cluster = ControllerCluster(controller=controller)
    service = RecoveryService(
        controller,
        clock=WallClock(),
        config=ServiceConfig(
            report_queue_size=config.report_queue_size,
            # Same rationale as the SLO load test: failures arrive by
            # report, so the boundary scan is parked.
            scan_interval=3600.0,
        ),
        cluster=cluster,
        wal=DecisionWAL(),
    )
    await service.start()
    service.federation.arm_primary_crash(after_decisions=config.crash_after)
    rng = ensure_rng(derive_seed(config.seed, f"failover-targets-{trial}"))
    slots = sorted(
        slot
        for group in net.groups.values()
        for slot in group.logical_slots
    )
    order = rng.permutation(len(slots))
    count = min(config.failures_per_trial, len(slots))
    accepted = 0
    for i in range(count):
        report = FailureReport(
            kind="node",
            logical=slots[int(order[i])],
            reported_at=service.clock.now(),
        )
        if service.submit_failure(report):
            accepted += 1
    try:
        await _await_decisions(service, accepted)
        if not service.primary_crashes:
            raise RuntimeError(
                "armed primary crash never fired "
                f"({len(service.decisions)} decisions)"
            )
        crash = service.primary_crashes[0]
        crash_now = float(crash["now"])  # type: ignore[arg-type]
        crash_epoch = int(crash["epoch"])  # type: ignore[call-overload]
        post = [
            d.decided_at
            for d in service.decisions
            if d.epoch >= crash_epoch
        ]
        if not post:
            raise RuntimeError("no post-takeover decision to measure")
        latency = max(0.0, min(post) - crash_now)
    finally:
        await service.stop()
    return {
        "latency": latency,
        "decisions": len(service.decisions),
        "errors": len(service.errors),
        "fencing_rejections": len(service.fencing_rejections),
        "epoch": service.federation.epoch,
    }
