"""repro.service — the asyncio recovery control plane.

The long-lived, event-driven face of the ShareBackup controller stack
(ROADMAP item 2): probe ingestion with explicit backpressure, a
concurrent failure-group resolver with per-decision latency, a REST +
JSONL-events API, chaos-schedule replay under a deterministic virtual
clock, and a wall-clock load-test harness behind
``benchmarks/bench_service_slo.py``.  See ``docs/service.md``.
"""

from .api import ApiError, ServiceAPI
from .clock import SETTLE_ROUNDS, ServiceClock, VirtualClock, WallClock
from .events import EventBus, Subscription
from .federation import ServiceFederation
from .fleet import FleetRegistry
from .ingest import (
    OVERFLOW_POLICIES,
    FailureReport,
    Heartbeat,
    Probe,
    ProbeQueue,
    QueueCounters,
    QueueFullError,
)
from .loadgen import (
    FailoverBenchConfig,
    FailoverBenchResult,
    LoadTestConfig,
    LoadTestResult,
    run_failover_benchmark,
    run_load_test,
)
from .replay import (
    DecisionKey,
    ReplayOutcome,
    ServiceReplay,
    decision_key,
    report_decision_key,
    run_service_replay,
)
from .resolver import (
    FailoverDecision,
    FailureGroupResolver,
    PendingFailure,
    report_outcome,
)
from .service import RecoveryService, ServiceConfig, percentile
from .wal import DecisionWAL, WalCorruptionError, WalRecord

__all__ = [
    "SETTLE_ROUNDS",
    "OVERFLOW_POLICIES",
    "ServiceClock",
    "WallClock",
    "VirtualClock",
    "EventBus",
    "Subscription",
    "FleetRegistry",
    "Heartbeat",
    "FailureReport",
    "Probe",
    "ProbeQueue",
    "QueueCounters",
    "QueueFullError",
    "PendingFailure",
    "FailoverDecision",
    "FailureGroupResolver",
    "report_outcome",
    "RecoveryService",
    "ServiceConfig",
    "percentile",
    "ApiError",
    "ServiceAPI",
    "DecisionKey",
    "ReplayOutcome",
    "ServiceReplay",
    "decision_key",
    "report_decision_key",
    "run_service_replay",
    "LoadTestConfig",
    "LoadTestResult",
    "run_load_test",
    "FailoverBenchConfig",
    "FailoverBenchResult",
    "run_failover_benchmark",
    "ServiceFederation",
    "DecisionWAL",
    "WalCorruptionError",
    "WalRecord",
]
