"""Command-line interface: ``python -m repro <command>``.

Commands map onto the library's main entry points:

* ``info``      — build a ShareBackup network and print its inventory;
* ``cost``      — Table 2 / Figure 5 cost figures for (k, n);
* ``capacity``  — §5.1/§5.3 design space under a circuit-port budget;
* ``failover``  — run a live failover (and optional link diagnosis) on a
  freshly built network and print the controller's report;
* ``trace``     — generate synthetic coflow traces and convert between
  the JSON form and the coflow-benchmark text format;
* ``study``     — a small end-to-end failure study (affected fractions +
  recovery comparison) suitable for a quick demo;
* ``sweep``     — the paper's scenario sweeps (Fig 1a/1b/1c, §5.1
  availability) through the parallel runner: ``--jobs`` fans scenarios
  over a process pool, results are cached content-addressed under
  ``--cache-dir``, and ``--journal`` records every orchestration event
  as JSONL;
* ``chaos``     — seeded control-plane chaos campaigns
  (:mod:`repro.chaos`): N randomized fault schedules attacking the
  recovery system itself (circuit switches, backup pools, controller
  replicas, heartbeats), run through the parallel runner, with
  survival/degradation/MTTR statistics and an optional byte-reproducible
  campaign journal; ``--smoke`` is the small maximally-hostile campaign
  CI gates on;
* ``lint``      — the repository's own static-analysis pass
  (:mod:`repro.checks`): per-file rules (RNG discipline, determinism
  hazards, process-boundary safety, exception hygiene) plus
  whole-program rules over the linked project model (transitive seed
  taint, payload chasing, import cycles, dead exports), with an
  incremental cache under ``.repro-cache/lint/`` and ``text``/
  ``json``/``sarif`` output (see ``docs/static-analysis.md``).

The CLI is deliberately a thin shell over the public API — each command
body doubles as usage documentation for the corresponding library calls.

Exit codes: ``0`` success, ``1`` a run failed, ``2`` invalid arguments
(matching argparse).  Command bodies raise freely; :func:`main` converts
any exception into a one-line stderr message and a nonzero code.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]

SWEEP_STUDIES = ("fig1a", "fig1b", "fig1c", "availability")


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ShareBackup (HotNets'17) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="build a network and print its inventory")
    p_info.add_argument("--k", type=int, default=8, help="fat-tree arity (even)")
    p_info.add_argument("--n", type=int, default=1, help="backups per failure group")

    p_cost = sub.add_parser("cost", help="Table 2 / Figure 5 cost figures")
    p_cost.add_argument("--k", type=int, default=48)
    p_cost.add_argument("--n", type=int, default=1)

    p_cap = sub.add_parser("capacity", help="design space under a port budget")
    p_cap.add_argument("--ports", type=int, default=32,
                       help="circuit-switch ports per side")

    p_fail = sub.add_parser("failover", help="run a live failover")
    p_fail.add_argument("--k", type=int, default=8)
    p_fail.add_argument("--n", type=int, default=1)
    p_fail.add_argument("--victim", default="A.0.1",
                        help="logical switch to fail (e.g. A.0.1, E.2.0, C.3)")
    p_fail.add_argument("--link", action="store_true",
                        help="fail the victim's first uplink instead (runs diagnosis)")

    p_trace = sub.add_parser("trace", help="generate/convert coflow traces")
    p_trace.add_argument("action", choices=("generate", "convert"))
    p_trace.add_argument("--racks", type=int, default=32)
    p_trace.add_argument("--coflows", type=int, default=100)
    p_trace.add_argument("--duration", type=float, default=60.0)
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument("--in", dest="input", help="input file (convert)")
    p_trace.add_argument("--out", required=True, help="output file")
    p_trace.add_argument("--format", choices=("json", "benchmark"), default="json")

    p_study = sub.add_parser("study", help="small end-to-end failure study")
    p_study.add_argument("--k", type=int, default=6)
    p_study.add_argument("--coflows", type=int, default=60)
    p_study.add_argument("--seed", type=int, default=7)

    p_sweep = sub.add_parser(
        "sweep", help="parallel scenario sweeps through repro.runner"
    )
    p_sweep.add_argument(
        "--study", choices=SWEEP_STUDIES, default="fig1a",
        help="which experiment to sweep",
    )
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPUs, capped at 8; "
                              "1 = serial)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the result cache entirely")
    p_sweep.add_argument("--cache-dir", default=".repro-cache",
                         help="result-cache directory")
    p_sweep.add_argument("--journal", default=None, metavar="PATH",
                         help="append JSONL run-journal events to PATH")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-shard timeout in seconds")
    p_sweep.add_argument("--retries", type=int, default=2,
                         help="pool retries per shard before serial fallback")
    # study sizing (fig1a/fig1b/fig1c)
    p_sweep.add_argument("--k", type=int, default=6)
    p_sweep.add_argument("--hosts-per-edge", type=int, default=30)
    p_sweep.add_argument("--coflows", type=int, default=90)
    p_sweep.add_argument("--duration", type=float, default=12.0)
    p_sweep.add_argument("--seed", type=int, default=97)
    p_sweep.add_argument("--failure-seed", type=int, default=5)
    p_sweep.add_argument("--samples", type=int, default=3)
    p_sweep.add_argument("--rates", default=None,
                         help="comma-separated failure rates (fig1a/fig1b)")
    # availability sizing
    p_sweep.add_argument("--group", type=int, default=24,
                         help="failure-group size (availability)")
    p_sweep.add_argument("--spares", type=int, default=1,
                         help="spares per group (availability)")
    p_sweep.add_argument("--years", type=float, default=50.0,
                         help="simulated years per replica (availability)")
    p_sweep.add_argument("--replicas", type=int, default=4,
                         help="independent Monte Carlo replicas (availability)")

    p_chaos = sub.add_parser(
        "chaos", help="control-plane chaos campaigns (repro.chaos)"
    )
    p_chaos.add_argument("--k", type=int, default=6)
    p_chaos.add_argument("--n", type=int, default=1,
                         help="backups per failure group")
    p_chaos.add_argument("--scenarios", type=int, default=8,
                         help="independent fault schedules per campaign")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="campaign root seed (scenario seeds derive "
                              "from it)")
    p_chaos.add_argument("--duration", type=float, default=4.0,
                         help="workload duration per scenario (seconds)")
    p_chaos.add_argument("--coflows", type=int, default=12)
    p_chaos.add_argument("--profile",
                         choices=("mixed", "recovery-storm", "control-plane",
                                  "controller-storm"),
                         default="mixed",
                         help="fault-schedule profile")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="small fixed maximally-hostile campaign "
                              "(overrides sizing flags; the CI gate)")
    p_chaos.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPUs, capped at 8; "
                              "1 = serial)")
    p_chaos.add_argument("--no-cache", action="store_true",
                         help="bypass the result cache entirely")
    p_chaos.add_argument("--cache-dir", default=".repro-cache",
                         help="result-cache directory")
    p_chaos.add_argument("--journal", default=None, metavar="PATH",
                         help="write the deterministic campaign journal "
                              "(JSONL) to PATH")

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio recovery control-plane service (repro.service)",
    )
    p_serve.add_argument("--k", type=int, default=6, help="fat-tree arity")
    p_serve.add_argument("--n", type=int, default=1,
                         help="backups per failure group")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="controller RNG seed")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for the HTTP API")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port for the HTTP API (0 = ephemeral)")
    p_serve.add_argument("--heartbeat-queue", type=int, default=4096,
                         help="bounded heartbeat queue size (drop-oldest)")
    p_serve.add_argument("--report-queue", type=int, default=1024,
                         help="bounded failure-report queue size (reject)")
    p_serve.add_argument("--wal", default=None, metavar="PATH",
                         help="write-ahead decision log; federates the "
                              "service behind a controller cluster (epoch "
                              "fencing) and resumes any incomplete intents "
                              "found at PATH on start")
    p_serve.add_argument("--smoke", action="store_true",
                         help="CI gate: deterministic virtual-clock chaos "
                              "replay plus a wall-clock HTTP round-trip, "
                              "then exit")

    p_lint = sub.add_parser(
        "lint", help="repository invariant linter (repro.checks)"
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to check "
             "(default: src/repro, examples, benchmarks)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.add_argument(
        "--changed", action="store_true",
        help="lint only Python files modified or untracked per git "
             "(diff vs HEAD); mutually exclusive with explicit PATHs",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="format", help="report format (default: text)",
    )
    p_lint.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental lint cache",
    )
    p_lint.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="lint-cache directory "
             "(default: <repo root>/.repro-cache/lint)",
    )
    p_lint.add_argument(
        "--no-project", action="store_true",
        help="run only the per-file rules, skipping the whole-program "
             "pass and its corpus walk",
    )
    p_lint.add_argument(
        "--stats", action="store_true",
        help="print cache and run statistics to stderr",
    )

    return parser


# ----------------------------------------------------------------------
# command bodies
# ----------------------------------------------------------------------


def cmd_info(args) -> int:
    from repro.core import ImpersonationTables, ShareBackupNetwork

    net = ShareBackupNetwork(args.k, n=args.n)
    net.verify_fattree_equivalence()
    logical = net.logical
    print(f"ShareBackup network  k={args.k}  n={args.n}")
    print(f"  hosts:                 {logical.num_hosts}")
    print(f"  racks:                 {logical.num_racks}")
    print(f"  packet switches:       {len(logical.packet_switches())}")
    print(f"  backup switches:       {net.num_backup_switches}")
    print(f"  failure groups:        {len(net.groups)}")
    print(f"  circuit switches:      {net.num_circuit_switches} "
          f"({net.circuit_ports_per_side} ports/side)")
    report = ImpersonationTables(logical).tcam_report()
    print(f"  combined edge table:   {report['edge_group_entries']} entries "
          f"(TCAM fit: {report['fits']})")
    print("  logical topology:      verified == canonical fat-tree")
    return 0


def cmd_cost(args) -> int:
    from repro.cost import (
        E_DC,
        O_DC,
        aspen_extra_cost,
        fattree_cost,
        one_to_one_extra_cost,
        relative_extra_cost,
        sharebackup_extra_cost,
    )

    print(f"cost figures for k={args.k}, n={args.n} "
          f"({args.k ** 3 // 4:,} hosts)")
    for prices in (E_DC, O_DC):
        base = fattree_cost(args.k, prices)
        print(f"\n[{prices.name}] fat-tree baseline ${base:,.0f}")
        for name, extra in (
            ("sharebackup", sharebackup_extra_cost(args.k, args.n, prices)),
            ("aspen", aspen_extra_cost(args.k, prices)),
            ("1:1 backup", one_to_one_extra_cost(args.k, prices)),
        ):
            rel = relative_extra_cost(extra, args.k, prices)
            print(f"  +{name:<12} ${extra.total:>14,.0f}  ({rel:7.1%})")
    return 0


def cmd_capacity(args) -> int:
    from repro.failures import DEFAULT_FAILURE_MODEL

    model = DEFAULT_FAILURE_MODEL
    print(f"design space: circuit switches with {args.ports} ports/side "
          f"(k/2 + n + 2 <= {args.ports})")
    print(f"{'n':>3}{'max k':>7}{'hosts':>14}{'backup ratio':>14}{'group risk':>13}")
    for n in range(1, 9):
        half = args.ports - n - 2
        if half < 2:
            break
        k = 2 * half
        risk = model.concurrent_failure_probability(half, n)
        print(f"{n:>3}{k:>7}{k ** 3 // 4:>14,}{n / half:>13.2%}{risk:>13.2e}")
    return 0


def cmd_failover(args) -> int:
    from repro.core import ShareBackupController, ShareBackupNetwork

    net = ShareBackupNetwork(args.k, n=args.n)
    controller = ShareBackupController(net)
    if not net.logical.has_node(args.victim):
        print(f"error: {args.victim!r} is not a switch of the k={args.k} "
              "fat-tree", file=sys.stderr)
        return 2

    if args.link:
        neighbor = next(
            other
            for other in net.logical.neighbors(args.victim)
            if not other.startswith("H.")
        )
        end_a = _interface_toward(net, args.victim, neighbor)
        end_b = _interface_toward(net, neighbor, args.victim)
        report = controller.handle_link_failure(
            end_a, end_b, true_faulty_interfaces=(end_a,)
        )
        print(f"link failure {args.victim} -- {neighbor}")
        print(f"  replaced: {dict(report.replaced)}")
        for diag in controller.run_pending_diagnoses():
            print(f"  diagnosis: exonerated {diag.exonerated_devices()}, "
                  f"condemned {diag.condemned_devices()}")
    else:
        report = controller.handle_node_failure(args.victim)
        print(f"node failure {args.victim}")
        print(f"  replaced: {dict(report.replaced)}")
    print(f"  circuit switches reconfigured: {report.circuit_switches_touched}")
    print(f"  recovery time: {report.recovery_time * 1e3:.3f} ms")
    net.verify_fattree_equivalence()
    print("  logical topology: verified == canonical fat-tree")
    return 0


def _interface_toward(net, device: str, far: str):
    """(device, physical interface) of the link device--far, via the wiring."""
    from repro.core import ShareBackupSimulation

    shim = ShareBackupSimulation.__new__(ShareBackupSimulation)
    shim.net = net
    return shim._interface_end(device, far)


def cmd_trace(args) -> int:
    from repro.workload import (
        CoflowTraceGenerator,
        WorkloadConfig,
        load_coflow_benchmark,
        load_trace,
        save_coflow_benchmark,
        save_trace,
    )

    if args.action == "generate":
        cfg = WorkloadConfig(
            num_racks=args.racks,
            num_coflows=args.coflows,
            duration=args.duration,
            seed=args.seed,
        )
        trace = CoflowTraceGenerator(cfg).generate()
        if args.format == "json":
            save_trace(args.out, trace)
        else:
            save_coflow_benchmark(args.out, args.racks, trace)
        flows = sum(c.width for c in trace)
        print(f"wrote {len(trace)} coflows / {flows} flows to {args.out} "
              f"({args.format})")
        return 0

    if not args.input:
        print("error: convert needs --in", file=sys.stderr)
        return 2
    if args.format == "benchmark":
        trace = load_trace(args.input)
        save_coflow_benchmark(args.out, args.racks, trace)
    else:
        _racks, trace = load_coflow_benchmark(args.input)
        save_trace(args.out, trace)
    print(f"converted {len(trace)} coflows -> {args.out} ({args.format})")
    return 0


def cmd_study(args) -> int:
    from repro.analysis import affected_by_scenario
    from repro.core import ShareBackupNetwork, ShareBackupSimulation
    from repro.failures import FailureInjector
    from repro.topology import NodeKind
    from repro.workload import (
        CoflowTraceGenerator,
        WorkloadConfig,
        materialize_hosts,
    )

    net = ShareBackupNetwork(args.k, n=1)
    tree = net.logical
    cfg = WorkloadConfig(
        num_racks=tree.num_racks,
        num_coflows=args.coflows,
        duration=20.0,
        seed=args.seed,
    )
    specs = materialize_hosts(CoflowTraceGenerator(cfg).generate(), tree)
    injector = FailureInjector(
        tree, seed=args.seed, switch_kinds=(NodeKind.AGGREGATION, NodeKind.CORE)
    )
    scenario = injector.single_node_failure()
    counts = affected_by_scenario(tree, specs, scenario)
    victim = scenario.nodes[0]
    print(f"k={args.k} ShareBackup, {len(specs)} coflows, single failure: {victim}")
    print(f"  affected flows:   {counts.flow_fraction:6.1%}")
    print(f"  affected coflows: {counts.coflow_fraction:6.1%} "
          f"(amplification {counts.amplification:.1f}x)")

    sbs = ShareBackupSimulation(net, specs, horizon=100_000.0)
    sbs.inject_switch_failure(1.0, victim)
    result = sbs.run()
    stalls = [f.stalled_time for f in result.flows.values() if f.stalled_time > 0]
    reroutes = sum(f.reroutes for f in result.flows.values())
    print(f"  ShareBackup recovery: {len(result.completed_coflows())}/"
          f"{len(result.coflows)} coflows completed, {reroutes} reroutes, "
          f"worst stall {max(stalls) * 1e3:.2f} ms"
          if stalls
          else f"  ShareBackup recovery: all {len(result.coflows)} coflows "
               "completed; no flow even stalled")
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments import StudyConfig
    from repro.rng import derive_seed
    from repro.runner import (
        AvailabilityPoint,
        NullCache,
        ResultCache,
        RunJournal,
        SweepRunner,
        run_affected_sweep,
        run_availability_sweep,
        run_slowdown_study,
    )

    rates = None
    if args.rates:
        try:
            rates = tuple(float(r) for r in args.rates.split(","))
        except ValueError:
            print(f"error: --rates must be comma-separated floats, "
                  f"got {args.rates!r}", file=sys.stderr)
            return 2
    if args.replicas < 1:
        print("error: --replicas must be >= 1", file=sys.stderr)
        return 2

    journal = RunJournal(args.journal)
    runner = SweepRunner(
        jobs=args.jobs,
        cache=NullCache() if args.no_cache else ResultCache(args.cache_dir),
        journal=journal,
        shard_timeout=args.timeout,
        max_retries=args.retries,
    )
    try:
        if args.study == "availability":
            points = [
                AvailabilityPoint(
                    group_size=args.group, spares=args.spares, years=args.years,
                    seed=derive_seed(args.seed, "availability", i),
                )
                for i in range(args.replicas)
            ]
            outcome = run_availability_sweep(points, runner=runner)
            print(f"availability sweep: group={args.group} spares={args.spares} "
                  f"{args.replicas} x {args.years:g} simulated years")
            for result in outcome.values:
                print(f"  exposure {result.exposure_probability:.3e}  "
                      f"({result.exposure_episodes} episodes, "
                      f"{result.failures:,} failures)")
            mean = sum(r.exposure_probability for r in outcome.values) / len(
                outcome.values
            )
            print(f"  mean exposure probability: {mean:.3e}")
        else:
            config = StudyConfig(
                k=args.k,
                hosts_per_edge=args.hosts_per_edge,
                num_coflows=args.coflows,
                duration=args.duration,
                seed=args.seed,
                failure_seed=args.failure_seed,
                failure_samples=args.samples,
            )
            if args.study == "fig1c":
                outcome = run_slowdown_study(config, runner=runner)
                print("CCT slowdown under single failures "
                      f"(k={args.k}, {args.coflows} coflows)")
                for digest in outcome.values.values():
                    print("  " + digest.row())
            else:
                kind = "node" if args.study == "fig1a" else "link"
                outcome = run_affected_sweep(
                    config, kind,
                    **({"rates": rates} if rates is not None else {}),
                    runner=runner,
                )
                for arch in sorted(outcome.values):
                    print(outcome.values[arch].table())
                    print()
        print(outcome.summary.table())
        return 0
    finally:
        journal.close()


def cmd_chaos(args) -> int:
    from repro.chaos import ChaosCampaignConfig, run_chaos_campaign
    from repro.runner import NullCache, ResultCache, SweepRunner

    if args.smoke:
        # The CI gate: small, fast, and maximally hostile — every
        # control-plane fault kind fires in every scenario.
        config = ChaosCampaignConfig(
            k=6, n=1, scenarios=2, seed=7, duration=2.0,
            num_coflows=8, profile="control-plane",
        )
    else:
        config = ChaosCampaignConfig(
            k=args.k,
            n=args.n,
            scenarios=args.scenarios,
            seed=args.seed,
            duration=args.duration,
            num_coflows=args.coflows,
            profile=args.profile,
        )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=NullCache() if args.no_cache else ResultCache(args.cache_dir),
    )
    outcome = run_chaos_campaign(
        config, runner=runner, journal_path=args.journal
    )
    for index, scenario in enumerate(outcome.outcomes):
        verdict = "ok" if scenario.survived else "HUMAN INTERVENTION"
        routed = "routed" if scenario.all_traffic_routed else "STRANDED"
        print(f"  scenario {index}: {verdict:>18}  traffic {routed:>8}  "
              f"faults [{', '.join(scenario.fault_kinds)}]  "
              f"recovered {scenario.recovered}  rerouted {scenario.rerouted}  "
              f"retries {scenario.retries}")
    print(outcome.stats.table())
    print(outcome.summary.table())
    if args.journal:
        print(f"campaign journal: {args.journal}")
    return 0 if outcome.stats.human_interventions == 0 else 1


def cmd_serve(args) -> int:
    import asyncio

    if args.smoke:
        return _serve_smoke(args)

    print(f"recovery service: k={args.k} n={args.n} seed={args.seed}")
    asyncio.run(_serve_forever(args))
    return 0


def _build_service(args, config):
    """Build the service; ``--wal PATH`` federates it behind a cluster."""
    from repro.core import (
        ControllerCluster,
        ShareBackupController,
        ShareBackupNetwork,
    )
    from repro.service import DecisionWAL, RecoveryService

    net = ShareBackupNetwork(args.k, n=args.n)
    controller = ShareBackupController(
        net, degrade_to_reroute=True, rng=args.seed
    )
    cluster = wal = None
    if getattr(args, "wal", None):
        cluster = ControllerCluster(controller=controller)
        wal = DecisionWAL(args.wal)
    service = RecoveryService(
        controller, config=config, cluster=cluster, wal=wal
    )
    return net, service


async def _serve_forever(args) -> None:
    from repro.service import ServiceAPI, ServiceConfig

    import asyncio

    _net, service = _build_service(
        args,
        ServiceConfig(
            heartbeat_queue_size=args.heartbeat_queue,
            report_queue_size=args.report_queue,
        ),
    )
    api = ServiceAPI(service, host=args.host, port=args.port)
    await service.start()
    await api.start()
    if service.wal is not None:
        stats = service.wal.stats()
        print(f"decision WAL: {stats['path']}  (records={stats['records']} "
              f"incomplete={stats['incomplete']} "
              f"epoch={service.federation.epoch})")
    print(f"listening on {api.address}  (GET /healthz /metrics /decisions "
          "/events; POST /heartbeats /failures; Ctrl-C to stop)")
    try:
        await asyncio.Event().wait()  # serve until interrupted
    finally:
        await api.stop()
        await service.stop()
        if service.wal is not None:
            service.wal.close()


def _serve_smoke(args) -> int:
    """The ``service-smoke`` CI gate: both personalities, end to end.

    1. A deterministic virtual-clock replay of a maximally hostile
       (``control-plane`` profile) chaos schedule through the live
       service — every fault kind crosses the queues, the boundary
       scan, and the resolver.
    2. A wall-clock HTTP round-trip: real sockets, a posted failure, a
       decision observed on the JSONL event stream.
    """
    import asyncio

    from repro.chaos.harness import ChaosScenarioConfig
    from repro.service import run_service_replay

    config = ChaosScenarioConfig(
        k=args.k, n=args.n, seed=7, duration=0.2, profile="control-plane"
    )
    outcome = run_service_replay(config)
    print(f"replay: {len(outcome.decisions)} decisions "
          f"{outcome.outcome_counts()}  detections={len(outcome.detections)}  "
          f"errors={outcome.errors}  events={outcome.events_published}")
    if not outcome.decisions or outcome.errors:
        print("error: chaos replay produced no decisions (or errored)",
              file=sys.stderr)
        return 1

    result = asyncio.run(_smoke_http(args))
    print(f"http: decision for {result['logical']} via {result['address']} "
          f"latency={result['latency'] * 1e3:.3f} ms "
          f"stream_seq={result['stream_seq']}")
    if result.get("wal"):
        wal = result["wal"]
        print(f"wal: {wal['path']}  records={wal['records']} "
              f"commits={wal['commits']} incomplete={wal['incomplete']}")
    print("service smoke: OK")
    return 0


async def _smoke_http(args) -> dict:
    import asyncio
    import json

    from repro.service import ServiceAPI, ServiceConfig

    net, service = _build_service(args, ServiceConfig())
    api = ServiceAPI(service, host=args.host, port=0)
    await service.start()
    await api.start()
    try:
        victim = sorted(
            slot
            for group in net.groups.values()
            for slot in group.logical_slots
        )[0]
        health = await _http(api, "GET", "/healthz")
        assert health["status"] == "ok", health
        posted = await _http(
            api, "POST", "/failures", {"kind": "node", "logical": victim}
        )
        assert posted.get("accepted"), posted
        # The decision must surface on the live JSONL event stream.
        reader, writer = await asyncio.open_connection(api.host, api.port)
        writer.write(b"GET /events HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        while True:  # consume status line + headers
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
        stream_seq = None
        while stream_seq is None:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            event = json.loads(line)
            if event.get("type") == "decision":
                stream_seq = event["seq"]
        writer.close()
        decisions = await _http(api, "GET", "/decisions")
        assert decisions["decisions"], decisions
        decision = decisions["decisions"][0]
        metrics = await _http(api, "GET", "/metrics")
        assert metrics["decisions"] >= 1, metrics
        if service.wal is not None:
            # Federated smoke: the decision is durably committed and the
            # federation surfaces in the metrics body.
            assert metrics["wal"]["commits"] >= 1, metrics
            assert metrics["federation"]["attached"], metrics
        return {
            "address": api.address,
            "logical": decision["logical"],
            "latency": decision["latency"],
            "stream_seq": stream_seq,
            "wal": metrics.get("wal"),
        }
    finally:
        await api.stop()
        await service.stop()
        if service.wal is not None:
            service.wal.close()


async def _http(api, method: str, path: str, body: dict | None = None) -> dict:
    """One-shot JSON request against a running ServiceAPI."""
    import asyncio
    import json

    reader, writer = await asyncio.open_connection(api.host, api.port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=10.0)
    writer.close()
    head, _, body_text = raw.partition(b"\r\n\r\n")
    return json.loads(body_text)


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.checks import (
        DEFAULT_TARGETS,
        all_rules,
        changed_source_files,
        lint_paths,
        project_rules,
        render_json,
        render_sarif,
    )

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.code}  {rule.name}  [{scope}]")
            print(f"    {rule.rationale}")
        for rule in project_rules():
            print(f"{rule.code}  {rule.name}  [whole-program]")
            print(f"    {rule.rationale}")
        return 0

    if args.changed and args.paths:
        print(
            "error: --changed picks its own targets from git; "
            "drop the explicit paths",
            file=sys.stderr,
        )
        return 2
    if args.changed:
        try:
            paths = changed_source_files()
        except RuntimeError as exc:
            print(f"error: --changed needs git: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print("clean: no changed Python files vs HEAD")
            return 0
    elif args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"error: no such path: "
                f"{', '.join(str(p) for p in missing)}",
                file=sys.stderr,
            )
            return 2
    else:
        # Default targets are best-effort: lint whichever exist here.
        paths = [Path(t) for t in DEFAULT_TARGETS if Path(t).exists()]
        if not paths:
            print(
                "error: no paths given and none of the default targets "
                f"({', '.join(DEFAULT_TARGETS)}) exist here; run from the "
                "repository root or pass explicit paths",
                file=sys.stderr,
            )
            return 2

    result = lint_paths(
        paths,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        project=not args.no_project,
    )
    diagnostics = result.diagnostics

    if args.format == "sarif":
        report = render_sarif(diagnostics, root=result.root)
    elif args.format == "json":
        report = render_json(diagnostics, stats=result.stats.as_dict())
    else:
        lines = [d.render() for d in diagnostics]
        if not diagnostics:
            lines.append(
                f"clean: {len(paths)} target(s), "
                f"{result.stats.linted_files} file(s)"
            )
        report = "\n".join(lines) + "\n"

    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    if args.stats:
        stats = result.stats
        print(
            f"lint: {stats.linted_files} linted / {stats.corpus_files} "
            f"corpus files, {stats.parsed_files} parsed, "
            f"{stats.cache_hits} cache hits, {stats.cache_misses} misses",
            file=sys.stderr,
        )
    if diagnostics:
        print(f"{len(diagnostics)} problem(s) found", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "info": cmd_info,
    "cost": cmd_cost,
    "capacity": cmd_capacity,
    "failover": cmd_failover,
    "trace": cmd_trace,
    "study": cmd_study,
    "sweep": cmd_sweep,
    "chaos": cmd_chaos,
    "serve": cmd_serve,
    "lint": cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and dispatch; never lets a command escape as a traceback.

    Argument problems exit ``2`` (argparse's own convention, kept for
    command-body validation too); failed runs exit ``1``.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ValueError as exc:
        # Invalid parameter combinations surface as ValueError from the
        # library's constructors (odd k, bad rates, empty traces, ...).
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Audited catch-all: the CLI boundary is the one place a failure is
    # converted to an exit code instead of propagating or journaling.
    except Exception as exc:  # repro: noqa[EXC001]
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
