"""Experiment metrics: affected flows/coflows and CCT slowdown.

These implement the paper's definitions verbatim (Section 2.2):

* "A flow is considered affected if it traverses a failed node or link,
  and a coflow is affected if at least one flow in its set gets
  affected."  Traversal is judged on the flow's *pre-failure* ECMP pin.
* "CCT slowdown, which is the CCT with failure divided by the CCT
  without failure."  Coflows that never finish under the failure map to
  ``inf`` — they sit at the top of the slowdown CDF.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..failures.injector import FailureScenario
from ..routing.ecmp import EcmpSelector
from ..simulation.engine import SimulationResult
from ..simulation.flow import CoflowSpec
from ..topology.fattree import FatTree

__all__ = [
    "AffectedCounts",
    "affected_by_scenario",
    "cct_slowdowns",
    "SlowdownReport",
]


@dataclass(frozen=True)
class AffectedCounts:
    """Result of one affected-fraction measurement (one Figure 1(a)/(b) point)."""

    flows_total: int
    flows_affected: int
    coflows_total: int
    coflows_affected: int

    @property
    def flow_fraction(self) -> float:
        return self.flows_affected / self.flows_total if self.flows_total else 0.0

    @property
    def coflow_fraction(self) -> float:
        return (
            self.coflows_affected / self.coflows_total if self.coflows_total else 0.0
        )

    @property
    def amplification(self) -> float:
        """Coflow-level impact over flow-level impact (the paper: 3.3×–90×)."""
        if self.flow_fraction == 0:
            return math.inf if self.coflow_fraction > 0 else 1.0
        return self.coflow_fraction / self.flow_fraction


def affected_by_scenario(
    tree: FatTree,
    trace: Sequence[CoflowSpec],
    scenario: FailureScenario,
    selector: EcmpSelector | None = None,
) -> AffectedCounts:
    """Count flows/coflows whose ECMP-pinned path crosses the scenario.

    The topology must be in the *pre-failure* state when called: pins and
    their segments are computed on the healthy network, then intersected
    with the scenario's element sets.
    """
    if tree.failed_nodes() or tree.failed_links():
        raise ValueError("affected_by_scenario needs the pre-failure topology")
    selector = selector or EcmpSelector(tree)
    failed_nodes = set(scenario.nodes)
    failed_links = set(scenario.links)

    flows_total = flows_affected = 0
    coflows_affected = 0
    for coflow in trace:
        coflow_hit = False
        for spec in coflow.flows:
            flows_total += 1
            path = selector.select(spec.src, spec.dst, spec.flow_id)
            if path is None:
                continue
            hit = bool(failed_nodes.intersection(path.nodes))
            if not hit and failed_links:
                hit = any(
                    seg.link_id in failed_links
                    for seg in path.segments(tree, spec.flow_id)
                )
            if hit:
                flows_affected += 1
                coflow_hit = True
        if coflow_hit:
            coflows_affected += 1
    return AffectedCounts(
        flows_total=flows_total,
        flows_affected=flows_affected,
        coflows_total=len(trace),
        coflows_affected=coflows_affected,
    )


@dataclass(frozen=True)
class SlowdownReport:
    """CCT slowdowns of one failed run against its baseline."""

    #: coflow id → CCT(failure) / CCT(baseline); inf if unfinished under failure.
    slowdowns: dict[int, float]
    #: ids of coflows the failure actually touched (path intersection).
    affected: frozenset[int]

    def affected_slowdowns(self) -> list[float]:
        """Slowdowns of affected coflows — what Figure 1(c) plots."""
        return [self.slowdowns[c] for c in sorted(self.affected) if c in self.slowdowns]

    def all_slowdowns(self) -> list[float]:
        return [self.slowdowns[c] for c in sorted(self.slowdowns)]

    def max_slowdown(self) -> float:
        values = self.all_slowdowns()
        return max(values) if values else 1.0


def cct_slowdowns(
    baseline: SimulationResult,
    failed: SimulationResult,
    affected_coflows: Sequence[int] = (),
) -> SlowdownReport:
    """Per-coflow CCT slowdown between a baseline and a failure run.

    Coflows missing a baseline CCT (did not finish even without failure —
    trace truncated by the horizon) are excluded rather than guessed.
    """
    slowdowns: dict[int, float] = {}
    for cid, base_record in baseline.coflows.items():
        base_cct = base_record.cct
        if base_cct is None or base_cct <= 0:
            continue
        failed_record = failed.coflows.get(cid)
        if failed_record is None:
            continue
        failed_cct = failed_record.cct
        slowdowns[cid] = (
            math.inf if failed_cct is None else failed_cct / base_cct
        )
    return SlowdownReport(
        slowdowns=slowdowns, affected=frozenset(affected_coflows)
    )
