"""Small empirical-distribution helpers shared by experiments.

Figure 1 of the paper is built from empirical CDFs (fraction of
flows/coflows affected; CCT-slowdown distribution), so these utilities
are the reproduction's plotting backend — they produce the (x, P(X ≤ x))
series the benchmark harness prints.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["empirical_cdf", "percentile", "cdf_at", "summarize"]


def empirical_cdf(values: Iterable[float]) -> tuple[list[float], list[float]]:
    """Sorted values and their cumulative probabilities (right-continuous).

    Infinite values (e.g. coflows that never finish under a failure) are
    kept: they appear at the top of the CDF, which is exactly how a
    "never completes" coflow should read on a slowdown plot.
    """
    data = sorted(values)
    if not data:
        return [], []
    n = len(data)
    return data, [(i + 1) / n for i in range(n)]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by nearest-rank on sorted data."""
    if not values:
        raise ValueError("percentile of empty data")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0,100], got {q}")
    data = sorted(values)
    if q == 0:
        return data[0]
    rank = max(1, math.ceil(q / 100.0 * len(data)))
    return data[rank - 1]


def cdf_at(values: Sequence[float], x: float) -> float:
    """P(X ≤ x) under the empirical distribution."""
    if not values:
        raise ValueError("cdf of empty data")
    return sum(1 for v in values if v <= x) / len(values)


def summarize(values: Sequence[float], label: str = "") -> dict[str, float]:
    """Median / p90 / p99 / max digest used in experiment reports."""
    finite = [v for v in values if math.isfinite(v)]
    out = {
        "count": float(len(values)),
        "infinite": float(len(values) - len(finite)),
    }
    if finite:
        out.update(
            median=percentile(finite, 50),
            p90=percentile(finite, 90),
            p99=percentile(finite, 99),
            max=max(finite),
        )
    return out
