"""Analysis: the paper's metrics (affected fractions, CCT slowdown) and the
measured Table 3 characteristics probe."""

from .cdf import cdf_at, empirical_cdf, percentile, summarize
from .characteristics import Characteristics, PermutationProbe, divergence_is_upstream
from .metrics import AffectedCounts, SlowdownReport, affected_by_scenario, cct_slowdowns

__all__ = [
    "AffectedCounts",
    "Characteristics",
    "PermutationProbe",
    "SlowdownReport",
    "affected_by_scenario",
    "cct_slowdowns",
    "cdf_at",
    "divergence_is_upstream",
    "empirical_cdf",
    "percentile",
    "summarize",
]
