"""Measured reproduction of Table 3: per-architecture failure behaviour.

The paper's Table 3 asserts three qualitative properties per
architecture (no bandwidth loss? / no path dilation? / no upstream
repair?).  Instead of restating the table, this module *measures* the
three properties from a controlled experiment:

1. pin a reference flow set (a rack-level permutation: every rack sends
   one flow to the next rack — inter-pod heavy, so core/agg elements
   matter) and record max-min throughput and per-flow paths;
2. inject a failure and let the architecture's recovery mechanism act
   (rerouting policies repath; ShareBackup swaps in a backup switch);
3. re-measure:

   * **bandwidth loss** — aggregate max-min throughput dropped;
   * **path dilation** — some flow ends on a longer path;
   * **upstream repair** — some flow's new path diverges from the old
     one *before* the hop where the failure would be detected, i.e.
     recovery needed a decision upstream of the failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.ecmp import EcmpSelector
from ..routing.paths import DirectedSegment, Path
from ..routing.router import Router
from ..simulation.fairshare import max_min_rates
from ..topology.fattree import FatTree

__all__ = ["Characteristics", "PermutationProbe", "divergence_is_upstream"]


@dataclass(frozen=True)
class Characteristics:
    """One Table 3 row, measured."""

    architecture: str
    bandwidth_loss: bool
    path_dilation: bool
    upstream_repair: bool

    def table_row(self) -> tuple[str, str, str, str]:
        def mark(bad: bool) -> str:
            return "x" if bad else "OK"

        return (
            self.architecture,
            mark(self.bandwidth_loss),
            mark(self.path_dilation),
            mark(self.upstream_repair),
        )


def divergence_is_upstream(old: Path, new: Path, detection_index: int) -> bool:
    """True when ``new`` departs from ``old`` before the detection hop.

    ``detection_index`` is the index of the first broken hop on the old
    path; the switch at that index is the one that locally detects the
    failure.  A repair is *local* (no upstream involvement) when the new
    path is identical up to and including that switch.
    """
    limit = min(detection_index + 1, len(old.nodes), len(new.nodes))
    for i in range(limit):
        if old.nodes[i] != new.nodes[i]:
            return True
    return False


class PermutationProbe:
    """Throughput/path probe over a saturating host permutation.

    Every host of rack ``r`` sends one flow to the same-positioned host of
    rack ``r + k/2`` — an all-inter-pod permutation that loads the fabric
    at full bisection.  At that operating point any lost core/aggregation
    capacity *must* show up as aggregate max-min throughput loss, which is
    what makes the bandwidth-loss column of Table 3 measurable rather
    than asserted.
    """

    def __init__(self, tree: FatTree, router: Router) -> None:
        self.tree = tree
        self.router = router
        self.flows: dict[int, tuple[str, str]] = {}
        fid = 1
        for rack in range(tree.num_racks):
            dst_rack = (rack + tree.half) % tree.num_racks  # force inter-pod
            for h in range(tree.hosts_per_edge):
                src = f"H.{rack // tree.half}.{rack % tree.half}.{h}"
                dst = f"H.{dst_rack // tree.half}.{dst_rack % tree.half}.{h}"
                self.flows[fid] = (src, dst)
                fid += 1
        self.paths: dict[int, Path | None] = {}

    def pin_initial(self, greedy: bool = False) -> None:
        """Pin every probe flow.

        ``greedy=False`` uses the router's hash-ECMP placement.
        ``greedy=True`` places flows sequentially on the least-loaded
        shortest path (via ``router.repath`` with an accumulating load
        map).  Greedy placement makes the before/after throughput
        comparison *placement-fair*: both sides get the same placement
        quality, so any drop is genuinely lost capacity, not hash
        (bad) luck.  Use it with load-aware routers (global-optimal).
        """
        if not greedy:
            for fid, (src, dst) in self.flows.items():
                self.paths[fid] = self.router.initial_path(src, dst, fid)
            return
        load: dict[DirectedSegment, int] = {}
        for fid in sorted(self.flows):
            src, dst = self.flows[fid]
            path = self.router.repath(src, dst, fid, None, load)
            self.paths[fid] = path
            if path is not None:
                for seg in path.segments(self.tree, fid):
                    load[seg] = load.get(seg, 0) + 1

    def repath_broken(self) -> dict[int, tuple[Path, Path, int]]:
        """Repath flows whose pins broke; returns {fid: (old, new, detection)}."""
        self.router.on_topology_change()
        load: dict[DirectedSegment, int] = {}
        for fid, path in self.paths.items():
            if path is not None and path.is_operational(self.tree):
                for seg in path.segments(self.tree, fid):
                    load[seg] = load.get(seg, 0) + 1
        changed: dict[int, tuple[Path, Path, int]] = {}
        for fid in sorted(self.paths):
            old = self.paths[fid]
            if old is None or old.is_operational(self.tree):
                continue
            detection = self._detection_index(old)
            src, dst = self.flows[fid]
            new = self.router.repath(src, dst, fid, old, load)
            if new is not None and new.is_operational(self.tree):
                self.paths[fid] = new
                for seg in new.segments(self.tree, fid):
                    load[seg] = load.get(seg, 0) + 1
                changed[fid] = (old, new, detection)
            else:
                self.paths[fid] = None
        return changed

    def throughput(self) -> float:
        """Aggregate max-min throughput of the currently pinned flows."""
        capacities: dict[DirectedSegment, float] = {}
        for link in self.tree.links.values():
            capacities[DirectedSegment(link.link_id, True)] = link.capacity
            capacities[DirectedSegment(link.link_id, False)] = link.capacity
        flow_segments = {
            fid: path.segments(self.tree, fid)
            for fid, path in self.paths.items()
            if path is not None and path.is_operational(self.tree)
        }
        rates = max_min_rates(flow_segments, capacities)
        return sum(rates.values())

    def _detection_index(self, path: Path) -> int:
        tree = self.tree
        for i, (a, b) in enumerate(zip(path.nodes, path.nodes[1:])):
            if not tree.nodes[a].up or not tree.nodes[b].up:
                return i
            if not tree.operational_links_between(a, b):
                return i
        return len(path.nodes) - 1

    # ------------------------------------------------------------------

    def measure(
        self, architecture: str, inject, recover=None, greedy: bool = False
    ) -> Characteristics:
        """Full probe: pin → inject() → (recover()) → repath → compare.

        ``inject`` mutates the topology (e.g. fail a core switch);
        ``recover`` is the architecture's hardware recovery (ShareBackup's
        controller swap; None for rerouting-only architectures);
        ``greedy`` selects placement-fair initial pinning (see
        :meth:`pin_initial`).
        """
        self.pin_initial(greedy=greedy)
        base_throughput = self.throughput()
        base_hops = {
            fid: p.hops for fid, p in self.paths.items() if p is not None
        }

        inject()
        if recover is not None:
            recover()
        changed = self.repath_broken()

        after_throughput = self.throughput()
        tolerance = 1e-6 * max(base_throughput, 1.0)
        bandwidth_loss = after_throughput < base_throughput - tolerance

        dilation = any(
            self.paths[fid] is not None and self.paths[fid].hops > base_hops[fid]
            for fid in base_hops
        )
        upstream = any(
            divergence_is_upstream(old, new, det)
            for old, new, det in changed.values()
        )
        return Characteristics(
            architecture=architecture,
            bandwidth_loss=bandwidth_loss,
            path_dilation=dilation,
            upstream_repair=upstream,
        )
