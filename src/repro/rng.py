"""Seed plumbing shared by every stochastic component.

Reproducibility is a structural property here, not a convention: the
sweep runner (:mod:`repro.runner`) re-executes arbitrary slices of an
experiment in arbitrary worker processes and must land on bit-identical
results.  That only works if every random draw flows from an explicit
seed, so this module is the single place randomness enters the system:

* :func:`ensure_rng` normalises "whatever the caller has" — an int seed,
  a :class:`numpy.random.Generator`, a stdlib :class:`random.Random`, or
  ``None`` — into a NumPy generator.  Passing a stdlib ``Random``
  *derives* a NumPy generator from it deterministically, so callers
  holding legacy RNGs interoperate without two parallel seed arguments.
* :func:`derive_seed` maps (root seed, label) to an independent child
  seed via SHA-256, the standard trick for giving each shard of a
  parallel sweep its own stream without coordination (no shared
  generator state to serialise, no overlap between shards).

Nothing in ``src/repro`` may call the module-global ``random.*`` or
``numpy.random.*`` functions; they would be invisible to the runner.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["ensure_rng", "derive_seed"]

#: Anything :func:`ensure_rng` accepts.
SeedLike = "int | None | np.random.Generator | random.Random"


def ensure_rng(
    seed: int | None | np.random.Generator | random.Random,
) -> np.random.Generator:
    """A :class:`numpy.random.Generator` from any seed-like value.

    * ``Generator`` — returned as-is (caller keeps stream ownership);
    * ``int`` / ``None`` — seeds a fresh generator (NumPy treats ``None``
      as OS entropy, so only use it where reproducibility is not needed);
    * :class:`random.Random` — a fresh generator seeded from the next 64
      bits of the stdlib stream (deterministic given the caller's seed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, random.Random):
        return np.random.default_rng(seed.getrandbits(64))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"cannot build a Generator from {type(seed).__name__!r}; "
        "pass an int, None, random.Random, or numpy Generator"
    )


def derive_seed(root: int, *labels: object) -> int:
    """A child seed, deterministic in ``root`` and the label path.

    Distinct label paths give statistically independent 63-bit seeds
    (SHA-256 of the rendered path), so shards of one sweep never share a
    stream while the whole sweep remains a pure function of ``root``.
    """
    text = repr((int(root),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
