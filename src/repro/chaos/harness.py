"""One chaos scenario, end to end.

:class:`ChaosHarness` assembles the full recovery stack — a
:class:`~repro.core.sharebackup.ShareBackupNetwork`, a
:class:`~repro.core.controller.ShareBackupController` running with
graceful degradation on, a :class:`~repro.core.controller.ControllerCluster`,
and a :class:`~repro.core.watchdog.WatchdogSimulation` replaying a
seeded coflow trace — then injects a :class:`~repro.chaos.faults.FaultSchedule`
into it and distils the run into a JSON-safe :class:`ScenarioOutcome`.

The scenario *survives* when no :class:`HumanInterventionRequired`
escapes: every failure was handled by some rung of the degradation
ladder.  ``all_traffic_routed`` additionally demands that at the end of
the run every flow either completed or holds an operational path — i.e.
degraded slots really were absorbed by global rerouting rather than
stranding traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.circuit_switch import CircuitSwitch, CircuitSwitchError
from ..core.controller import (
    ControllerCluster,
    HumanInterventionRequired,
    ShareBackupController,
)
from ..core.sharebackup import ShareBackupNetwork
from ..core.watchdog import WatchdogSimulation
from ..rng import derive_seed
from ..simulation.engine import FluidSimulation
from ..workload.coflow_trace import (
    CoflowTraceGenerator,
    WorkloadConfig,
    materialize_hosts,
)
from .faults import ChaosFault, FaultSchedule, generate_schedule

__all__ = ["ChaosScenarioConfig", "ScenarioOutcome", "ChaosHarness", "run_scenario"]


@dataclass(frozen=True)
class ChaosScenarioConfig:
    """Everything one scenario needs; the payload is the cache key."""

    k: int = 6
    n: int = 1
    seed: int = 0
    duration: float = 4.0
    num_coflows: int = 12
    profile: str = "mixed"
    horizon: float | None = None

    def payload(self) -> dict[str, object]:
        return {
            "k": self.k,
            "n": self.n,
            "seed": self.seed,
            "duration": self.duration,
            "num_coflows": self.num_coflows,
            "profile": self.profile,
            "horizon": self.horizon,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "ChaosScenarioConfig":
        horizon = payload.get("horizon")
        return cls(
            k=int(payload["k"]),  # type: ignore[call-overload]
            n=int(payload["n"]),  # type: ignore[call-overload]
            seed=int(payload["seed"]),  # type: ignore[call-overload]
            duration=float(payload["duration"]),  # type: ignore[arg-type]
            num_coflows=int(payload["num_coflows"]),  # type: ignore[call-overload]
            profile=str(payload["profile"]),
            horizon=(
                None if horizon is None else float(horizon)  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """The distilled, JSON-safe result of one chaos scenario."""

    seed: int
    survived: bool
    all_traffic_routed: bool
    coflows: int
    coflows_completed: int
    flows: int
    flows_completed: int
    recovered: int
    rerouted: int
    stranded: int
    detections: int
    elections: int
    retries: int
    mttr_mean: float
    mttr_max: float
    fault_kinds: tuple[str, ...] = ()
    degradations: tuple[dict, ...] = field(default_factory=tuple)

    @property
    def human_intervention(self) -> bool:
        return not self.survived

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "survived": self.survived,
            "all_traffic_routed": self.all_traffic_routed,
            "coflows": self.coflows,
            "coflows_completed": self.coflows_completed,
            "flows": self.flows,
            "flows_completed": self.flows_completed,
            "recovered": self.recovered,
            "rerouted": self.rerouted,
            "stranded": self.stranded,
            "detections": self.detections,
            "elections": self.elections,
            "retries": self.retries,
            "mttr_mean": self.mttr_mean,
            "mttr_max": self.mttr_max,
            "fault_kinds": list(self.fault_kinds),
            "degradations": [dict(d) for d in self.degradations],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ScenarioOutcome":
        fault_kinds = data.get("fault_kinds", [])
        degradations = data.get("degradations", [])
        assert isinstance(fault_kinds, (list, tuple))
        assert isinstance(degradations, (list, tuple))
        return cls(
            seed=int(data["seed"]),  # type: ignore[call-overload]
            survived=bool(data["survived"]),
            all_traffic_routed=bool(data["all_traffic_routed"]),
            coflows=int(data["coflows"]),  # type: ignore[call-overload]
            coflows_completed=int(
                data["coflows_completed"]  # type: ignore[call-overload]
            ),
            flows=int(data["flows"]),  # type: ignore[call-overload]
            flows_completed=int(data["flows_completed"]),  # type: ignore[call-overload]
            recovered=int(data["recovered"]),  # type: ignore[call-overload]
            rerouted=int(data["rerouted"]),  # type: ignore[call-overload]
            stranded=int(data["stranded"]),  # type: ignore[call-overload]
            detections=int(data["detections"]),  # type: ignore[call-overload]
            elections=int(data["elections"]),  # type: ignore[call-overload]
            retries=int(data["retries"]),  # type: ignore[call-overload]
            mttr_mean=float(data["mttr_mean"]),  # type: ignore[arg-type]
            mttr_max=float(data["mttr_max"]),  # type: ignore[arg-type]
            fault_kinds=tuple(str(k) for k in fault_kinds),
            degradations=tuple(dict(d) for d in degradations),
        )


class ChaosHarness:
    """Builds the recovery stack and injects one fault schedule into it."""

    def __init__(
        self,
        config: ChaosScenarioConfig,
        schedule: FaultSchedule | None = None,
    ) -> None:
        self.config = config
        self.schedule = schedule or generate_schedule(
            config.k,
            config.n,
            derive_seed(config.seed, "schedule"),
            duration=config.duration,
            profile=config.profile,
        )
        self.net = ShareBackupNetwork(config.k, config.n)
        self.controller = ShareBackupController(
            self.net,
            degrade_to_reroute=True,
            rng=derive_seed(config.seed, "controller"),
        )
        # Attaching the controller snapshots circuit intent at the first
        # election — the cs-reboot fault depends on that.
        self.cluster = ControllerCluster(controller=self.controller)
        wcfg = WorkloadConfig(
            num_racks=self.net.logical.num_racks,
            num_coflows=config.num_coflows,
            duration=config.duration,
            seed=derive_seed(config.seed, "trace"),
        )
        specs = materialize_hosts(
            CoflowTraceGenerator(wcfg).generate(), self.net.logical
        )
        self.sim = WatchdogSimulation(
            self.net, specs, controller=self.controller, horizon=config.horizon
        )
        for fault in self.schedule.faults:
            self._install(fault)

    # ------------------------------------------------------------------
    # fault installers
    # ------------------------------------------------------------------

    def _install(self, fault: ChaosFault) -> None:
        installer = {
            "silent-node-failure": self._install_silent_failure,
            "stuck-crosspoint": self._install_stuck_crosspoint,
            "transient-reconfig": self._install_transient_reconfig,
            "cs-reboot": self._install_cs_reboot,
            "pool-drain": self._install_pool_drain,
            "controller-crash": self._install_controller_crash,
            "heartbeat-loss": self._install_heartbeat_loss,
            # The call-driven world has no decision stream to arm a
            # mid-batch trigger on; the fault degrades to a plain
            # primary crash at its scheduled time.  Decision identity
            # with the service path holds either way — that is the A/B
            # theorem the WAL + fencing machinery defends.
            "service-primary-crash": self._install_controller_crash,
        }[fault.kind]
        installer(fault)

    def _install_silent_failure(self, fault: ChaosFault) -> None:
        self.sim.inject_silent_switch_failure(fault.time, fault.target)

    def _install_heartbeat_loss(self, fault: ChaosFault) -> None:
        self.sim.inject_heartbeat_loss(fault.time, fault.target, fault.duration)

    def _install_stuck_crosspoint(self, fault: ChaosFault) -> None:
        def jam(sim: FluidSimulation) -> None:
            cs = self.net.circuit_switches[fault.target]
            jammed = 0
            for group in self.net.groups.values():
                for spare in list(group.spares):
                    ports = cs.ports_of_device(spare)
                    if ports:
                        cs.stuck_ports.update(ports)
                        jammed += 1
                        if jammed >= fault.count:
                            return

        self.sim.sim.schedule_action(
            fault.time, jam, label=f"chaos-stuck:{fault.target}"
        )

    def _install_transient_reconfig(self, fault: ChaosFault) -> None:
        budget = {"remaining": fault.count}

        def injector(cs: CircuitSwitch, changes: dict) -> None:
            if budget["remaining"] > 0:
                budget["remaining"] -= 1
                raise CircuitSwitchError(
                    f"{cs.name}: injected transient reconfiguration failure "
                    f"({budget['remaining']} more to come)"
                )

        def arm(sim: FluidSimulation) -> None:
            self.net.circuit_switches[fault.target].fault_injector = injector

        self.sim.sim.schedule_action(
            fault.time, arm, label=f"chaos-transient:{fault.target}"
        )

    def _install_cs_reboot(self, fault: ChaosFault) -> None:
        def crash(sim: FluidSimulation) -> None:
            self.net.circuit_switches[fault.target].crash()

        def reboot(sim: FluidSimulation) -> None:
            self.controller.circuit_switch_rebooted(
                fault.target, now=sim.clock.now
            )

        self.sim.sim.schedule_action(
            fault.time, crash, label=f"chaos-cs-crash:{fault.target}"
        )
        self.sim.sim.schedule_action(
            fault.time + max(fault.duration, 1e-6),
            reboot,
            label=f"chaos-cs-reboot:{fault.target}",
        )

    def _install_pool_drain(self, fault: ChaosFault) -> None:
        def drain(sim: FluidSimulation) -> None:
            group = self.net.groups[fault.target]
            for _ in range(min(fault.count, len(group.spares))):
                spare = group.spares.pop()
                group.offline.add(spare)
                self.net.physical_health[spare] = False

        self.sim.sim.schedule_action(
            fault.time, drain, label=f"chaos-pool-drain:{fault.target}"
        )

    def _install_controller_crash(self, fault: ChaosFault) -> None:
        def crash(sim: FluidSimulation) -> None:
            failed = self.cluster.fail_primary()
            if failed is not None and fault.duration > 0:
                sim.schedule_action(
                    sim.clock.now + fault.duration,
                    lambda s: self.cluster.restore_replica(failed),
                    label=f"chaos-ctrl-restore:{failed}",
                )

        self.sim.sim.schedule_action(
            fault.time, crash, label="chaos-ctrl-crash"
        )

    # ------------------------------------------------------------------

    def run(self) -> ScenarioOutcome:
        survived = True
        try:
            result = self.sim.run()
        except HumanInterventionRequired:
            survived = False
            result = self.sim.sim._build_result()

        flows = list(result.flows.values())
        recovered = sum(1 for r in self.sim.reports if r.fully_recovered)
        rerouted = sum(len(r.degraded) for r in self.sim.reports)
        stranded = sum(
            len(r.unrecoverable) - len(r.degraded) for r in self.sim.reports
        )
        mttrs = [
            r.recovery_time for r in self.sim.reports if r.fully_recovered
        ]
        return ScenarioOutcome(
            seed=self.config.seed,
            survived=survived,
            all_traffic_routed=all(
                rec.completed or rec.final_hops is not None for rec in flows
            ),
            coflows=len(result.coflows),
            coflows_completed=sum(
                1 for c in result.coflows.values() if c.completed
            ),
            flows=len(flows),
            flows_completed=sum(1 for rec in flows if rec.completed),
            recovered=recovered,
            rerouted=rerouted,
            stranded=stranded,
            detections=len(self.sim.detections),
            elections=self.cluster.elections,
            retries=sum(d.retries for d in self.controller.degradations),
            mttr_mean=sum(mttrs) / len(mttrs) if mttrs else 0.0,
            mttr_max=max(mttrs) if mttrs else 0.0,
            fault_kinds=self.schedule.kinds(),
            degradations=tuple(
                d.to_dict() for d in self.controller.degradations
            ),
        )


def run_scenario(
    config: ChaosScenarioConfig, schedule: FaultSchedule | None = None
) -> ScenarioOutcome:
    """Build the stack, inject the faults, run to completion."""
    return ChaosHarness(config, schedule=schedule).run()
