"""Control-plane fault injection for the recovery system itself.

Ordinary failure experiments (:mod:`repro.experiments`) kill data-plane
switches and watch ShareBackup recover.  This package attacks the
machinery *doing* the recovering — circuit switches that jam, reject, or
reboot mid-failover; backup pools drained to exhaustion; controller
replicas crashing between detection and reconfiguration; heartbeats that
go missing without a failure — and checks that the controller's
degradation ladder (retry → alternate spare → global rerouting; see
:mod:`repro.core.degradation`) keeps traffic flowing instead of raising
:class:`~repro.core.controller.HumanInterventionRequired`.

Layout:

* :mod:`~repro.chaos.faults` — the fault vocabulary and seeded schedule
  generation;
* :mod:`~repro.chaos.harness` — one scenario: full recovery stack +
  fault schedule → :class:`~repro.chaos.harness.ScenarioOutcome`;
* :mod:`~repro.chaos.campaign` — N scenarios through the parallel
  runner, aggregate stats, and the byte-reproducible campaign journal.

CLI: ``repro chaos`` (see ``repro chaos --help``; ``--smoke`` runs the
small maximally-hostile campaign CI gates on).
"""

from .campaign import (
    CAMPAIGN_EVENTS,
    CampaignOutcome,
    CampaignStats,
    ChaosCampaignConfig,
    evaluate_chaos_payload,
    run_chaos_campaign,
    write_campaign_journal,
)
from .faults import FAULT_KINDS, ChaosFault, FaultSchedule, generate_schedule
from .harness import (
    ChaosHarness,
    ChaosScenarioConfig,
    ScenarioOutcome,
    run_scenario,
)

__all__ = [
    "CAMPAIGN_EVENTS",
    "FAULT_KINDS",
    "CampaignOutcome",
    "CampaignStats",
    "ChaosCampaignConfig",
    "ChaosFault",
    "ChaosHarness",
    "ChaosScenarioConfig",
    "FaultSchedule",
    "ScenarioOutcome",
    "evaluate_chaos_payload",
    "generate_schedule",
    "run_chaos_campaign",
    "run_scenario",
    "write_campaign_journal",
]
