"""Seeded chaos campaigns over the parallel runner.

A campaign is ``N`` independent scenarios, each with its own derived
seed (:func:`repro.rng.derive_seed`), fanned out as ordinary
:class:`repro.runner.shards.Task` objects through a
:class:`~repro.runner.executor.SweepRunner` — so chaos rides the same
caching, fault tolerance, and journaling as the paper's sweeps, and a
warm re-run of a campaign touches zero simulations.

Besides the runner's own orchestration journal, a campaign writes its
*campaign journal*: one ``campaign_start`` record, one
``campaign_scenario`` record per scenario (in index order), one
``campaign_finish`` record with the aggregate stats.  Every field is a
pure function of the campaign config, and the timestamps come from a
deterministic counter — so two runs of the same campaign produce
byte-identical journals, which is the reproducibility contract the
chaos tests pin.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path

from ..rng import derive_seed
from ..runner.executor import RunResult, SweepRunner
from ..runner.journal import RunJournal
from ..runner.shards import Task
from ..runner.summary import RunSummary
from .harness import ChaosScenarioConfig, ScenarioOutcome, run_scenario

__all__ = [
    "CAMPAIGN_EVENTS",
    "ChaosCampaignConfig",
    "CampaignStats",
    "CampaignOutcome",
    "evaluate_chaos_payload",
    "run_chaos_campaign",
    "write_campaign_journal",
]

#: Campaign-journal vocabulary, layered on the runner's via
#: ``RunJournal(extra_events=...)``.
CAMPAIGN_EVENTS: tuple[str, ...] = (
    "campaign_start",
    "campaign_scenario",
    "campaign_finish",
)


def evaluate_chaos_payload(payload: dict) -> dict:
    """Worker entry point (the ``"chaos"`` alias in ``WORKERS``)."""
    config = ChaosScenarioConfig.from_payload(payload)
    return run_scenario(config).to_dict()


@dataclass(frozen=True)
class ChaosCampaignConfig:
    """Sizing of one campaign: N scenarios on a (k, n) network."""

    k: int = 6
    n: int = 1
    scenarios: int = 8
    seed: int = 0
    duration: float = 4.0
    num_coflows: int = 12
    profile: str = "mixed"
    horizon: float | None = None

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise ValueError(f"need at least one scenario, got {self.scenarios}")

    def scenario_config(self, index: int) -> ChaosScenarioConfig:
        return ChaosScenarioConfig(
            k=self.k,
            n=self.n,
            seed=derive_seed(self.seed, "chaos", index),
            duration=self.duration,
            num_coflows=self.num_coflows,
            profile=self.profile,
            horizon=self.horizon,
        )

    def tasks(self) -> list[Task]:
        return [
            Task(
                f"chaos/{index}/k{self.k}-n{self.n}-{self.profile}",
                "chaos",
                self.scenario_config(index).payload(),
            )
            for index in range(self.scenarios)
        ]

    def to_dict(self) -> dict[str, object]:
        return {
            "k": self.k,
            "n": self.n,
            "scenarios": self.scenarios,
            "seed": self.seed,
            "duration": self.duration,
            "num_coflows": self.num_coflows,
            "profile": self.profile,
            "horizon": self.horizon,
        }


@dataclass(frozen=True)
class CampaignStats:
    """Aggregate survival / degradation / MTTR statistics."""

    scenarios: int
    survived: int
    human_interventions: int
    traffic_routed: int
    recovered: int
    rerouted: int
    stranded: int
    retries: int
    failovers: int  # controller-replica elections beyond the initial one
    detections: int
    mttr_mean: float
    mttr_max: float

    @property
    def survival_rate(self) -> float:
        return self.survived / self.scenarios if self.scenarios else 0.0

    @property
    def traffic_routed_rate(self) -> float:
        return self.traffic_routed / self.scenarios if self.scenarios else 0.0

    @classmethod
    def from_outcomes(cls, outcomes: list[ScenarioOutcome]) -> "CampaignStats":
        mttrs = [o.mttr_mean for o in outcomes if o.recovered]
        return cls(
            scenarios=len(outcomes),
            survived=sum(1 for o in outcomes if o.survived),
            human_interventions=sum(
                1 for o in outcomes if o.human_intervention
            ),
            traffic_routed=sum(1 for o in outcomes if o.all_traffic_routed),
            recovered=sum(o.recovered for o in outcomes),
            rerouted=sum(o.rerouted for o in outcomes),
            stranded=sum(o.stranded for o in outcomes),
            retries=sum(o.retries for o in outcomes),
            failovers=sum(max(0, o.elections - 1) for o in outcomes),
            detections=sum(o.detections for o in outcomes),
            mttr_mean=sum(mttrs) / len(mttrs) if mttrs else 0.0,
            mttr_max=max((o.mttr_max for o in outcomes), default=0.0),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "scenarios": self.scenarios,
            "survived": self.survived,
            "human_interventions": self.human_interventions,
            "traffic_routed": self.traffic_routed,
            "recovered": self.recovered,
            "rerouted": self.rerouted,
            "stranded": self.stranded,
            "retries": self.retries,
            "failovers": self.failovers,
            "detections": self.detections,
            "mttr_mean": self.mttr_mean,
            "mttr_max": self.mttr_max,
        }

    def table(self) -> str:
        lines = [
            f"chaos campaign: {self.scenarios} scenarios",
            f"  survived (no human intervention): {self.survived}/"
            f"{self.scenarios} ({self.survival_rate:.0%})",
            f"  all traffic routed at end:        {self.traffic_routed}/"
            f"{self.scenarios} ({self.traffic_routed_rate:.0%})",
            f"  recoveries: {self.recovered} via backup, "
            f"{self.rerouted} degraded to rerouting, "
            f"{self.stranded} stranded",
            f"  circuit-reconfig retries: {self.retries}   "
            f"controller failovers: {self.failovers}   "
            f"detections: {self.detections}",
            f"  MTTR mean {self.mttr_mean * 1e3:.3f} ms, "
            f"max {self.mttr_max * 1e3:.3f} ms",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignOutcome:
    """Per-scenario outcomes + campaign stats + runner orchestration."""

    config: ChaosCampaignConfig
    outcomes: tuple[ScenarioOutcome, ...]
    stats: CampaignStats
    summary: RunSummary


def write_campaign_journal(
    path: str | Path,
    config: ChaosCampaignConfig,
    outcomes: list[ScenarioOutcome],
    stats: CampaignStats,
) -> None:
    """Write the deterministic campaign journal (see module docstring).

    ``ts`` is a plain record counter, not wall-clock time: campaign
    journals must be byte-identical across runs of the same seed, and
    real timestamps are the one field that never is.  The runner's own
    journal (wall-clock, cache hits) remains available separately via
    ``SweepRunner(journal=...)``.
    """
    counter = itertools.count()
    with RunJournal(
        path,
        clock=lambda: float(next(counter)),
        keep_events=False,
        extra_events=CAMPAIGN_EVENTS,
    ) as journal:
        journal.record("campaign_start", **config.to_dict())
        for index, outcome in enumerate(outcomes):
            journal.record("campaign_scenario", index=index, **outcome.to_dict())
        journal.record("campaign_finish", **stats.to_dict())


def run_chaos_campaign(
    config: ChaosCampaignConfig,
    runner: SweepRunner | None = None,
    journal_path: str | Path | None = None,
) -> CampaignOutcome:
    """Run every scenario of ``config`` through the parallel runner."""
    tasks = config.tasks()
    runner = runner if runner is not None else SweepRunner()
    run: RunResult = runner.run(tasks)
    outcomes = [
        ScenarioOutcome.from_dict(run.results[task.task_id])  # type: ignore[arg-type]
        for task in tasks
    ]
    stats = CampaignStats.from_outcomes(outcomes)
    if journal_path is not None:
        write_campaign_journal(journal_path, config, outcomes, stats)
    return CampaignOutcome(
        config=config,
        outcomes=tuple(outcomes),
        stats=stats,
        summary=run.summary,
    )
