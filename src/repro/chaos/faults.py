"""Control-plane fault vocabulary and randomized schedule generation.

Ordinary failure studies (:mod:`repro.experiments`) perturb the *data
plane* — switches and links die, ShareBackup recovers.  Chaos campaigns
perturb the *recovery system itself*: the circuit switches, the backup
pools, the controller replicas, and the keep-alive channel the watchdog
depends on.  Each perturbation is one :class:`ChaosFault`; a scenario is
a :class:`FaultSchedule` — a seed plus a time-ordered fault list, fully
JSON-serialisable so it can ride a :class:`repro.runner.shards.Task`
payload (and therefore be the cache key of its own result).

Fault kinds (all targets are names in the scenario's
:class:`~repro.core.sharebackup.ShareBackupNetwork`):

* ``silent-node-failure`` — the *workload*: a packet switch dies
  silently (the watchdog must detect it).  Target: a logical switch.
* ``stuck-crosspoint`` — hardware: the crosspoints wired to the first
  ``count`` idle spares of the groups served by the target circuit
  switch jam; failover through that switch onto those spares fails (a
  reboot does not unjam them).  Target: a circuit switch.
* ``transient-reconfig`` — the next ``count`` reconfiguration requests
  to the target circuit switch fail, then it behaves again (the case the
  controller's retry policy exists for).  Target: a circuit switch.
* ``cs-reboot`` — the target circuit switch crashes (configuration
  wiped) at ``time`` and finishes rebooting ``duration`` later, when the
  controller re-pushes its intended configuration (paper §5.1).
* ``pool-drain`` — ``count`` spares of the target failure group are
  pulled from the pool (maintenance / latent faults), steering the
  scenario toward backup exhaustion.  Target: a failure group.
* ``controller-crash`` — the primary controller replica dies
  mid-operation; the cluster elects a successor (which re-snapshots
  circuit intent).  With ``duration`` > 0 the replica is restored later.
* ``heartbeat-loss`` — keep-alives from a healthy switch are lost for
  ``duration`` seconds; a loss outliving the miss threshold triggers a
  spurious failover.  Target: a logical switch.
* ``service-primary-crash`` — the primary dies *mid-batch*: the crash is
  armed to fire after ``count`` more failover decisions, synchronously
  inside the service's decision callback, leaving the rest of an
  in-flight resolver batch to be epoch-fenced and resumed by the new
  primary from the write-ahead decision log.  In the call-driven
  harness (no decision stream to trigger on) it degrades to a plain
  ``controller-crash``.  Target: ``"primary"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sharebackup import ShareBackupNetwork
from ..rng import ensure_rng

__all__ = ["FAULT_KINDS", "ChaosFault", "FaultSchedule", "generate_schedule"]

FAULT_KINDS: tuple[str, ...] = (
    "silent-node-failure",
    "stuck-crosspoint",
    "transient-reconfig",
    "cs-reboot",
    "pool-drain",
    "controller-crash",
    "heartbeat-loss",
    "service-primary-crash",
)


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled perturbation of the recovery system."""

    time: float
    kind: str
    target: str
    count: int = 1
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")

    def to_dict(self) -> dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "count": self.count,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ChaosFault":
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            target=str(data["target"]),
            count=int(data["count"]),  # type: ignore[call-overload]
            duration=float(data["duration"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultSchedule:
    """One scenario's worth of faults, ordered by injection time."""

    seed: int
    faults: tuple[ChaosFault, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.time, f.kind, f.target))
        )
        object.__setattr__(self, "faults", ordered)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({f.kind for f in self.faults}))

    def to_dict(self) -> dict[str, object]:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultSchedule":
        faults = data["faults"]
        assert isinstance(faults, list)
        return cls(
            seed=int(data["seed"]),  # type: ignore[call-overload]
            faults=tuple(ChaosFault.from_dict(f) for f in faults),
        )


def generate_schedule(
    k: int,
    n: int,
    seed: int,
    duration: float = 4.0,
    profile: str = "mixed",
) -> FaultSchedule:
    """A randomized, reproducible fault schedule for a ``(k, n)`` network.

    The draw is a pure function of ``seed`` (:func:`repro.rng.ensure_rng`
    discipline), so the same seed always yields byte-identical schedules
    — the determinism the campaign journal is tested against.

    Profiles:

    * ``"mixed"`` — 1–3 silent node failures plus an independent coin
      flip per control-plane fault kind (the default campaign diet);
    * ``"recovery-storm"`` — silent failures only, several in quick
      succession (stresses pool sharing, not the control plane);
    * ``"control-plane"`` — every control-plane fault kind once
      (including a mid-batch ``service-primary-crash``), plus two
      silent failures (maximally hostile; the smoke profile);
    * ``"controller-storm"`` — crash-heavy: repeated primary crashes
      (with restores), one mid-batch ``service-primary-crash``, and a
      heartbeat-loss window, over 2–5 silent failures.  Exercises
      election churn, epoch fencing, and WAL takeover back to back.

    Silent failures target aggregation and core switches only: an edge
    switch is every downstream host's single point of attachment, so a
    dead edge slot makes traffic unroutable for *any* scheme and would
    conflate "the ladder stranded traffic" with "the topology did".
    """
    profiles = ("mixed", "recovery-storm", "control-plane", "controller-storm")
    if profile not in profiles:
        raise ValueError(f"unknown chaos profile {profile!r}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    rng = ensure_rng(seed)
    net = ShareBackupNetwork(k, n)

    tree = net.logical
    victims = [
        name for pod in range(k) for name in tree.agg_switches(pod)
    ] + list(tree.core_switches())
    cs_names = sorted(net.circuit_switches)
    group_ids = sorted(net.groups)

    def draw_time(lo: float = 0.05, hi: float = 0.75) -> float:
        return round(float(rng.uniform(lo * duration, hi * duration)), 6)

    def pick(names: list[str]) -> str:
        return names[int(rng.integers(0, len(names)))]

    faults: list[ChaosFault] = []

    if profile == "recovery-storm":
        num_failures = int(rng.integers(2, 5))
    elif profile == "control-plane":
        num_failures = 2
    elif profile == "controller-storm":
        num_failures = int(rng.integers(2, 6))
    else:
        num_failures = int(rng.integers(1, 4))
    num_failures = min(num_failures, len(victims))
    chosen = rng.choice(len(victims), size=num_failures, replace=False)
    for index in sorted(int(i) for i in chosen):
        faults.append(
            ChaosFault(draw_time(), "silent-node-failure", victims[index])
        )

    def flip(probability: float) -> bool:
        if profile == "control-plane":
            return True
        if profile in ("recovery-storm", "controller-storm"):
            # Storm profiles take none of the mixed menu; controller-storm
            # appends its own crash-heavy block below instead.
            return False
        return bool(rng.uniform(0.0, 1.0) < probability)

    # The control-plane menu.  Draws happen unconditionally so every
    # profile consumes the same stream — schedules with different
    # profiles but one seed stay comparable fault-by-fault.
    stuck_time, stuck_cs = draw_time(0.0, 0.3), pick(cs_names)
    if flip(0.5):
        faults.append(ChaosFault(stuck_time, "stuck-crosspoint", stuck_cs))

    trans_time, trans_cs = draw_time(0.0, 0.3), pick(cs_names)
    trans_count = int(rng.integers(1, 4))
    if flip(0.5):
        faults.append(
            ChaosFault(
                trans_time, "transient-reconfig", trans_cs, count=trans_count
            )
        )

    reboot_time, reboot_cs = draw_time(0.1, 0.5), pick(cs_names)
    reboot_duration = round(float(rng.uniform(0.2, 0.6)), 6)
    if flip(0.35):
        faults.append(
            ChaosFault(
                reboot_time, "cs-reboot", reboot_cs, duration=reboot_duration
            )
        )

    drain_time, drain_group = draw_time(0.0, 0.2), pick(group_ids)
    drain_count = int(rng.integers(1, n + 1))
    if flip(0.5):
        faults.append(
            ChaosFault(drain_time, "pool-drain", drain_group, count=drain_count)
        )

    crash_time = draw_time(0.1, 0.6)
    if flip(0.5):
        faults.append(ChaosFault(crash_time, "controller-crash", "primary"))

    hb_time, hb_victim = draw_time(0.1, 0.6), pick(victims)
    hb_duration = round(float(rng.uniform(0.001, 0.02)), 6)
    if flip(0.35):
        faults.append(
            ChaosFault(
                hb_time, "heartbeat-loss", hb_victim, duration=hb_duration
            )
        )

    # Profile-specific draws happen *after* the shared menu so the other
    # profiles' streams (and therefore their schedules) stay untouched.
    if profile == "control-plane":
        # "Every control-plane fault kind once" includes the mid-batch
        # primary crash; armed early so it catches the first decisions.
        faults.append(
            ChaosFault(
                draw_time(0.0, 0.1), "service-primary-crash", "primary"
            )
        )

    if profile == "controller-storm":
        for _ in range(int(rng.integers(2, 4))):
            crash_at = draw_time(0.05, 0.7)
            restore_after = round(float(rng.uniform(0.05, 0.3)), 6)
            faults.append(
                ChaosFault(
                    crash_at,
                    "controller-crash",
                    "primary",
                    duration=restore_after,
                )
            )
        faults.append(
            ChaosFault(
                draw_time(0.0, 0.1),
                "service-primary-crash",
                "primary",
                count=int(rng.integers(1, 3)),
            )
        )
        faults.append(
            ChaosFault(
                draw_time(0.2, 0.6),
                "heartbeat-loss",
                pick(victims),
                duration=round(float(rng.uniform(0.001, 0.02)), 6),
            )
        )

    return FaultSchedule(seed=seed, faults=tuple(faults))
