"""Cost equations of Table 2 and the Figure 5 comparison curves.

Equations (per the paper, with ``a`` = circuit-switch port price, ``b`` =
packet-switch port price, ``c`` = cable price):

===============  ============================================================
architecture     cost
===============  ============================================================
fat-tree         ``(5/4)k³·b + (k³/2)·c``
ShareBackup      ``(3/2)k²(k/2+n+2)·a + (5/2)k²n·b + (5/4)k²n·c`` + fat-tree
Aspen Tree       ``(k³/2)·b + (k³/4)·c`` + fat-tree
1:1 backup       ``(15/4)k³·b + (3/2)k³·c`` + fat-tree  (total = 4× fat-tree)
===============  ============================================================

Where the terms come from (all verifiable against the builders — the
tests cross-check):

* a fat-tree has ``5k²/4`` switches × ``k`` ports and ``k³/2`` cables;
* ShareBackup adds ``5k/2`` failure groups × ``n`` backups = ``(5/2)kn``
  switches (× ``k`` ports), ``(5/4)k²n`` cable-equivalents (each backup
  port adds *half* a cable — the other half of the spliced cable already
  exists), and ``(3/2)k²`` circuit switches of ``k/2+n+2`` ports;
* Aspen adds one reconnection layer: ``k²/2`` switches and ``k³/4`` cables;
* 1:1 backup doubles switches and needs the 4-mesh on every switch link,
  quadrupling cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from .prices import PriceBook

__all__ = [
    "CostBreakdown",
    "fattree_cost",
    "sharebackup_extra_cost",
    "aspen_extra_cost",
    "one_to_one_extra_cost",
    "relative_extra_cost",
    "figure5_series",
    "sharebackup_inventory",
]


@dataclass(frozen=True)
class CostBreakdown:
    """One architecture's additional cost over fat-tree, decomposed (USD)."""

    architecture: str
    circuit_ports: float
    switch_ports: float
    cables: float

    @property
    def total(self) -> float:
        return self.circuit_ports + self.switch_ports + self.cables


def _check_k(k: int) -> None:
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree parameter k must be even and >= 2, got {k}")


def fattree_cost(k: int, prices: PriceBook) -> float:
    """Baseline fat-tree cost: ``(5/4)k³b + (k³/2)c``."""
    _check_k(k)
    return 1.25 * k**3 * prices.switch_port + 0.5 * k**3 * prices.cable


def sharebackup_inventory(k: int, n: int) -> dict[str, float]:
    """Physical quantities ShareBackup adds (unit counts, not dollars)."""
    _check_k(k)
    if n < 0:
        raise ValueError("n must be non-negative")
    return {
        "backup_switches": 2.5 * k * n,
        "backup_switch_ports": 2.5 * k**2 * n,
        "extra_cable_equivalents": 1.25 * k**2 * n,
        "circuit_switches": 1.5 * k**2,
        "circuit_switch_ports": 1.5 * k**2 * (k / 2 + n + 2),
    }


def sharebackup_extra_cost(k: int, n: int, prices: PriceBook) -> CostBreakdown:
    """ShareBackup's additional cost over fat-tree (Table 2, row 2)."""
    inv = sharebackup_inventory(k, n)
    return CostBreakdown(
        architecture=f"sharebackup(n={n})",
        circuit_ports=inv["circuit_switch_ports"] * prices.circuit_port,
        switch_ports=inv["backup_switch_ports"] * prices.switch_port,
        cables=inv["extra_cable_equivalents"] * prices.cable,
    )


def sharebackup_nonuniform_extra_cost(
    k: int, n_edge: int, n_agg: int, n_core: int, prices: PriceBook
) -> CostBreakdown:
    """Additional cost with per-layer spare counts (the §6 extension).

    Derivation mirrors the uniform case per layer: the edge and
    aggregation layers contribute ``k`` pods × ``n`` backups each, the
    core layer ``k/2`` groups × ``n``; every backup switch has ``k``
    ports and ``k/2`` half-cable pairs on each of its two circuit layers;
    layer-ℓ circuit switches (``k²/2`` of them per layer) are sized
    ``k/2 + max(adjacent spare counts) + 2`` per side (asymmetric sides
    are priced at the larger side, matching square-crossbar parts).
    """
    _check_k(k)
    for label, value in (("n_edge", n_edge), ("n_agg", n_agg), ("n_core", n_core)):
        if value < 0:
            raise ValueError(f"{label} must be non-negative")
    half = k / 2
    backup_switches = k * n_edge + k * n_agg + half * n_core
    switch_ports = backup_switches * k
    cable_equivalents = switch_ports / 2  # each port adds half a cable
    per_layer_cs = k * half  # k pods x k/2 circuit switches per layer
    circuit_ports = per_layer_cs * (
        (half + max(n_edge, n_edge) + 2)  # layer 1: hosts | edges
        + (half + max(n_edge, n_agg) + 2)  # layer 2: edges | aggs
        + (half + max(n_agg, n_core) + 2)  # layer 3: aggs | cores
    )
    return CostBreakdown(
        architecture=f"sharebackup(e={n_edge},a={n_agg},c={n_core})",
        circuit_ports=circuit_ports * prices.circuit_port,
        switch_ports=switch_ports * prices.switch_port,
        cables=cable_equivalents * prices.cable,
    )


def aspen_extra_cost(k: int, prices: PriceBook) -> CostBreakdown:
    """Aspen Tree's additional cost over fat-tree (Table 2, row 3)."""
    _check_k(k)
    return CostBreakdown(
        architecture="aspen",
        circuit_ports=0.0,
        switch_ports=0.5 * k**3 * prices.switch_port,
        cables=0.25 * k**3 * prices.cable,
    )


def one_to_one_extra_cost(k: int, prices: PriceBook) -> CostBreakdown:
    """1:1 backup's additional cost over fat-tree (Table 2, row 4).

    Doubling every switch and meshing every inter-switch link makes the
    total exactly ``4×`` fat-tree, so the *extra* is ``3×``.
    """
    _check_k(k)
    return CostBreakdown(
        architecture="1:1-backup",
        circuit_ports=0.0,
        switch_ports=3.75 * k**3 * prices.switch_port,
        cables=1.5 * k**3 * prices.cable,
    )


def relative_extra_cost(extra: CostBreakdown, k: int, prices: PriceBook) -> float:
    """Additional cost as a fraction of the fat-tree baseline (Figure 5's y-axis)."""
    return extra.total / fattree_cost(k, prices)


def figure5_series(
    ks: tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56, 64),
    ns: tuple[int, ...] = (1, 2, 4),
    prices: PriceBook | None = None,
) -> dict[str, list[tuple[int, float]]]:
    """The Figure 5 curves: relative additional cost vs network scale.

    Returns ``{series name: [(k, relative extra cost), ...]}`` for
    ShareBackup at each ``n``, Aspen Tree, and 1:1 backup.
    """
    from .prices import E_DC

    prices = prices or E_DC
    series: dict[str, list[tuple[int, float]]] = {}
    for n in ns:
        series[f"sharebackup(n={n})"] = [
            (k, relative_extra_cost(sharebackup_extra_cost(k, n, prices), k, prices))
            for k in ks
        ]
    series["aspen"] = [
        (k, relative_extra_cost(aspen_extra_cost(k, prices), k, prices)) for k in ks
    ]
    series["1:1-backup"] = [
        (k, relative_extra_cost(one_to_one_extra_cost(k, prices), k, prices))
        for k in ks
    ]
    return series
