"""Market prices from Table 2 of the paper.

Two deployment flavours:

* **E-DC** — electrical data center: copper DAC cables, electrical
  crosspoint circuit switches (XFabric-class, $3/port), $81 per 10 m
  10 Gbps DAC;
* **O-DC** — optical data center: fibers + transceivers, 2D MEMS circuit
  switches ($10/port), $40 per link (two $16 transceivers + $8 fiber).

``b`` (packet-switch port) is $60 in both: $3000 for a 48-port 10 Gbps
bare-metal switch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PriceBook", "E_DC", "O_DC", "PRICE_BOOKS"]


@dataclass(frozen=True)
class PriceBook:
    """Per-unit device prices (USD), Table 2's ``a``, ``b``, ``c``."""

    name: str
    circuit_port: float  # a — per-port cost of circuit switches
    switch_port: float  # b — per-port cost of packet switches
    cable: float  # c — cost per link

    def __post_init__(self) -> None:
        for label, value in (
            ("circuit_port", self.circuit_port),
            ("switch_port", self.switch_port),
            ("cable", self.cable),
        ):
            if value <= 0:
                raise ValueError(f"{self.name}: {label} price must be positive")


#: Electrical data center: crosspoint switches [XFabric], copper DAC [FS.COM].
E_DC = PriceBook(name="E-DC", circuit_port=3.0, switch_port=60.0, cable=81.0)

#: Optical data center: 2D MEMS [Wu et al.], transceivers+fiber [FS.COM].
O_DC = PriceBook(name="O-DC", circuit_port=10.0, switch_port=60.0, cable=40.0)

PRICE_BOOKS: dict[str, PriceBook] = {"E-DC": E_DC, "O-DC": O_DC}
