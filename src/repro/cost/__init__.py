"""Cost analysis (paper Section 5.2): Table 2 equations and Figure 5 curves."""

from .models import (
    CostBreakdown,
    aspen_extra_cost,
    fattree_cost,
    figure5_series,
    one_to_one_extra_cost,
    relative_extra_cost,
    sharebackup_extra_cost,
    sharebackup_inventory,
    sharebackup_nonuniform_extra_cost,
)
from .prices import E_DC, O_DC, PRICE_BOOKS, PriceBook

__all__ = [
    "CostBreakdown",
    "E_DC",
    "O_DC",
    "PRICE_BOOKS",
    "PriceBook",
    "aspen_extra_cost",
    "fattree_cost",
    "figure5_series",
    "one_to_one_extra_cost",
    "relative_extra_cost",
    "sharebackup_extra_cost",
    "sharebackup_nonuniform_extra_cost",
    "sharebackup_inventory",
]
