"""Flow and coflow specifications and their runtime state.

A *flow* is a point-to-point transfer of a fixed number of bytes; a
*coflow* (Chowdhury & Stoica, HotNets'12) is the set of flows one
application stage produces, and the paper's unit of application-level
impact: "a coflow is affected if at least one flow in its set gets
affected", and CCT — the completion time of the slowest flow — is the
metric failures inflate by orders of magnitude (Figure 1c).

Specs are immutable inputs (what the workload generator emits); the
``FlowState``/runtime bookkeeping lives with the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..routing.paths import DirectedSegment, Path

__all__ = ["FlowSpec", "CoflowSpec", "FlowPhase", "FlowState"]


@dataclass(frozen=True)
class FlowSpec:
    """One transfer: ``size_bytes`` from ``src`` host to ``dst`` host."""

    flow_id: int
    coflow_id: int
    src: str
    dst: str
    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"flow {self.flow_id}: non-positive size")
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst ({self.src})")

    @property
    def size_bits(self) -> float:
        return self.size_bytes * 8.0


@dataclass(frozen=True)
class CoflowSpec:
    """A set of flows released together at ``arrival`` (seconds)."""

    coflow_id: int
    arrival: float
    flows: tuple[FlowSpec, ...]

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError(f"coflow {self.coflow_id} has no flows")
        for f in self.flows:
            if f.coflow_id != self.coflow_id:
                raise ValueError(
                    f"flow {f.flow_id} claims coflow {f.coflow_id}, "
                    f"listed under {self.coflow_id}"
                )

    @property
    def width(self) -> int:
        """Number of flows — the coflow's parallelism."""
        return len(self.flows)

    @property
    def total_bytes(self) -> float:
        return sum(f.size_bytes for f in self.flows)


class FlowPhase(Enum):
    PENDING = "pending"  # coflow not arrived yet
    ACTIVE = "active"  # transferring at the allocated rate
    STALLED = "stalled"  # disconnected by failures, waiting for repair
    DONE = "done"


@dataclass
class FlowState:
    """Mutable per-flow simulation state.

    ``remaining_bits`` is *lazily* materialised: it is exact as of
    ``updated_at``, and :meth:`settle` brings it forward to any later
    instant.  The engine only settles a flow when its rate changes or it
    becomes a completion candidate, so event processing never sweeps the
    whole active set.
    """

    spec: FlowSpec
    start: float
    remaining_bits: float
    phase: FlowPhase = FlowPhase.ACTIVE
    path: Optional[Path] = None
    segments: tuple[DirectedSegment, ...] = ()
    rate: float = 0.0  # bits/s, piecewise constant between events
    finish: Optional[float] = None
    reroutes: int = 0
    stalled_time: float = 0.0
    #: Node sequence of the last real path held (survives stall windows, so
    #: resuming on the same path after a repair is not counted as a reroute).
    last_nodes: Optional[tuple[str, ...]] = None
    #: Arrival sequence number; the engine orders allocation inputs by it.
    seq: int = 0
    #: Simulated time ``remaining_bits`` was last materialised at.
    updated_at: float = 0.0
    #: Generation counter for projected-finish heap entries: bumped on
    #: every rate change, so stale heap entries identify themselves.
    gen: int = 0
    #: Path as dense engine-interned segment ids (mirrors ``segments``).
    #: The vectorized backend's :class:`~repro.simulation.columnar.FlowTable`
    #: packs exactly these ids into its segment matrix; ``rate`` is
    #: likewise mirrored by the table's ``installed`` column, updated in
    #: the same reallocation step that settles this state.
    ipath: tuple[int, ...] = ()
    _stall_began: Optional[float] = None

    def assign_path(
        self, path: Optional[Path], segments: tuple[DirectedSegment, ...]
    ) -> None:
        self.path = path
        self.segments = segments if path is not None else ()
        if path is not None:
            self.last_nodes = path.nodes

    def settle(self, now: float) -> None:
        """Materialise ``remaining_bits`` at ``now`` under the current rate."""
        if self.rate > 0.0 and now > self.updated_at:
            self.remaining_bits = max(
                0.0, self.remaining_bits - self.rate * (now - self.updated_at)
            )
        self.updated_at = now

    def begin_stall(self, now: float) -> None:
        if self.phase is FlowPhase.ACTIVE:
            self.settle(now)
            self.phase = FlowPhase.STALLED
            self._stall_began = now
            self.rate = 0.0
            self.gen += 1

    def end_stall(self, now: float) -> None:
        if self.phase is FlowPhase.STALLED:
            if self._stall_began is not None:
                self.stalled_time += now - self._stall_began
                self._stall_began = None
            self.phase = FlowPhase.ACTIVE

    def complete(self, now: float) -> None:
        self.phase = FlowPhase.DONE
        self.finish = now
        self.rate = 0.0
        self.remaining_bits = 0.0
        self.updated_at = now
        self.gen += 1

    @property
    def hops(self) -> Optional[int]:
        return self.path.hops if self.path is not None else None
