"""Structure-of-arrays core for the vectorized fluid-engine backend.

The incremental backend (PR 4) removed the per-event sweeps but still
pays Python prices per flow: every reallocation builds ``(key, path)``
pair lists, walks a heap, and boxes every rate.  At warehouse scale
(k=32/48 fat-trees, hundreds of concurrent flows per event) those
constants dominate.  This module keeps the *allocation problem itself*
resident as numpy arrays between events:

``FlowTable``
    The persistent problem: one row per allocatable flow, in arrival
    (``seq``) order.  Paths live in a single ``(rows, width)`` int64
    matrix padded with a sentinel segment id; parallel arrays carry the
    flow ids and the engine's installed-rate mirror.  Events patch the
    table — arrivals append, completions mask rows out, topology
    changes rebuild — instead of reconstructing it.

``waterfill``
    Batched ripe-pass progressive filling over the padded matrix
    (see :mod:`repro.simulation.fairshare` for the pass semantics).
    Per pass everything is whole-array work: shares divide in one shot,
    per-flow levels come from exact column-wise ``np.minimum``
    reductions, tight/ripe tests are elementwise compares plus
    ``np.bincount`` aggregations, and frozen rows are compacted away.
    ``np.bincount`` accumulates sequentially in input (row-major =
    ascending flow) order, which is what makes the per-segment delta
    sums bit-identical to the scalar solver's accumulation loop.

The padding sentinel is row ``num_segments``: its remaining capacity is
``inf`` so it never produces the minimum share, it is never tight, and
its count slot is clamped to 0.5 — a value no integer tight-count can
equal — so it can never look ripe.  Dead segments (count zero) get the
same 0.5 clamp; their shares are garbage but provably never gathered,
because a segment appears in an alive row only while its count is
positive.

Everything here is deliberately loop-free over flows; the PERF002 lint
rule (:mod:`repro.checks.rules.perf`) keeps per-element Python ``for``
loops out of this module except in the sanctioned patch helpers, where
a handful of path ids per event is cheaper to walk than to vectorize.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .kernels import kernel

__all__ = ["ColumnarWorkspace", "FlowTable", "waterfill", "pack_paths"]

_INF = float("inf")

#: Count clamp for dead/sentinel segment slots: positive (so shares
#: never divide by zero) yet equal to no integer tight-count (so such
#: slots never test ripe).
_DEAD_COUNT = 0.5

#: Compact the problem to its used segments when the fabric's segment
#: universe exceeds this multiple of the matrix entry count.  Per-pass
#: work then scales with the problem, not the fabric — the difference
#: between k=6 (where the matrix touches most of the ~1.3k segments)
#: and k=32 (where ~1.5k entries sit in a ~50k-segment universe).
_COMPACT_FACTOR = 4


class ColumnarWorkspace:
    """Reusable per-engine scratch for :func:`waterfill`.

    Holds the per-segment remaining/count/share vectors (one slot per
    segment plus the padding sentinel).  Between calls the contents are
    stale; :func:`waterfill` overwrites them before reading.
    """

    def __init__(self, num_segments: int) -> None:
        self.num_segments = num_segments
        size = num_segments + 1
        # Three independent buffers, deliberately *not* views of one
        # fused block: the water-fill kernel's separability argument
        # (and the NUM003 aliasing rule that polices it) requires that
        # an in-place write to one vector can never be observed through
        # a read of another.
        self.remaining = np.empty(size, dtype=np.float64)
        self.counts = np.empty(size, dtype=np.float64)
        self.share = np.empty(size, dtype=np.float64)


def pack_paths(
    paths: Sequence[tuple[int, ...]], num_segments: int, width: int | None = None
) -> np.ndarray:
    """Pack integer paths into a sentinel-padded ``(rows, width)`` matrix.

    ``width`` defaults to the longest path; the sentinel id is
    ``num_segments``.  Raises ``ValueError`` on an empty path — an
    all-sentinel row would have an infinite level and never freeze.
    """
    if width is None:
        width = max((len(p) for p in paths), default=1)
    packed = np.full((len(paths), width), num_segments, dtype=np.int64)
    for row, path in enumerate(paths):
        if not path:
            raise ValueError(f"row {row} has an empty path")
        packed[row, : len(path)] = path
    return packed


def waterfill(
    seg_matrix: np.ndarray,
    capacities: np.ndarray,
    workspace: ColumnarWorkspace | None = None,
    incidence: np.ndarray | None = None,
) -> np.ndarray:
    """Max-min rates for the padded path matrix, one batched pass at a time.

    Args:
        seg_matrix: ``(rows, width)`` int64 matrix of segment ids per
            flow, right-padded with the sentinel id
            ``len(capacities)``; row order fixes the accumulation
            order and therefore the exact floats.
        capacities: float64 capacity per real segment.
        workspace: optional reusable scratch (one per engine).
        incidence: optional precomputed
            ``np.bincount(seg_matrix.ravel(), minlength=len(capacities)+1)``
            — the :class:`FlowTable` maintains it incrementally so the
            hot path skips the full recount.

    Returns:
        float64 rates, one per row, bit-identical to
        :func:`repro.simulation.fairshare.allocate_dense` on the same
        problem (property-tested in
        ``tests/test_fairshare_properties.py``).
    """
    rows, width = seg_matrix.shape
    num_segments = capacities.shape[0]
    if incidence is None:
        incidence = np.bincount(seg_matrix.ravel(), minlength=num_segments + 1)
    if rows and num_segments > _COMPACT_FACTOR * rows * width:
        # Sparse problem in a huge fabric: remap to dense local ids so
        # every per-pass array is problem-sized.  Bit-identical to the
        # full-universe solve — unused segments never interact with any
        # flow, and np.unique's ascending order preserves the sentinel
        # convention (the padding id is the largest, so it stays last).
        used, inverse = np.unique(seg_matrix.ravel(), return_inverse=True)
        seg_matrix = inverse.reshape(rows, width)
        if used[-1] == num_segments:  # padding sentinel present
            num_segments = used.shape[0] - 1
            capacities = capacities[used[:-1]]
            incidence = incidence[used]
        else:
            num_segments = used.shape[0]
            capacities = capacities[used]
            incidence = np.append(incidence[used], 0)
        workspace = None  # local scratch sized to the compact problem
    ws = workspace if workspace is not None else ColumnarWorkspace(num_segments)
    remaining = ws.remaining
    counts = ws.counts
    remaining[:num_segments] = capacities
    remaining[num_segments] = _INF
    np.copyto(counts, incidence)
    np.maximum(counts, _DEAD_COUNT, out=counts)

    rates = np.empty(rows, dtype=np.float64)
    _waterfill_passes(seg_matrix, remaining, counts, ws.share, rates)
    return rates


@kernel(
    arrays={
        "seg_matrix": ("int64", ("rows", "width")),
        "remaining": ("float64", ("segments+1",)),
        "counts": ("float64", ("segments+1",)),
        "share": ("float64", ("segments+1",)),
        "rates": ("float64", ("rows",)),
    },
)
def _waterfill_passes(
    seg_matrix: np.ndarray,
    remaining: np.ndarray,
    counts: np.ndarray,
    share: np.ndarray,
    rates: np.ndarray,
) -> None:
    """The ripe-pass loop over plain arrays — the JIT-candidate kernel.

    ``remaining``/``counts`` arrive initialised (sentinel slot last,
    dead counts already clamped); ``share`` is scratch and ``rates`` is
    filled in place, one slot per row.  Everything object-shaped —
    workspace management, compaction, incidence bookkeeping — stays in
    :func:`waterfill`; this function touches nothing but the arrays it
    is handed, which is what the ``@kernel`` contract (checked by
    NUM001–NUM004, :mod:`repro.checks.numeric`) demands of a
    ``nopython`` candidate.
    """
    rows, width = seg_matrix.shape
    num_segments = remaining.shape[0] - 1
    alive = seg_matrix
    alive_rows = np.arange(rows, dtype=np.int64)
    while alive_rows.shape[0]:
        np.divide(remaining, counts, out=share)
        shares = share[alive]
        # Column-by-column unrolls: IEEE-754 min and logical-or are
        # exact and order-free, and ``width`` in-place ufunc calls on
        # contiguous 1-D slices beat numpy's slow small-axis reductions.
        level = _column_min(shares)
        tight = shares == level[:, None]
        tight_count = np.bincount(alive[tight], minlength=num_segments + 1)
        newly = tight & (tight_count == counts)[alive]
        frozen = _column_any(newly)
        frozen_levels = level[frozen]
        if not frozen_levels.shape[0]:  # pragma: no cover - min seg is always ripe
            raise RuntimeError("progressive filling stalled")
        # Row-major ravel keeps ascending flow order, so bincount's
        # sequential accumulation matches the scalar delta loop exactly.
        frozen_segs = alive[frozen].ravel()
        remaining -= np.bincount(
            frozen_segs,
            weights=np.repeat(frozen_levels, width),
            minlength=num_segments + 1,
        )
        counts -= np.bincount(frozen_segs, minlength=num_segments + 1)
        # End-of-pass clamps: remaining floors at 0.0 (float residue),
        # counts at the dead marker.
        np.maximum(remaining, 0.0, out=remaining)
        np.maximum(counts, _DEAD_COUNT, out=counts)
        rates[alive_rows[frozen]] = frozen_levels
        keep = ~frozen
        alive = alive[keep]
        alive_rows = alive_rows[keep]


@kernel(
    arrays={"matrix": ("float64", ("rows", "width"))},
    returns=("float64", ("rows",)),
)
def _column_min(matrix: np.ndarray) -> np.ndarray:
    """Column-unrolled row minimum: exact and order-free under IEEE-754.

    ``width - 1`` in-place ufunc calls, each writing a contiguous 1-D
    accumulator — measurably faster in situ than pairwise halving trees
    (which allocate strided intermediates) and than numpy's small-axis
    ``.reduce``.  The loop is over *columns* (path width, ≤ a handful),
    never over flows, so it stays within the module's loop-free rule.
    """
    out = matrix[:, 0].copy()
    for column in range(1, matrix.shape[1]):
        np.minimum(out, matrix[:, column], out=out)
    return out


@kernel(
    arrays={"matrix": ("bool", ("rows", "width"))},
    returns=("bool", ("rows",)),
)
def _column_any(matrix: np.ndarray) -> np.ndarray:
    """Column-unrolled row logical-or, same unroll as :func:`_column_min`.

    Specialised per ufunc (rather than taking the ufunc as a parameter)
    so each kernel's call graph is closed over numpy and other kernels —
    a call through a function-valued argument is exactly the untyped
    dispatch NUM004 exists to keep out of ``nopython`` candidates.
    """
    out = matrix[:, 0].copy()
    for column in range(1, matrix.shape[1]):
        np.logical_or(out, matrix[:, column], out=out)
    return out


class FlowTable:
    """The persistent columnar allocation problem, patched per event.

    Rows are allocatable flows in ascending arrival (``seq``) order —
    the order :func:`waterfill` and the scalar solver both treat as
    canonical.  Arrivals append (their ``seq`` is always the largest so
    far), completions compact rows out, and anything messier — a
    topology change re-pathing or stalling arbitrary flows — goes
    through :meth:`rebuild`.  ``installed`` mirrors the engine's
    per-flow installed rate so the caller can extract exactly the rows
    whose rate changed and leave every other flow untouched.
    """

    def __init__(self, num_segments: int, width: int = 6) -> None:
        self.num_segments = num_segments
        self.width = max(1, width)
        self.size = 0
        capacity = 64
        self.segments = np.full(
            (capacity, self.width), num_segments, dtype=np.int64
        )
        self.flow_ids = np.empty(capacity, dtype=np.int64)
        self.installed = np.zeros(capacity, dtype=np.float64)
        #: Incidence counts per segment id (sentinel slot last), kept in
        #: lock-step with the matrix so waterfill never recounts.
        self.incidence = np.zeros(num_segments + 1, dtype=np.int64)
        self._members: set[int] = set()

    # ------------------------------------------------------------------

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._members

    def __len__(self) -> int:
        return self.size

    @property
    def seg_matrix(self) -> np.ndarray:
        return self.segments[: self.size]

    @property
    def rates_view(self) -> np.ndarray:
        return self.installed[: self.size]

    # ------------------------------------------------------------------

    def _reserve(self, rows: int) -> None:
        capacity = self.segments.shape[0]
        if rows <= capacity:
            return
        while capacity < rows:
            capacity *= 2
        grown = np.full(
            (capacity, self.width), self.num_segments, dtype=np.int64
        )
        grown[: self.size] = self.segments[: self.size]
        self.segments = grown
        self.flow_ids = np.resize(self.flow_ids, capacity)
        installed = np.zeros(capacity, dtype=np.float64)
        installed[: self.size] = self.installed[: self.size]
        self.installed = installed

    def _widen(self, width: int) -> None:
        """Grow the path matrix for a longer-than-ever path; existing
        rows gain sentinel padding (which the solver ignores)."""
        if width <= self.width:
            return
        wider = np.full(
            (self.segments.shape[0], width), self.num_segments, dtype=np.int64
        )
        wider[:, : self.width] = self.segments
        self.incidence[self.num_segments] += self.size * (width - self.width)
        self.segments = wider
        self.width = width

    def append(self, flow_id: int, path: tuple[int, ...]) -> None:
        """Add one flow at the end; its ``seq`` must exceed every
        resident row's (arrivals always satisfy this).  The installed
        rate starts at 0.0, matching a freshly admitted flow."""
        if not path:
            raise ValueError(f"flow {flow_id} has an empty path")
        self._widen(len(path))
        self._reserve(self.size + 1)
        row = self.size
        seg_row = self.segments[row]
        seg_row[: len(path)] = path
        seg_row[len(path) :] = self.num_segments
        self.flow_ids[row] = flow_id
        self.installed[row] = 0.0
        incidence = self.incidence
        for seg in path:  # a handful of ids; cheaper than np.add.at
            incidence[seg] += 1
        incidence[self.num_segments] += self.width - len(path)
        self._members.add(flow_id)
        self.size = row + 1

    def discard(self, flow_ids: Sequence[int]) -> None:
        """Drop the given flows (completions), preserving row order."""
        gone = [fid for fid in flow_ids if fid in self._members]
        if not gone:
            return
        resident = self.flow_ids[: self.size]
        if len(gone) == 1:
            # Hot path: one completion per event.  A scalar compare
            # beats np.isin, and the removed row's handful of segment
            # ids is cheaper to walk than to bincount (sanctioned
            # per-event patch helper, see module docstring).
            keep = resident != gone[0]
            row = int(keep.argmin())
            incidence = self.incidence
            for seg in self.segments[row].tolist():
                incidence[seg] -= 1
        else:
            keep = ~np.isin(resident, np.asarray(gone, dtype=np.int64))
            removed = self.segments[: self.size][~keep]
            self.incidence -= np.bincount(
                removed.ravel(), minlength=self.num_segments + 1
            )
        kept_rows = np.nonzero(keep)[0]
        new_size = kept_rows.shape[0]
        self.segments[:new_size] = self.segments[kept_rows]
        self.flow_ids[:new_size] = resident[kept_rows]
        self.installed[:new_size] = self.installed[: self.size][kept_rows]
        self.size = new_size
        self._members.difference_update(gone)

    def rebuild(
        self, entries: Sequence[tuple[int, tuple[int, ...], float]]
    ) -> None:
        """Reset to ``(flow_id, path, installed_rate)`` rows, already in
        ascending ``seq`` order.  The catch-all for topology events."""
        width = 1
        for _, path, _ in entries:
            if not path:
                raise ValueError("rebuild entry has an empty path")
            if len(path) > width:
                width = len(path)
        self.size = 0
        self._members.clear()
        self._widen(width)
        self._reserve(len(entries))
        segments = self.segments
        sentinel = self.num_segments
        for row, (flow_id, path, rate) in enumerate(entries):
            seg_row = segments[row]
            seg_row[: len(path)] = path
            seg_row[len(path) :] = sentinel
            self.flow_ids[row] = flow_id
            self.installed[row] = rate
            self._members.add(flow_id)
        self.size = len(entries)
        self.incidence = np.bincount(
            self.segments[: self.size].ravel(), minlength=sentinel + 1
        )
