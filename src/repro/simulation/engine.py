"""The fluid (flow-level) network simulator.

Methodology matches the paper's failure study (Section 2.2): coflow
traces are replayed on a topology, flows are pinned to ECMP paths, and
between events every flow progresses at its max-min fair share of the
bottleneck bandwidth.  Failures and repairs are scheduled actions that
mutate the topology; the router policy decides what happens to flows
whose paths die.  The paper "simulates the final states after failures
without the transient dynamics" — the engine supports that directly by
scheduling the failure before the first arrival and never repairing it.

Event processing order at one instant: exogenous events (arrivals,
failures, control actions) fire in schedule order, then flows are
re-pathed if the topology changed, then rates are recomputed once, then
the clock advances to the earlier of the next exogenous event and the
next flow completion.  Completions are *endogenous*: with
piecewise-constant rates they are computed, never scheduled, so no stale
completion events can exist.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..routing.paths import DirectedSegment
from ..routing.router import Router
from ..topology.base import Topology
from .events import EventQueue, SimClock
from .fairshare import max_min_rates
from .flow import CoflowSpec, FlowPhase, FlowSpec, FlowState

__all__ = ["FluidSimulation", "SimulationResult", "FlowRecord", "CoflowRecord"]

#: A flow is done when fewer bits than this remain (≈ one-millionth of a bit).
_COMPLETION_EPS = 1e-6
#: Ignore time deltas smaller than this (simultaneity tolerance).
_TIME_EPS = 1e-12


@dataclass
class FlowRecord:
    """Immutable-ish per-flow outcome exposed in results."""

    spec: FlowSpec
    start: float
    finish: Optional[float]
    initial_hops: Optional[int]
    final_hops: Optional[int]
    reroutes: int
    stalled_time: float

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.finish is None else self.finish - self.start

    @property
    def dilated(self) -> bool:
        """True if the flow ended on a longer path than it started on."""
        return (
            self.initial_hops is not None
            and self.final_hops is not None
            and self.final_hops > self.initial_hops
        )


@dataclass
class CoflowRecord:
    """Per-coflow outcome; CCT is the paper's application-level metric."""

    spec: CoflowSpec
    finish: Optional[float]

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def cct(self) -> Optional[float]:
        """Coflow completion time: lifetime of the most long-lived flow."""
        return None if self.finish is None else self.finish - self.spec.arrival


@dataclass
class SimulationResult:
    """Everything an experiment needs from one run."""

    flows: dict[int, FlowRecord]
    coflows: dict[int, CoflowRecord]
    end_time: float
    horizon: Optional[float]
    events_processed: int
    reallocations: int

    def cct(self, coflow_id: int) -> Optional[float]:
        return self.coflows[coflow_id].cct

    def completed_coflows(self) -> list[CoflowRecord]:
        return [c for c in self.coflows.values() if c.completed]

    def unfinished_coflows(self) -> list[CoflowRecord]:
        return [c for c in self.coflows.values() if not c.completed]

    @property
    def all_completed(self) -> bool:
        return all(c.completed for c in self.coflows.values())


class FluidSimulation:
    """One end-to-end fluid simulation run.

    Args:
        topo: the (mutable) topology; failure actions mutate it in place.
            The engine restores nothing — callers own pre/post state.
        router: path policy (ECMP pinning + rerouting behaviour).
        trace: coflows to replay, in any order (arrivals are scheduled).
        horizon: optional wall-clock cut-off in simulated seconds; flows
            still running then are reported unfinished.
    """

    def __init__(
        self,
        topo: Topology,
        router: Router,
        trace: Sequence[CoflowSpec],
        horizon: Optional[float] = None,
        monitor: Optional[object] = None,
    ) -> None:
        self.topo = topo
        self.router = router
        self.horizon = horizon
        #: Optional :class:`repro.simulation.monitor.SimMonitor`; called
        #: with (now, flow_segments, rates) after every reallocation.
        self.monitor = monitor
        self.clock = SimClock()
        self.queue = EventQueue()
        self.active: dict[int, FlowState] = {}
        self._records: dict[int, FlowRecord] = {}
        self._coflow_records: dict[int, CoflowRecord] = {}
        self._coflow_pending: dict[int, int] = {}
        self._coflow_spec: dict[int, CoflowSpec] = {}
        self._initial_hops: dict[int, Optional[int]] = {}
        self._capacities: dict[DirectedSegment, float] = self._build_capacities()
        self._topology_dirty = False
        self._flows_dirty = False
        self._events_processed = 0
        self._reallocations = 0

        for coflow in sorted(trace, key=lambda c: (c.arrival, c.coflow_id)):
            self._coflow_spec[coflow.coflow_id] = coflow
            self.queue.schedule(
                coflow.arrival,
                lambda c=coflow: self._arrive(c),
                label=f"arrival:{coflow.coflow_id}",
            )

    # ------------------------------------------------------------------
    # scheduling API
    # ------------------------------------------------------------------

    def schedule_action(
        self, time: float, action: Callable[["FluidSimulation"], None], label: str = ""
    ) -> None:
        """Run ``action(self)`` at ``time``; topology mutations inside it
        should go through the fail/restore helpers so re-pathing triggers."""
        self.queue.schedule(time, lambda: action(self), label=label or "action")

    def fail_node_at(self, time: float, name: str) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.fail_node(name)),
            label=f"fail-node:{name}",
        )

    def restore_node_at(self, time: float, name: str) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.restore_node(name)),
            label=f"restore-node:{name}",
        )

    def fail_link_at(self, time: float, link_id: int) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.fail_link(link_id)),
            label=f"fail-link:{link_id}",
        )

    def restore_link_at(self, time: float, link_id: int) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.restore_link(link_id)),
            label=f"restore-link:{link_id}",
        )

    def _mutate(self, mutation: Callable[[], None]) -> None:
        """Apply a topology mutation and mark the run for re-pathing."""
        mutation()
        self._topology_dirty = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        while True:
            now = self.clock.now
            if self.horizon is not None and now >= self.horizon:
                break

            fired = self._fire_due_events(now)
            if fired:
                self._after_events()

            next_completion = self._next_completion_time()
            next_event = self.queue.peek_time()
            candidates = [t for t in (next_completion, next_event) if t is not None]
            if self.horizon is not None:
                candidates = [min(t, self.horizon) for t in candidates] or [
                    self.horizon
                ]
            if not candidates:
                break  # nothing active, nothing scheduled: simulation done
            target = min(candidates)

            if target > now + _TIME_EPS:
                self._advance_flows(target - now)
                self.clock.advance_to(target)
            self._complete_finished()
            if (
                self.horizon is not None
                and not self.queue
                and self.clock.now >= self.horizon
            ):
                break
            if not self.queue and not self.active:
                break

        return self._build_result()

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _fire_due_events(self, now: float) -> int:
        due = self.queue.pop_due(now)
        for event in due:
            event.action()
            self._events_processed += 1
        return len(due)

    def _arrive(self, coflow: CoflowSpec) -> None:
        now = self.clock.now
        self._coflow_pending[coflow.coflow_id] = coflow.width
        for spec in coflow.flows:
            path = self.router.initial_path(spec.src, spec.dst, spec.flow_id)
            state = FlowState(spec=spec, start=now, remaining_bits=spec.size_bits)
            if path is not None:
                state.assign_path(path, path.segments(self.topo, spec.flow_id))
                self._initial_hops[spec.flow_id] = path.hops
                if not path.is_operational(self.topo):
                    state.begin_stall(now)
            else:
                self._initial_hops[spec.flow_id] = None
                state.begin_stall(now)
            self.active[spec.flow_id] = state
        self._flows_dirty = True

    def _after_events(self) -> None:
        if self._topology_dirty:
            self.router.on_topology_change()
            self._repath_flows()
            self._topology_dirty = False
            self._flows_dirty = True
        if self._flows_dirty:
            self._reallocate()
            self._flows_dirty = False

    def _repath_flows(self) -> None:
        """Give every broken or stalled flow a chance at a new path."""
        now = self.clock.now
        # Current load per segment from flows whose paths are intact.
        load: dict[DirectedSegment, int] = {}
        broken: list[FlowState] = []
        for fid in sorted(self.active):
            state = self.active[fid]
            if state.path is not None and state.path.is_operational(self.topo):
                # A repair may have brought a stalled flow's pinned path back.
                state.end_stall(now)
                for seg in state.segments:
                    load[seg] = load.get(seg, 0) + 1
            else:
                broken.append(state)
        for state in broken:
            spec = state.spec
            new_path = self.router.repath(
                spec.src, spec.dst, spec.flow_id, state.path, load
            )
            if new_path is not None and new_path.is_operational(self.topo):
                segments = new_path.segments(self.topo, spec.flow_id)
                if state.last_nodes is not None and new_path.nodes != state.last_nodes:
                    state.reroutes += 1
                state.assign_path(new_path, segments)
                state.end_stall(now)
                for seg in segments:
                    load[seg] = load.get(seg, 0) + 1
            else:
                state.assign_path(None, ())
                state.begin_stall(now)

    # ------------------------------------------------------------------
    # fluid progression
    # ------------------------------------------------------------------

    def _reallocate(self) -> None:
        flow_segments = {
            fid: state.segments
            for fid, state in self.active.items()
            if state.phase is FlowPhase.ACTIVE and state.segments
        }
        rates = max_min_rates(flow_segments, self._capacities)
        for fid, state in self.active.items():
            state.rate = rates.get(fid, 0.0)
        self._reallocations += 1
        if self.monitor is not None:
            self.monitor.on_reallocate(self.clock.now, flow_segments, rates)

    def _next_completion_time(self) -> Optional[float]:
        best: Optional[float] = None
        for state in self.active.values():
            if state.phase is FlowPhase.ACTIVE and state.rate > 0:
                t = self.clock.now + state.remaining_bits / state.rate
                if best is None or t < best:
                    best = t
        return best

    def _advance_flows(self, dt: float) -> None:
        for state in self.active.values():
            if state.phase is FlowPhase.ACTIVE and state.rate > 0:
                state.remaining_bits = max(
                    0.0, state.remaining_bits - state.rate * dt
                )

    def _complete_finished(self) -> None:
        now = self.clock.now
        # A flow is done when its residue is negligible in bits, or when the
        # time to drain it is below the clock's float resolution at `now`
        # (without the latter, a sub-ulp drain time would stall the loop).
        time_floor = 4.0 * math.ulp(max(1.0, now))
        finished = [
            fid
            for fid, state in self.active.items()
            if state.phase is FlowPhase.ACTIVE
            and (
                state.remaining_bits <= _COMPLETION_EPS
                or (state.rate > 0 and state.remaining_bits / state.rate <= time_floor)
            )
        ]
        if not finished:
            return
        for fid in sorted(finished):
            state = self.active.pop(fid)
            state.complete(now)
            self._records[fid] = self._record_of(state)
            coflow_id = state.spec.coflow_id
            self._coflow_pending[coflow_id] -= 1
            if self._coflow_pending[coflow_id] == 0:
                self._coflow_records[coflow_id] = CoflowRecord(
                    spec=self._coflow_spec[coflow_id], finish=now
                )
        self._flows_dirty = True
        self._after_events()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _record_of(self, state: FlowState) -> FlowRecord:
        stalled = state.stalled_time
        if state.phase is FlowPhase.STALLED and state._stall_began is not None:
            stalled += self.clock.now - state._stall_began  # still stalled at cut-off
        return FlowRecord(
            spec=state.spec,
            start=state.start,
            finish=state.finish,
            initial_hops=self._initial_hops.get(state.spec.flow_id),
            final_hops=state.hops if state.path is not None else None,
            reroutes=state.reroutes,
            stalled_time=stalled,
        )

    def _build_result(self) -> SimulationResult:
        flows = dict(self._records)
        for fid, state in self.active.items():  # unfinished at horizon
            flows[fid] = self._record_of(state)
        coflows = dict(self._coflow_records)
        for cid, spec in self._coflow_spec.items():
            if cid not in coflows:
                coflows[cid] = CoflowRecord(spec=spec, finish=None)
        return SimulationResult(
            flows=flows,
            coflows=coflows,
            end_time=self.clock.now,
            horizon=self.horizon,
            events_processed=self._events_processed,
            reallocations=self._reallocations,
        )

    def _build_capacities(self) -> dict[DirectedSegment, float]:
        caps: dict[DirectedSegment, float] = {}
        for link in self.topo.links.values():
            caps[DirectedSegment(link.link_id, True)] = link.capacity
            caps[DirectedSegment(link.link_id, False)] = link.capacity
        return caps
