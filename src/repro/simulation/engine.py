"""The fluid (flow-level) network simulator.

Methodology matches the paper's failure study (Section 2.2): coflow
traces are replayed on a topology, flows are pinned to ECMP paths, and
between events every flow progresses at its max-min fair share of the
bottleneck bandwidth.  Failures and repairs are scheduled actions that
mutate the topology; the router policy decides what happens to flows
whose paths die.  The paper "simulates the final states after failures
without the transient dynamics" — the engine supports that directly by
scheduling the failure before the first arrival and never repairing it.

Event processing order at one instant: exogenous events (arrivals,
failures, control actions) fire in schedule order, then flows are
re-pathed if the topology changed, then rates are recomputed once, then
the clock advances to the earlier of the next exogenous event and the
next flow completion.  Completions are *endogenous*: with
piecewise-constant rates they are computed, never scheduled, so no stale
completion events can exist.

Hot-path design (see ``docs/simulator.md`` for the full story): the
engine is *incremental*.  Segments are interned to dense integer ids
once at construction; a persistent flow↔segment conflict graph
(:class:`~repro.simulation.conflict.ConflictGraph`) tracks which flows
share bandwidth; each event re-solves max-min rates only for the
connected components containing changed flows, copying every other
flow's rate forward untouched.  Completions come off a lazy
projected-finish min-heap, and per-flow ``(updated_at, remaining_bits)``
bookkeeping means a flow's residual is only materialised when its rate
changes — there is no per-event sweep over the active set.  The
from-scratch solver is retained as the *oracle* (``allocator="oracle"``)
and the two modes produce bit-identical results, which the test suite
enforces.  :data:`ENGINE_REV` names the revision of this machinery; the
sweep-result cache folds it into every key so cached numbers can never
outlive the allocator that produced them.

A third backend (``allocator="vectorized"``) keeps the allocation
problem resident as numpy arrays (:mod:`repro.simulation.columnar`):
arrivals append rows, completions compact them out, topology changes
rebuild, and every reallocation is one batched water-fill over the
whole padded path matrix.  The solve is bit-identical to the scalar
solver by construction (shared ripe-pass semantics), and only flows
whose rate actually changed are touched, so records and monitor
streams match the other two backends to the last bit — the three-way
A/B harness in ``tests/test_engine_incremental.py`` enforces it.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..routing.paths import DirectedSegment
from ..routing.router import Router
from ..topology.base import Topology
from .conflict import ConflictGraph
from .events import EventQueue, SimClock
from .fairshare import AllocatorWorkspace, FairShareError, allocate_dense
from .flow import CoflowSpec, FlowPhase, FlowSpec, FlowState

__all__ = [
    "ENGINE_REV",
    "DEFAULT_ALLOCATOR",
    "FluidSimulation",
    "SimulationResult",
    "FlowRecord",
    "CoflowRecord",
]

#: Revision of the engine/allocator implementation.  Bump whenever the
#: (trace → results) map can change — the runner's content-addressed
#: cache folds this into every key (see :mod:`repro.runner.cache`).
ENGINE_REV = 3

#: Allocator mode used when :class:`FluidSimulation` is not told one.
#: "incremental" re-solves only dirty conflict components; "oracle" is
#: the from-scratch reference; "vectorized" solves the full problem as
#: one batched numpy water-fill over a persistent columnar flow table.
#: All three are bit-identical by construction.
DEFAULT_ALLOCATOR = "incremental"

_ALLOCATORS = ("incremental", "oracle", "vectorized")

#: A flow is done when fewer bits than this remain (≈ one-millionth of a bit).
_COMPLETION_EPS = 1e-6
#: Ignore time deltas smaller than this (simultaneity tolerance).
_TIME_EPS = 1e-12


@dataclass
class FlowRecord:
    """Immutable-ish per-flow outcome exposed in results."""

    spec: FlowSpec
    start: float
    finish: Optional[float]
    initial_hops: Optional[int]
    final_hops: Optional[int]
    reroutes: int
    stalled_time: float

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.finish is None else self.finish - self.start

    @property
    def dilated(self) -> bool:
        """True if the flow ended on a longer path than it started on."""
        return (
            self.initial_hops is not None
            and self.final_hops is not None
            and self.final_hops > self.initial_hops
        )


@dataclass
class CoflowRecord:
    """Per-coflow outcome; CCT is the paper's application-level metric."""

    spec: CoflowSpec
    finish: Optional[float]

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def cct(self) -> Optional[float]:
        """Coflow completion time: lifetime of the most long-lived flow."""
        return None if self.finish is None else self.finish - self.spec.arrival


@dataclass
class SimulationResult:
    """Everything an experiment needs from one run."""

    flows: dict[int, FlowRecord]
    coflows: dict[int, CoflowRecord]
    end_time: float
    horizon: Optional[float]
    events_processed: int
    reallocations: int

    def cct(self, coflow_id: int) -> Optional[float]:
        return self.coflows[coflow_id].cct

    def completed_coflows(self) -> list[CoflowRecord]:
        return [c for c in self.coflows.values() if c.completed]

    def unfinished_coflows(self) -> list[CoflowRecord]:
        return [c for c in self.coflows.values() if not c.completed]

    @property
    def all_completed(self) -> bool:
        return all(c.completed for c in self.coflows.values())


class FluidSimulation:
    """One end-to-end fluid simulation run.

    Args:
        topo: the (mutable) topology; failure actions mutate it in place.
            The engine restores nothing — callers own pre/post state.
        router: path policy (ECMP pinning + rerouting behaviour).
        trace: coflows to replay, in any order (arrivals are scheduled).
        horizon: optional wall-clock cut-off in simulated seconds; flows
            still running then are reported unfinished.
        allocator: "incremental" (default, via :data:`DEFAULT_ALLOCATOR`)
            re-solves only the conflict-graph components an event
            touched; "oracle" recomputes the full allocation from
            scratch; "vectorized" batch-solves a persistent columnar
            flow table with numpy.  Results are bit-identical in all
            three modes.
    """

    def __init__(
        self,
        topo: Topology,
        router: Router,
        trace: Sequence[CoflowSpec],
        horizon: Optional[float] = None,
        monitor: Optional[object] = None,
        allocator: Optional[str] = None,
    ) -> None:
        self.topo = topo
        self.router = router
        self.horizon = horizon
        #: Optional :class:`repro.simulation.monitor.SimMonitor`; called
        #: with (now, flow_segments, rates) after every reallocation.
        self.monitor = monitor
        self.allocator = DEFAULT_ALLOCATOR if allocator is None else allocator
        if self.allocator not in _ALLOCATORS:
            raise ValueError(
                f"unknown allocator {self.allocator!r}; expected one of "
                f"{_ALLOCATORS}"
            )
        self.clock = SimClock()
        self.queue = EventQueue()
        self.active: dict[int, FlowState] = {}
        self._records: dict[int, FlowRecord] = {}
        self._coflow_records: dict[int, CoflowRecord] = {}
        self._coflow_pending: dict[int, int] = {}
        self._coflow_spec: dict[int, CoflowSpec] = {}
        self._initial_hops: dict[int, Optional[int]] = {}
        self._capacities: dict[DirectedSegment, float] = self._build_capacities()
        # Static interning: every directed segment the topology can ever
        # offer gets a dense id here, so the hot path never hashes a
        # DirectedSegment again.
        self._seg_id: dict[DirectedSegment, int] = {}
        self._caps_dense: list[float] = []
        for seg, cap in self._capacities.items():
            self._seg_id[seg] = len(self._caps_dense)
            self._caps_dense.append(cap)
        self._conflicts = ConflictGraph(len(self._caps_dense))
        self._alloc_ws = AllocatorWorkspace(len(self._caps_dense))
        if self.allocator == "vectorized":
            # Deferred import: the scalar backends never pay numpy's
            # startup cost, and environments without numpy can still
            # run them.
            from . import columnar

            self._columnar = columnar
            self._table = columnar.FlowTable(len(self._caps_dense))
            self._columnar_ws = columnar.ColumnarWorkspace(len(self._caps_dense))
            self._caps_arr = columnar.np.asarray(
                self._caps_dense, dtype=columnar.np.float64
            )
        #: Vectorized mode: the flow table no longer reflects the active
        #: set (paths or stall states changed) and must be rebuilt.
        self._table_stale = True
        #: Flows whose allocation inputs changed since the last solve,
        #: mapped to the segment ids they were registered on at the time
        #: (the seeds for the affected-component search).
        self._dirty: dict[int, tuple[int, ...]] = {}
        #: Lazy projected-finish min-heap of (finish_time, flow_id, gen);
        #: entries whose gen no longer matches the flow's are stale.
        self._finish_heap: list[tuple[float, int, int]] = []
        self._next_seq = 0
        self._topology_dirty = False
        self._flows_dirty = False
        self._events_processed = 0
        self._reallocations = 0

        for coflow in sorted(trace, key=lambda c: (c.arrival, c.coflow_id)):
            self._coflow_spec[coflow.coflow_id] = coflow
            self.queue.schedule(
                coflow.arrival,
                lambda c=coflow: self._arrive(c),
                label=f"arrival:{coflow.coflow_id}",
            )

    # ------------------------------------------------------------------
    # scheduling API
    # ------------------------------------------------------------------

    def schedule_action(
        self, time: float, action: Callable[["FluidSimulation"], None], label: str = ""
    ) -> None:
        """Run ``action(self)`` at ``time``; topology mutations inside it
        should go through the fail/restore helpers so re-pathing triggers."""
        self.queue.schedule(time, lambda: action(self), label=label or "action")

    def fail_node_at(self, time: float, name: str) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.fail_node(name)),
            label=f"fail-node:{name}",
        )

    def restore_node_at(self, time: float, name: str) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.restore_node(name)),
            label=f"restore-node:{name}",
        )

    def fail_link_at(self, time: float, link_id: int) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.fail_link(link_id)),
            label=f"fail-link:{link_id}",
        )

    def restore_link_at(self, time: float, link_id: int) -> None:
        self.schedule_action(
            time, lambda sim: sim._mutate(lambda: sim.topo.restore_link(link_id)),
            label=f"restore-link:{link_id}",
        )

    def _mutate(self, mutation: Callable[[], None]) -> None:
        """Apply a topology mutation and mark the run for re-pathing."""
        mutation()
        self._topology_dirty = True

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        while True:
            now = self.clock.now
            if self.horizon is not None and now >= self.horizon:
                break

            fired = self._fire_due_events(now)
            if fired:
                self._after_events()

            next_completion = self._next_completion_time()
            next_event = self.queue.peek_time()
            candidates = [t for t in (next_completion, next_event) if t is not None]
            if self.horizon is not None:
                candidates = [min(t, self.horizon) for t in candidates] or [
                    self.horizon
                ]
            if not candidates:
                break  # nothing active, nothing scheduled: simulation done
            target = min(candidates)

            if target > now + _TIME_EPS:
                self.clock.advance_to(target)
            self._complete_finished()
            if (
                self.horizon is not None
                and not self.queue
                and self.clock.now >= self.horizon
            ):
                break
            if not self.queue and not self.active:
                break

        return self._build_result()

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _fire_due_events(self, now: float) -> int:
        due = self.queue.pop_due(now)
        for event in due:
            event.action()
            self._events_processed += 1
        return len(due)

    def _arrive(self, coflow: CoflowSpec) -> None:
        now = self.clock.now
        self._coflow_pending[coflow.coflow_id] = coflow.width
        for spec in coflow.flows:
            path = self.router.initial_path(spec.src, spec.dst, spec.flow_id)
            state = FlowState(
                spec=spec,
                start=now,
                remaining_bits=spec.size_bits,
                seq=self._next_seq,
                updated_at=now,
            )
            self._next_seq += 1
            if path is not None:
                segments = path.segments(self.topo, spec.flow_id)
                state.assign_path(path, segments)
                state.ipath = self._dense_path(segments)
                self._initial_hops[spec.flow_id] = path.hops
                if not path.is_operational(self.topo):
                    state.begin_stall(now)
            else:
                self._initial_hops[spec.flow_id] = None
                state.begin_stall(now)
            self.active[spec.flow_id] = state
            self._mark_dirty(spec.flow_id)
        self._flows_dirty = True

    def _after_events(self) -> None:
        if self._topology_dirty:
            self.router.on_topology_change()
            self._repath_flows()
            self._topology_dirty = False
            self._flows_dirty = True
        if self._flows_dirty:
            self._reallocate()
            self._flows_dirty = False

    def _repath_flows(self) -> None:
        """Give every broken or stalled flow a chance at a new path.

        Full sweep by design: a topology change can strand *any* flow,
        so this is a sanctioned O(active) site (PERF001) — it runs only
        on topology changes, never on the per-event hot path.
        """
        self._table_stale = True
        now = self.clock.now
        # Current load per segment from flows whose paths are intact.
        load: dict[DirectedSegment, int] = {}
        broken: list[FlowState] = []
        for fid in sorted(self.active):
            state = self.active[fid]
            if state.path is not None and state.path.is_operational(self.topo):
                if state.phase is FlowPhase.STALLED:
                    # A repair brought the stalled flow's pinned path back.
                    state.end_stall(now)
                    self._mark_dirty(fid)
                for seg in state.segments:
                    load[seg] = load.get(seg, 0) + 1
            else:
                broken.append(state)
        for state in broken:
            spec = state.spec
            self._mark_dirty(spec.flow_id)
            new_path = self.router.repath(
                spec.src, spec.dst, spec.flow_id, state.path, load
            )
            if new_path is not None and new_path.is_operational(self.topo):
                segments = new_path.segments(self.topo, spec.flow_id)
                if state.last_nodes is not None and new_path.nodes != state.last_nodes:
                    state.reroutes += 1
                state.assign_path(new_path, segments)
                state.ipath = self._dense_path(segments)
                state.end_stall(now)
                for seg in segments:
                    load[seg] = load.get(seg, 0) + 1
            else:
                state.assign_path(None, ())
                state.ipath = ()
                state.begin_stall(now)

    # ------------------------------------------------------------------
    # fluid progression
    # ------------------------------------------------------------------

    def _mark_dirty(self, fid: int) -> None:
        """Record that ``fid``'s allocation inputs changed, remembering
        the segments it was registered on (old *and* new placements seed
        the affected-component search)."""
        if fid not in self._dirty:
            self._dirty[fid] = self._conflicts.segments_of(fid)

    def _dense_path(self, segments: tuple[DirectedSegment, ...]) -> tuple[int, ...]:
        seg_id = self._seg_id
        try:
            return tuple(seg_id[s] for s in segments)
        except KeyError as exc:
            raise FairShareError(
                f"segment {exc.args[0]!r} has no capacity entry"
            ) from None

    def _reallocate(self) -> None:
        if self.allocator == "oracle":
            self._reallocate_oracle()
        elif self.allocator == "vectorized":
            self._reallocate_vectorized()
        else:
            self._reallocate_incremental()
        self._reallocations += 1
        if self.monitor is not None:
            self._notify_monitor()

    def _reallocate_oracle(self) -> None:
        """From-scratch reference: rebuild the whole allocation problem.

        Sanctioned O(active) site (PERF001) — being a full sweep is the
        point of the oracle.
        """
        now = self.clock.now
        self._dirty.clear()
        pairs = [
            (fid, state.ipath)
            for fid, state in self.active.items()
            if state.phase is FlowPhase.ACTIVE and state.ipath
        ]
        rates = allocate_dense(pairs, self._caps_dense, self._alloc_ws)
        for fid, state in self.active.items():
            self._apply_rate(state, rates.get(fid, 0.0), now)

    def _reallocate_incremental(self) -> None:
        """Re-solve only the conflict components containing dirty flows.

        Untouched components keep their rates verbatim — progressive
        filling is separable across components and the dense solver is
        deterministic, so skipping them is bit-exact (the A/B tests in
        ``tests/test_engine_incremental.py`` hold this to ``==``).
        """
        now = self.clock.now
        seeds: list[int] = []
        for fid, old_segs in self._dirty.items():
            state = self.active.get(fid)
            if state is not None and state.phase is FlowPhase.ACTIVE and state.ipath:
                self._conflicts.place(fid, state.ipath)
                seeds.extend(state.ipath)
            else:
                self._conflicts.remove(fid)
            seeds.extend(old_segs)
        self._dirty.clear()
        active = self.active
        for comp in self._conflicts.affected_components(seeds):
            comp.sort(key=lambda fid: active[fid].seq)
            pairs = [(fid, active[fid].ipath) for fid in comp]
            rates = allocate_dense(
                pairs, self._caps_dense, self._alloc_ws, assume_connected=True
            )
            for fid in comp:
                self._apply_rate(active[fid], rates[fid], now)

    def _reallocate_vectorized(self) -> None:
        """Batch-solve the persistent columnar flow table.

        Outside topology changes the table is patched in place: dirty
        flows are only ever completions (rows compacted out) or
        arrivals (rows appended in ``seq`` order) — paths and stall
        states change *only* inside :meth:`_repath_flows`, which sets
        ``_table_stale`` to force a rebuild.  The whole problem is then
        re-solved in one batched water-fill; untouched flows re-solve
        to the same bits (the kernel is deterministic and separable),
        so filtering on ``rates != installed`` applies exactly the same
        rate changes, at the same instants, as the other backends.
        """
        now = self.clock.now
        table = self._table
        if self._table_stale:
            self._rebuild_table()
        elif self._dirty:
            active = self.active
            gone: list[int] = []
            added: list[tuple[int, int, tuple[int, ...]]] = []
            for fid in self._dirty:
                state = active.get(fid)
                if (
                    state is not None
                    and state.phase is FlowPhase.ACTIVE
                    and state.ipath
                ):
                    if fid not in table:
                        added.append((state.seq, fid, state.ipath))
                elif fid in table:
                    gone.append(fid)
            self._dirty.clear()
            if gone:
                table.discard(gone)
            added.sort()
            for _, fid, path in added:
                table.append(fid, path)
        if not len(table):
            return
        np = self._columnar.np
        rates = self._columnar.waterfill(
            table.seg_matrix, self._caps_arr, self._columnar_ws, table.incidence
        )
        installed = table.rates_view
        changed = np.nonzero(rates != installed)[0]
        if changed.shape[0]:
            active = self.active
            heap = self._finish_heap
            push = heapq.heappush
            # Inlined _apply_rate body: the mirror guarantees rate !=
            # state.rate for every changed row, and .tolist()
            # round-trips float64 → Python float exactly, so this is
            # the same arithmetic minus per-flow dispatch.
            for fid, rate in zip(
                table.flow_ids[changed].tolist(), rates[changed].tolist()
            ):
                state = active[fid]
                state.settle(now)
                state.rate = rate
                gen = state.gen + 1
                state.gen = gen
                if rate > 0.0:
                    push(heap, (now + state.remaining_bits / rate, fid, gen))
            installed[changed] = rates[changed]

    def _rebuild_table(self) -> None:
        """Reconstruct the columnar table after a topology change.

        Sanctioned O(active) site (PERF001): rebuilds fire on the same
        trigger (re-pathing) as the ``_repath_flows`` sweep itself, never
        on the per-event hot path.
        """
        self._table_stale = False
        self._dirty.clear()
        active = self.active
        entries = [
            (fid, state.ipath, state.rate)
            for fid, state in active.items()
            if state.phase is FlowPhase.ACTIVE and state.ipath
        ]
        entries.sort(key=lambda e: active[e[0]].seq)
        self._table.rebuild(entries)

    def _apply_rate(self, state: FlowState, rate: float, now: float) -> None:
        """Install a new rate iff it differs bit-for-bit from the old one,
        settling the flow's residual first so the piecewise-constant
        integral stays exact.  The *iff* matters: both allocator modes
        then settle the same flows at the same instants, which keeps
        their floating-point trajectories identical."""
        if rate != state.rate:
            state.settle(now)
            state.rate = rate
            state.gen += 1
            if rate > 0.0:
                heapq.heappush(
                    self._finish_heap,
                    (now + state.remaining_bits / rate, state.spec.flow_id, state.gen),
                )

    def _notify_monitor(self) -> None:
        """Monitors always see the *full* rate map (monitor contract),
        regardless of which components the allocator re-solved.

        Sanctioned O(active) site (PERF001): only runs when a monitor is
        attached, and instrumentation wants the global view.
        """
        flow_segments = {
            fid: state.segments
            for fid, state in self.active.items()
            if state.phase is FlowPhase.ACTIVE and state.segments
        }
        rates = {fid: self.active[fid].rate for fid in flow_segments}
        self.monitor.on_reallocate(self.clock.now, flow_segments, rates)

    def _next_completion_time(self) -> Optional[float]:
        """Peek the projected-finish heap, discarding stale entries
        (superseded generation, stalled or completed flow)."""
        heap = self._finish_heap
        active = self.active
        while heap:
            t, fid, gen = heap[0]
            state = active.get(fid)
            if (
                state is None
                or gen != state.gen
                or state.phase is not FlowPhase.ACTIVE
                or state.rate <= 0.0
            ):
                heapq.heappop(heap)
                continue
            return t
        return None

    def _complete_finished(self) -> None:
        now = self.clock.now
        # A flow is done when its residue is negligible in bits, or when the
        # time to drain it is below the clock's float resolution at `now`
        # (without the latter, a sub-ulp drain time would stall the loop).
        time_floor = 4.0 * math.ulp(max(1.0, now))
        while True:
            finished = self._pop_completion_candidates(now, time_floor)
            if not finished:
                return
            for fid in finished:
                self._mark_dirty(fid)
                state = self.active.pop(fid)
                state.complete(now)
                self._records[fid] = self._record_of(state)
                coflow_id = state.spec.coflow_id
                self._coflow_pending[coflow_id] -= 1
                if self._coflow_pending[coflow_id] == 0:
                    self._coflow_records[coflow_id] = CoflowRecord(
                        spec=self._coflow_spec[coflow_id], finish=now
                    )
            # Freed bandwidth can push more flows over the line at this
            # same instant; drain iteratively until stable instead of
            # recursing — completion cascades on large traces must not
            # be bounded by the interpreter's recursion limit.
            self._reallocate()

    def _pop_completion_candidates(
        self, now: float, time_floor: float
    ) -> list[int]:
        """Pop every flow whose projected finish lands at ``now``, settle
        it, and return (sorted) the ones that really are done; the rest
        are re-queued with a freshened projection."""
        heap = self._finish_heap
        active = self.active
        finished: list[int] = []
        repush: list[tuple[float, int, int]] = []
        while heap:
            t, fid, gen = heap[0]
            state = active.get(fid)
            if (
                state is None
                or gen != state.gen
                or state.phase is not FlowPhase.ACTIVE
                or state.rate <= 0.0
            ):
                heapq.heappop(heap)
                continue
            if t > now + time_floor and t > now + _COMPLETION_EPS / state.rate:
                break
            heapq.heappop(heap)
            state.settle(now)
            if (
                state.remaining_bits <= _COMPLETION_EPS
                or state.remaining_bits / state.rate <= time_floor
            ):
                finished.append(fid)
            else:
                repush.append(
                    (now + state.remaining_bits / state.rate, fid, state.gen)
                )
        for entry in repush:
            heapq.heappush(heap, entry)
        finished.sort()
        return finished

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _record_of(self, state: FlowState) -> FlowRecord:
        stalled = state.stalled_time
        if state.phase is FlowPhase.STALLED and state._stall_began is not None:
            stalled += self.clock.now - state._stall_began  # still stalled at cut-off
        return FlowRecord(
            spec=state.spec,
            start=state.start,
            finish=state.finish,
            initial_hops=self._initial_hops.get(state.spec.flow_id),
            final_hops=state.hops if state.path is not None else None,
            reroutes=state.reroutes,
            stalled_time=stalled,
        )

    def _build_result(self) -> SimulationResult:
        flows = dict(self._records)
        for fid, state in self.active.items():  # unfinished at horizon
            flows[fid] = self._record_of(state)
        coflows = dict(self._coflow_records)
        for cid, spec in self._coflow_spec.items():
            if cid not in coflows:
                coflows[cid] = CoflowRecord(spec=spec, finish=None)
        return SimulationResult(
            flows=flows,
            coflows=coflows,
            end_time=self.clock.now,
            horizon=self.horizon,
            events_processed=self._events_processed,
            reallocations=self._reallocations,
        )

    def _build_capacities(self) -> dict[DirectedSegment, float]:
        caps: dict[DirectedSegment, float] = {}
        for link in self.topo.links.values():
            caps[DirectedSegment(link.link_id, True)] = link.capacity
            caps[DirectedSegment(link.link_id, False)] = link.capacity
        return caps
