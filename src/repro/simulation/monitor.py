"""Run-time instrumentation for the fluid simulator.

A monitor receives a callback at every rate reallocation — the only
instants at which the fluid state changes — and can therefore compute
exact time-weighted statistics (utilisation integrals, peak concurrency)
without sampling error.  :class:`UtilizationMonitor` is the standard
implementation; experiments use it to report offered load, bottleneck
hot spots, and concurrency (the quantity that bounds CCT slowdowns under
max-min sharing — see EXPERIMENTS.md's Figure 1(c) discussion).

The callback stream is part of the allocator backends' bit-identity
contract: oracle, incremental, and vectorized engines must hand every
monitor the same ``(now, flow_segments, rates)`` sequence, floats and
all (``tests/test_engine_incremental.py`` captures and compares full
streams three ways).  Monitors can therefore assume their statistics
are backend-independent.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Protocol

from ..routing.paths import DirectedSegment

__all__ = ["SimMonitor", "UtilizationMonitor", "UtilizationReport"]


class SimMonitor(Protocol):
    """What the engine calls after each reallocation."""

    def on_reallocate(
        self,
        now: float,
        flow_segments: Mapping[int, tuple[DirectedSegment, ...]],
        rates: Mapping[int, float],
    ) -> None: ...


@dataclass(frozen=True)
class UtilizationReport:
    """Digest of one run's utilisation history."""

    peak_concurrent_flows: int
    peak_segment_flows: int
    peak_segment: DirectedSegment | None
    mean_throughput: float  # time-weighted aggregate bits/s
    peak_throughput: float
    busy_time: float  # span between first and last reallocation


class UtilizationMonitor:
    """Time-weighted utilisation statistics over one simulation run."""

    def __init__(self) -> None:
        self._last_time: float | None = None
        self._last_throughput = 0.0
        self._throughput_integral = 0.0
        self._start: float | None = None
        self.peak_concurrent_flows = 0
        self.peak_segment_flows = 0
        self.peak_segment: DirectedSegment | None = None
        self.peak_throughput = 0.0

    # ------------------------------------------------------------------

    def on_reallocate(self, now, flow_segments, rates) -> None:
        if self._start is None:
            self._start = now
        if self._last_time is not None and now > self._last_time:
            self._throughput_integral += self._last_throughput * (
                now - self._last_time
            )
        throughput = sum(rates.values())
        self._last_time = now
        self._last_throughput = throughput
        self.peak_throughput = max(self.peak_throughput, throughput)
        self.peak_concurrent_flows = max(
            self.peak_concurrent_flows, len(flow_segments)
        )
        counts: dict[DirectedSegment, int] = {}
        for segments in flow_segments.values():
            for seg in segments:
                counts[seg] = counts.get(seg, 0) + 1
        if counts:
            seg, count = max(counts.items(), key=lambda kv: (kv[1], kv[0].link_id))
            if count > self.peak_segment_flows:
                self.peak_segment_flows = count
                self.peak_segment = seg

    # ------------------------------------------------------------------

    def report(self) -> UtilizationReport:
        busy = 0.0
        mean = 0.0
        if self._start is not None and self._last_time is not None:
            busy = self._last_time - self._start
            if busy > 0:
                mean = self._throughput_integral / busy
        return UtilizationReport(
            peak_concurrent_flows=self.peak_concurrent_flows,
            peak_segment_flows=self.peak_segment_flows,
            peak_segment=self.peak_segment,
            mean_throughput=mean,
            peak_throughput=self.peak_throughput,
            busy_time=busy,
        )
