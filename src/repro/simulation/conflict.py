"""Incremental flow↔segment conflict graph for the fluid engine.

Two flows *conflict* when their paths share a directed segment; max-min
progressive filling is separable across the connected components of
that graph (see :mod:`repro.simulation.fairshare`), so after an event
only the components containing changed flows can see different rates.
This module maintains the incidence (segment → flows crossing it) as
flows are placed, moved, and removed, and answers the one query the
engine needs: *which flows live in components touched by this event?*

Everything is keyed by dense integer segment ids (the engine interns
every :class:`~repro.routing.paths.DirectedSegment` once at
construction), and per-segment membership is an insertion-ordered dict
used as a set — iteration order is deterministic, which the repository's
determinism lint (DET002) insists on for anything feeding rates.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["ConflictGraph"]


class ConflictGraph:
    """Mutable flow↔segment incidence with component queries."""

    def __init__(self, num_segments: int) -> None:
        #: segment id → {flow id: None}, an insertion-ordered set.
        self._members: list[dict[int, None]] = [{} for _ in range(num_segments)]
        #: flow id → the segment ids it is currently registered on.
        self._placed: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def segments_of(self, fid: int) -> tuple[int, ...]:
        """The segments ``fid`` is registered on (``()`` if absent)."""
        return self._placed.get(fid, ())

    def place(self, fid: int, path: tuple[int, ...]) -> None:
        """Register ``fid`` on ``path``, replacing any previous placement."""
        old = self._placed.get(fid)
        if old == path:
            return
        if old is not None:
            for s in old:
                del self._members[s][fid]
        for s in path:
            self._members[s][fid] = None
        self._placed[fid] = path

    def remove(self, fid: int) -> None:
        """Deregister ``fid`` (no-op if it was never placed)."""
        old = self._placed.pop(fid, None)
        if old is not None:
            for s in old:
                del self._members[s][fid]

    def incidence_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot the incidence as CSR arrays: ``(flow_ids, indptr,
        indices)`` with one row per placed flow in placement order;
        row ``i``'s path is ``indices[indptr[i]:indptr[i + 1]]``.

        This is the bridge between the object-graph view and the
        columnar backend's :class:`~repro.simulation.columnar.FlowTable`
        — ``np.bincount(indices)`` is the same per-segment incidence the
        table maintains incrementally, a correspondence property-tested
        in ``tests/test_fairshare_properties.py``.
        """
        n = len(self._placed)
        flow_ids = np.fromiter(self._placed.keys(), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter(
                (len(p) for p in self._placed.values()), dtype=np.int64, count=n
            ),
            out=indptr[1:],
        )
        indices = np.fromiter(
            (s for path in self._placed.values() for s in path),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        return flow_ids, indptr, indices

    # ------------------------------------------------------------------

    def affected_components(
        self, seed_segments: Iterable[int]
    ) -> list[list[int]]:
        """The connected components touching ``seed_segments``, one flow
        list per component (empty components are dropped).

        BFS over the *current* incidence; discovery order is
        deterministic (seed order, then ordered membership), and the
        caller re-sorts each component by flow arrival order before
        allocating anyway.  Each BFS exhausts its whole component, so a
        later seed inside an already-explored component is skipped —
        components come out disjoint.
        """
        members = self._members
        placed = self._placed
        seen_seg: set[int] = set()
        seen_flow: set[int] = set()
        components: list[list[int]] = []
        for s0 in seed_segments:
            if s0 in seen_seg:
                continue
            seen_seg.add(s0)
            comp: list[int] = []
            frontier = [s0]
            while frontier:
                seg = frontier.pop()
                for fid in members[seg]:
                    if fid in seen_flow:
                        continue
                    seen_flow.add(fid)
                    comp.append(fid)
                    for s in placed[fid]:
                        if s not in seen_seg:
                            seen_seg.add(s)
                            frontier.append(s)
            if comp:
                components.append(comp)
        return components
