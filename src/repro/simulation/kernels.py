"""The ``@kernel`` registry: declared numeric contracts for hot loops.

ROADMAP item 1 reserves the ``[speed]`` extra for a numba-compiled
water-fill kernel.  Before that JIT lands, the repo needs a *static*
definition of "kernel-safe": which functions are candidates for
``nopython`` compilation, what arrays they take, and what dtypes and
shapes those arrays carry.  This module is that contract's runtime
half; the static half is :mod:`repro.checks.numeric`, which parses the
decorator literally (no import, no execution) and abstractly interprets
every registered kernel against its declared array specs.

A kernel declares its arrays as ``name -> (dtype, dims)`` where each
dim is either a symbolic name (``"rows"``) — optionally with a constant
offset (``"segments+1"``) — or an integer literal.  Symbols unify
across a kernel's arrays, so ``("rows", "width")`` against
``("rows",)`` is a checked relationship, not two independent guesses::

    @kernel(
        arrays={
            "matrix": ("float64", ("rows", "width")),
        },
        returns=("float64", ("rows",)),
    )
    def _column_min(matrix): ...

The decorator is deliberately inert at call time: it records the spec
in :data:`KERNEL_REGISTRY`, stamps the function with
``__repro_kernel__``, and returns the function object unchanged — zero
overhead on the hot path, and a single seam where the numba PR can
later swap in ``numba.njit`` behind the ``[speed]`` extra.

The spec must be a *literal* (string/int/tuple/dict displays only): the
lint pass reads it from the AST without importing the module, and a
computed spec would silently check nothing.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, TypeVar, Union

__all__ = ["ArraySpec", "KernelSpec", "KERNEL_REGISTRY", "kernel"]

#: ``(dtype, dims)`` — dtype is a numpy dtype name, dims are symbolic
#: names (optionally ``"sym+k"``/``"sym-k"``) or integer literals.
ArraySpec = tuple[str, Sequence[Union[str, int]]]

F = TypeVar("F", bound=Callable[..., object])


class KernelSpec:
    """One registered kernel's declared numeric contract."""

    def __init__(
        self,
        qualname: str,
        arrays: Mapping[str, ArraySpec],
        returns: ArraySpec | None,
    ) -> None:
        self.qualname = qualname
        self.arrays = dict(arrays)
        self.returns = returns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelSpec({self.qualname!r}, arrays={self.arrays!r}, "
            f"returns={self.returns!r})"
        )


#: ``module-level qualname -> spec`` for every registered kernel in the
#: process.  The static analyzer never reads this (it parses decorator
#: literals); it exists so tests and the future JIT wrapper can
#: enumerate the kernel surface.
KERNEL_REGISTRY: dict[str, KernelSpec] = {}


def kernel(
    arrays: Mapping[str, ArraySpec] | None = None,
    returns: ArraySpec | None = None,
) -> Callable[[F], F]:
    """Register a function as a JIT-candidate numeric kernel.

    Args:
        arrays: array-parameter contracts, ``name -> (dtype, dims)``.
            Parameters not listed are treated as opaque scalars by the
            analyzer.  Non-array kernels (the scalar reference solver)
            may omit this entirely — NUM004 still polices them.
        returns: the returned array's contract, when one is returned.

    The wrapped function is returned unchanged; registration is the
    only side effect.
    """

    def _register(fn: F) -> None:
        key = f"{fn.__module__}.{fn.__qualname__}"
        KERNEL_REGISTRY[key] = KernelSpec(
            qualname=fn.__qualname__, arrays=arrays or {}, returns=returns
        )
        fn.__repro_kernel__ = True  # type: ignore[attr-defined]

    def _decorate(fn: F) -> F:
        _register(fn)
        return fn

    return _decorate
