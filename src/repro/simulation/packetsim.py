"""A slotted packet-level simulator for cross-validating the fluid model.

DESIGN.md's central substitution replaces the paper's packet-level
simulator with max-min fluid rates.  This module keeps the reproduction
honest about that substitution: a small store-and-forward packet
simulator whose steady-state per-flow throughputs are compared against
:func:`repro.simulation.fairshare.max_min_rates` in the test suite.

Model (a lossless, credit-based fabric — the classic setting in which
hop-by-hop round-robin converges to max-min fairness):

* time advances in slots; every directed link transmits at most one
  packet per slot (all links have equal capacity, as in the paper's
  10 Gbps fabric);
* each directed link keeps one bounded FIFO queue *per flow*; a packet
  moves forward only when the next hop's queue for that flow has room
  (hop-by-hop backpressure — no drops);
* each link serves its flow queues in round-robin order, skipping flows
  that are empty or blocked downstream;
* sources inject greedily (infinite backlog) subject to the first hop's
  queue bound.

Throughput is measured in packets/slot over a window after a warm-up.
This is *not* a performance tool (it is thousands of times slower than
the fluid engine); it exists purely as a validation oracle on small
scenarios, which is exactly how the tests use it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..routing.paths import DirectedSegment, Path
from ..topology.base import Topology

__all__ = ["PacketFlow", "PacketLevelSimulator"]


@dataclass(frozen=True)
class PacketFlow:
    """One greedy (infinite-backlog) flow pinned to a path."""

    flow_id: int
    path: Path


@dataclass
class _FlowState:
    spec: PacketFlow
    segments: tuple[DirectedSegment, ...]
    #: per-hop queues: queues[i] buffers packets awaiting segment i's link
    queues: list[deque] = field(default_factory=list)
    delivered: int = 0


class PacketLevelSimulator:
    """Slotted store-and-forward simulation with per-flow backpressure."""

    def __init__(
        self,
        topo: Topology,
        flows: list[PacketFlow],
        queue_capacity: int = 4,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.topo = topo
        self.queue_capacity = queue_capacity
        self.flows: dict[int, _FlowState] = {}
        #: directed segment -> flow ids crossing it, in round-robin order
        self._seg_flows: dict[DirectedSegment, list[int]] = {}
        #: round-robin cursor per segment
        self._cursor: dict[DirectedSegment, int] = {}
        for flow in flows:
            segments = flow.path.segments(topo, flow.flow_id)
            state = _FlowState(
                spec=flow,
                segments=segments,
                queues=[deque() for _ in segments],
            )
            self.flows[flow.flow_id] = state
            for seg in segments:
                self._seg_flows.setdefault(seg, []).append(flow.flow_id)
        for seg in self._seg_flows:
            self._cursor[seg] = 0
        self._slots = 0

    # ------------------------------------------------------------------

    def _hop_index(self, state: _FlowState, seg: DirectedSegment) -> int:
        return state.segments.index(seg)

    def _can_forward(self, state: _FlowState, hop: int) -> bool:
        """Queue ``hop`` has a packet and the next hop has room (or is exit)."""
        if not state.queues[hop]:
            return False
        if hop + 1 >= len(state.queues):
            return True
        return len(state.queues[hop + 1]) < self.queue_capacity

    def step(self) -> None:
        """Advance one slot: inject, then transmit one packet per link."""
        # Source injection: greedy up to the first queue's bound.
        for state in self.flows.values():
            while len(state.queues[0]) < self.queue_capacity:
                state.queues[0].append(self._slots)
        # Transmission: each directed link picks one eligible flow,
        # round-robin.  Departures are staged so that a packet cannot
        # traverse two links within one slot.
        staged: list[tuple[_FlowState, int]] = []
        for seg, flow_ids in self._seg_flows.items():
            cursor = self._cursor[seg]
            for offset in range(len(flow_ids)):
                fid = flow_ids[(cursor + offset) % len(flow_ids)]
                state = self.flows[fid]
                hop = self._hop_index(state, seg)
                if self._can_forward(state, hop):
                    staged.append((state, hop))
                    self._cursor[seg] = (cursor + offset + 1) % len(flow_ids)
                    break
        for state, hop in staged:
            packet = state.queues[hop].popleft()
            if hop + 1 < len(state.queues):
                state.queues[hop + 1].append(packet)
            else:
                state.delivered += 1
        self._slots += 1

    def run(self, slots: int) -> None:
        for _ in range(slots):
            self.step()

    # ------------------------------------------------------------------

    def throughputs(self, warmup: int, window: int) -> dict[int, float]:
        """Per-flow delivery rate (packets/slot) over a measurement window.

        Runs ``warmup`` slots, snapshots deliveries, runs ``window`` more,
        and returns the per-flow rate over the window.
        """
        if warmup < 0 or window < 1:
            raise ValueError("need warmup >= 0 and window >= 1")
        self.run(warmup)
        before = {fid: s.delivered for fid, s in self.flows.items()}
        self.run(window)
        return {
            fid: (state.delivered - before[fid]) / window
            for fid, state in self.flows.items()
        }

    @property
    def slots_elapsed(self) -> int:
        return self._slots
