"""A small discrete-event kernel (calendar queue over ``heapq``).

The fluid simulator needs exactly two kinds of *exogenous* events —
coflow arrivals and scheduled topology/control actions — while flow
completions are *endogenous*: with piecewise-constant rates the next
completion instant is computed, not scheduled.  The kernel therefore
stays deliberately small: a priority queue with a monotonic tie-breaking
sequence number (events at equal times fire in insertion order, which
keeps whole simulations deterministic), plus cancellation support.

``simpy`` is intentionally not used: the rate-recomputation pattern of
max-min fluid simulation fits a bare event loop better than a
process/coroutine model, and the explicit loop is easier to test.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Event", "EventQueue", "SimClock"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """Monotonic simulation clock; advancing backwards is a bug, not a wrap."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now - 1e-12:
            raise ValueError(f"clock moving backwards: {self._now} -> {t}")
        self._now = max(self._now, t)


class EventQueue:
    """Priority queue of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def schedule(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        event = Event(time, next(self._seq), action, label)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return heapq.heappop(self._heap) if self._heap else None

    def pop_due(self, time: float, tolerance: float = 1e-12) -> list[Event]:
        """All live events scheduled at or before ``time`` (FIFO within ties)."""
        due: list[Event] = []
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time + tolerance:
                break
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                due.append(event)
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled()
        return bool(self._heap)
