"""Max-min fair bandwidth allocation by progressive filling.

The fluid model of TCP sharing: between events every active flow
transfers at the max-min fair rate over its fixed path.  Progressive
filling computes the unique max-min allocation exactly:

1. every unfrozen flow's rate grows uniformly until some directed link
   segment saturates — the *bottleneck*, the segment with the smallest
   ``remaining_capacity / unfrozen_flow_count``;
2. flows crossing the bottleneck are frozen at that fair share, the
   capacity they consume is subtracted everywhere along their paths;
3. repeat until every flow is frozen.

Invariants (property-tested in ``tests/test_fairshare_properties.py``):

* feasibility — no segment carries more than its capacity;
* saturation — every flow is limited by at least one saturated segment
  (work conservation / Pareto efficiency);
* fairness — a flow's rate can't be raised without lowering the rate of
  some flow with an equal or smaller rate.

Implementation note: bottleneck selection uses a lazy-deletion heap.
This is sound because the fair share of any segment is *non-decreasing*
as flows freeze (a frozen flow's rate is never above the segment's old
share, so ``(cap − r) / (n − 1) ≥ cap / n``); a popped entry whose
recorded share is stale is simply re-pushed with its current value.
That brings a full reallocation to O(P log S) for P total path segments,
which is what makes trace-scale replays fast enough in pure Python.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Mapping, Sequence

__all__ = ["max_min_rates", "FairShareError"]


class FairShareError(ValueError):
    """Raised on malformed allocation inputs (empty paths, bad capacity)."""


def max_min_rates(
    flow_segments: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Max-min fair rates for ``flow_segments`` under ``capacities``.

    Args:
        flow_segments: flow id → the directed segments its path crosses.
            Every flow must cross at least one segment (a host is always
            behind its access link, so this holds by construction).
        capacities: segment → capacity in bits/s.  Segments missing from
            the map are an error — silently infinite links hide wiring bugs.

    Returns:
        flow id → allocated rate (bits/s).
    """
    if not flow_segments:
        return {}

    seg_flows: dict[Hashable, set[Hashable]] = {}
    for flow, segments in flow_segments.items():
        if not segments:
            raise FairShareError(f"flow {flow!r} has an empty path")
        for seg in segments:
            if seg not in capacities:
                raise FairShareError(f"segment {seg!r} has no capacity entry")
            seg_flows.setdefault(seg, set()).add(flow)

    remaining: dict[Hashable, float] = {}
    unfrozen: dict[Hashable, set[Hashable]] = {}
    for seg, flows in seg_flows.items():
        cap = float(capacities[seg])
        if cap < 0:
            raise FairShareError(f"segment {seg!r} has negative capacity {cap}")
        remaining[seg] = cap
        unfrozen[seg] = set(flows)

    # Lazy-deletion min-heap of (share, tie, segment).
    heap: list[tuple[float, int, Hashable]] = []
    tie = 0
    for seg, flows in unfrozen.items():
        heap.append((remaining[seg] / len(flows), tie, seg))
        tie += 1
    heapq.heapify(heap)

    rates: dict[Hashable, float] = {}

    while heap:
        share, _, seg = heapq.heappop(heap)
        flows = unfrozen[seg]
        if not flows:
            continue  # everything on it froze via other bottlenecks
        current = remaining[seg] / len(flows)
        if current > share + 1e-12 * max(1.0, current):
            # Stale entry: the share grew since it was pushed; re-queue.
            heapq.heappush(heap, (current, tie, seg))
            tie += 1
            continue

        fair = current
        touched: set[Hashable] = set()
        for flow in list(flows):
            rates[flow] = fair
            for fseg in flow_segments[flow]:
                remaining[fseg] -= fair
                unfrozen[fseg].discard(flow)
                touched.add(fseg)
        remaining[seg] = 0.0
        for fseg in touched:
            if remaining[fseg] < 0:  # float residue
                remaining[fseg] = 0.0
            left = unfrozen[fseg]
            if fseg is not seg and left:
                heapq.heappush(heap, (remaining[fseg] / len(left), tie, fseg))
                tie += 1

    # Every flow crosses >= 1 segment, so all were frozen.
    assert len(rates) == len(flow_segments)
    return rates
