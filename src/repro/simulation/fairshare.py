"""Max-min fair bandwidth allocation by progressive filling.

The fluid model of TCP sharing: between events every active flow
transfers at the max-min fair rate over its fixed path.  Progressive
filling computes the unique max-min allocation exactly:

1. every unfrozen flow's rate grows uniformly until some directed link
   segment saturates — the *bottleneck*, the segment with the smallest
   ``remaining_capacity / unfrozen_flow_count``;
2. flows crossing the bottleneck are frozen at that fair share, the
   capacity they consume is subtracted everywhere along their paths;
3. repeat until every flow is frozen.

Invariants (property-tested in ``tests/test_fairshare_properties.py``):

* feasibility — no segment carries more than its capacity;
* saturation — every flow is limited by at least one saturated segment
  (work conservation / Pareto efficiency);
* fairness — a flow's rate can't be raised without lowering the rate of
  some flow with an equal or smaller rate.

Implementation notes.  The solver is *component-decomposed*: the
flow↔segment conflict graph (flows adjacent when their paths share a
directed segment) is partitioned into connected components and each
component is solved independently.  Progressive filling is separable —
a bottleneck freeze in one component never touches capacity or counts
in another — so the decomposition is exact, and it is what lets the
engine recompute only the components an event touched
(:mod:`repro.simulation.conflict`): solving a component alone produces
*bit-identical* rates to solving it inside the full problem.

The core (:func:`allocate_dense`) works on dense integer ids: flows are
positions in the input list, segments index a flat capacity array, and
the per-component state (remaining capacity, unfrozen counts, frozen
flags) lives in flat lists instead of dict-of-sets.

Bottleneck selection is *ripe-pass* progressive filling, the canonical
semantics shared bit-for-bit with the vectorized kernel
(:func:`repro.simulation.columnar.waterfill`).  Each pass:

1. every live segment's fair share is ``remaining / count``;
2. every unfrozen flow's level is the minimum share along its path;
3. a segment is **ripe** when every unfrozen flow crossing it sits at
   that segment's share (i.e. the segment is the genuine bottleneck of
   everything it carries);
4. every flow touching a ripe segment at its own level freezes there —
   one pass freezes *all* current bottleneck levels at once, not just
   the global minimum;
5. the frozen flows' consumption is accumulated per segment in
   ascending flow order and subtracted once, counts are decremented,
   and negative float residue is clamped to zero at pass end.

At least one flow freezes per pass (the globally minimal segment is
always ripe), so the loop terminates in at most ``levels`` passes and
usually far fewer.  Every arithmetic step — the division, the ordered
minimum, the per-segment accumulation order, the single subtraction,
the end-of-pass clamp — is specified exactly so that this scalar
solver, solved per component, reproduces the vectorized full-problem
kernel bit-for-bit: IEEE-754 minimum is exact (order-free), and both
sides accumulate each segment's per-pass delta in ascending flow
order before one subtraction.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from .kernels import kernel

__all__ = [
    "max_min_rates",
    "allocate_dense",
    "AllocatorWorkspace",
    "FairShareError",
]


class FairShareError(ValueError):
    """Raised on malformed allocation inputs (empty paths, bad capacity)."""


class AllocatorWorkspace:
    """Reusable dense scratch for :func:`allocate_dense`.

    One of these per engine avoids re-allocating O(num_segments) arrays
    on every reallocation.  Between calls every ``members`` list is
    empty, ``seg_mark`` is all-zero, and every ``delta`` slot is zero;
    ``remaining``/``counts``/``share``/``tightcnt`` carry stale values
    that the next call overwrites for the segments it uses before
    reading them.
    """

    def __init__(self, num_segments: int) -> None:
        self.members: list[list[int]] = [[] for _ in range(num_segments)]
        self.remaining: list[float] = [0.0] * num_segments
        self.counts: list[int] = [0] * num_segments
        self.seg_mark = bytearray(num_segments)
        #: Per-pass scratch for :func:`_solve_component`.
        self.share: list[float] = [0.0] * num_segments
        self.tightcnt: list[int] = [0] * num_segments
        self.delta: list[float] = [0.0] * num_segments


@kernel()
def _solve_component(
    comp_segs: list[int],
    comp_flows: list[int],
    paths: list[tuple[int, ...]],
    remaining: list[float],
    counts: list[int],
    frozen: bytearray,
    rates: list[float],
    share: list[float],
    tightcnt: list[int],
    delta: list[float],
) -> None:
    """Ripe-pass progressive filling over one connected component.

    ``comp_flows`` must be the component's flow indices in ascending
    problem order — the order fixes the per-segment delta accumulation
    and therefore the exact floats.  ``share``/``tightcnt``/``delta``
    are shared dense scratch; ``delta`` is all-zero on entry and on
    exit, the other two are overwritten before being read.

    The result is a pure function of the component, and — because the
    pass structure of one component is untouched by any other — solving
    it alone is bit-identical to solving it inside the full problem.
    This is the same guarantee the vectorized kernel
    (:func:`repro.simulation.columnar.waterfill`) leans on: it solves
    the full problem in one batch and must agree with the incremental
    path's per-component solves to the last bit.
    """
    live = comp_segs
    unfrozen = comp_flows
    while unfrozen:
        for s in live:
            share[s] = remaining[s] / counts[s]
            tightcnt[s] = 0
        # Pass 1: every unfrozen flow's level is the min share on its
        # path; count how many unfrozen flows sit exactly at each
        # segment's share ("tight" crossings).
        levels: list[float] = []
        for f in unfrozen:
            path = paths[f]
            fm = share[path[0]]
            for s in path[1:]:
                v = share[s]
                if v < fm:
                    fm = v
            levels.append(fm)
            for s in path:
                if share[s] == fm:
                    tightcnt[s] += 1
        # Pass 2: a segment is ripe when *all* its unfrozen crossings
        # are tight; flows at a ripe segment's share freeze there.
        progressed = False
        for f, fm in zip(unfrozen, levels):
            for s in paths[f]:
                if tightcnt[s] == counts[s] and share[s] == fm:
                    frozen[f] = 1
                    rates[f] = fm
                    progressed = True
                    break
        if not progressed:  # pragma: no cover - the min segment is always ripe
            raise FairShareError("progressive filling stalled")
        # Pass 3: accumulate the frozen flows' consumption per segment
        # in ascending flow order, subtract once, clamp at pass end —
        # exactly the float schedule the vectorized kernel follows.
        for f, fm in zip(unfrozen, levels):
            if frozen[f]:
                for s in paths[f]:
                    delta[s] += fm
                    counts[s] -= 1
        for s in live:
            remaining[s] -= delta[s]
            delta[s] = 0.0
            if remaining[s] < 0.0:  # float residue
                remaining[s] = 0.0
        unfrozen = [f for f in unfrozen if not frozen[f]]
        live = [s for s in live if counts[s]]


def allocate_dense(
    pairs: Sequence[tuple[Hashable, tuple[int, ...]]],
    capacities: Sequence[float],
    workspace: AllocatorWorkspace | None = None,
    assume_connected: bool = False,
) -> dict[Hashable, float]:
    """Max-min rates for flows whose paths are dense integer segment ids.

    Args:
        pairs: ordered ``(key, path)`` items; each path is a tuple of
            indices into ``capacities``, with no duplicate segment
            within one path.  The order is significant: it fixes the
            flow-freeze and heap tie order, hence the exact floats.
        capacities: segment id → capacity in bits/s.
        workspace: optional reusable scratch (one per engine); a fresh
            one is allocated when omitted.
        assume_connected: the caller asserts ``pairs`` form a single
            conflict component (the engine's incremental path solves one
            component at a time), skipping the partition pass.  The
            rates are bit-identical either way.

    Returns:
        key → allocated rate (bits/s), in input order.

    The problem is split into conflict-graph components and each is
    solved by :func:`_solve_component` with component-local heap state,
    so any sub-slice of ``pairs`` that covers whole components yields
    rates bit-identical to solving the full problem.
    """
    if not pairs:
        return {}

    ws = workspace if workspace is not None else AllocatorWorkspace(len(capacities))
    members = ws.members
    remaining = ws.remaining
    counts = ws.counts
    seg_mark = ws.seg_mark

    nflows = len(pairs)
    paths: list[tuple[int, ...]] = []
    used: list[int] = []  # segment ids of this problem, first-seen order
    try:
        for idx, (key, path) in enumerate(pairs):
            if not path:
                raise FairShareError(f"flow {key!r} has an empty path")
            for s in path:
                m = members[s]
                if not m:
                    used.append(s)
                m.append(idx)
            paths.append(path)
        for s in used:
            cap = float(capacities[s])
            if cap < 0:
                raise FairShareError(f"segment {s} has negative capacity {cap}")
            remaining[s] = cap
            counts[s] = len(members[s])

        rates = [0.0] * nflows
        frozen = bytearray(nflows)

        if assume_connected:
            _solve_component(
                used,
                list(range(nflows)),
                paths,
                remaining,
                counts,
                frozen,
                rates,
                ws.share,
                ws.tightcnt,
                ws.delta,
            )
        else:
            visited = bytearray(nflows)
            for start in range(nflows):
                if visited[start]:
                    continue
                # Collect the component by BFS over shared segments, then
                # sort it into problem order so per-component results
                # match the full solve bit-for-bit.
                visited[start] = 1
                comp_flows = [start]
                stack = [start]
                while stack:
                    f = stack.pop()
                    for s in paths[f]:
                        if seg_mark[s]:
                            continue
                        seg_mark[s] = 1
                        for nf in members[s]:
                            if not visited[nf]:
                                visited[nf] = 1
                                comp_flows.append(nf)
                                stack.append(nf)
                comp_flows.sort()
                # The BFS left this component's segments marked; collect
                # them in first-seen order (clearing the marks as we go).
                comp_segs: list[int] = []
                for f in comp_flows:
                    for s in paths[f]:
                        if seg_mark[s]:
                            seg_mark[s] = 0
                            comp_segs.append(s)
                _solve_component(
                    comp_segs,
                    comp_flows,
                    paths,
                    remaining,
                    counts,
                    frozen,
                    rates,
                    ws.share,
                    ws.tightcnt,
                    ws.delta,
                )
    finally:
        for s in used:
            members[s].clear()
            seg_mark[s] = 0

    return {key: rates[idx] for idx, (key, _) in enumerate(pairs)}


def max_min_rates(
    flow_segments: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Max-min fair rates for ``flow_segments`` under ``capacities``.

    The reference ("oracle") entry point: validates its inputs, interns
    segments to dense ids, and defers to :func:`allocate_dense` — the
    same core the engine's incremental path uses, which is what makes
    incremental-vs-oracle bit-identity hold by construction.

    Args:
        flow_segments: flow id → the directed segments its path crosses.
            Every flow must cross at least one segment (a host is always
            behind its access link, so this holds by construction).
        capacities: segment → capacity in bits/s.  Segments missing from
            the map are an error — silently infinite links hide wiring bugs.

    Returns:
        flow id → allocated rate (bits/s).
    """
    if not flow_segments:
        return {}

    seg_ids: dict[Hashable, int] = {}
    caps: list[float] = []
    pairs: list[tuple[Hashable, tuple[int, ...]]] = []
    for flow, segments in flow_segments.items():
        if not segments:
            raise FairShareError(f"flow {flow!r} has an empty path")
        path: list[int] = []
        for seg in segments:
            sid = seg_ids.get(seg)
            if sid is None:
                if seg not in capacities:
                    raise FairShareError(f"segment {seg!r} has no capacity entry")
                cap = float(capacities[seg])
                if cap < 0:
                    raise FairShareError(
                        f"segment {seg!r} has negative capacity {cap}"
                    )
                sid = len(caps)
                seg_ids[seg] = sid
                caps.append(cap)
            path.append(sid)
        if len(path) > 1 and len(set(path)) != len(path):
            path = list(dict.fromkeys(path))  # drop repeats, keep first-seen order
        pairs.append((flow, tuple(path)))

    rates = allocate_dense(pairs, caps)
    assert len(rates) == len(flow_segments)
    return rates
