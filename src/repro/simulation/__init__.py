"""Flow-level (fluid) discrete-event simulator.

Replays coflow traces on a topology with max-min fair bandwidth sharing;
the substrate of the paper's failure study (Figure 1) and of the
ShareBackup-vs-rerouting comparisons.
"""

from .conflict import ConflictGraph
from .engine import (
    DEFAULT_ALLOCATOR,
    ENGINE_REV,
    CoflowRecord,
    FlowRecord,
    FluidSimulation,
    SimulationResult,
)
from .events import Event, EventQueue, SimClock
from .fairshare import FairShareError, allocate_dense, max_min_rates
from .flow import CoflowSpec, FlowPhase, FlowSpec, FlowState
from .kernels import KERNEL_REGISTRY, KernelSpec, kernel
from .monitor import SimMonitor, UtilizationMonitor, UtilizationReport
from .packetsim import PacketFlow, PacketLevelSimulator

__all__ = [
    "ConflictGraph",
    "CoflowRecord",
    "CoflowSpec",
    "DEFAULT_ALLOCATOR",
    "ENGINE_REV",
    "Event",
    "EventQueue",
    "FairShareError",
    "FlowPhase",
    "FlowRecord",
    "FlowSpec",
    "FlowState",
    "FluidSimulation",
    "KERNEL_REGISTRY",
    "KernelSpec",
    "SimClock",
    "PacketFlow",
    "PacketLevelSimulator",
    "SimMonitor",
    "UtilizationMonitor",
    "UtilizationReport",
    "SimulationResult",
    "allocate_dense",
    "kernel",
    "max_min_rates",
]
