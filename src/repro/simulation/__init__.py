"""Flow-level (fluid) discrete-event simulator.

Replays coflow traces on a topology with max-min fair bandwidth sharing;
the substrate of the paper's failure study (Figure 1) and of the
ShareBackup-vs-rerouting comparisons.
"""

from .engine import CoflowRecord, FlowRecord, FluidSimulation, SimulationResult
from .events import Event, EventQueue, SimClock
from .fairshare import FairShareError, max_min_rates
from .flow import CoflowSpec, FlowPhase, FlowSpec, FlowState
from .monitor import SimMonitor, UtilizationMonitor, UtilizationReport
from .packetsim import PacketFlow, PacketLevelSimulator

__all__ = [
    "CoflowRecord",
    "CoflowSpec",
    "Event",
    "EventQueue",
    "FairShareError",
    "FlowPhase",
    "FlowRecord",
    "FlowSpec",
    "FlowState",
    "FluidSimulation",
    "SimClock",
    "PacketFlow",
    "PacketLevelSimulator",
    "SimMonitor",
    "UtilizationMonitor",
    "UtilizationReport",
    "SimulationResult",
    "max_min_rates",
]
