"""Bridges the ShareBackup control plane into the fluid simulator.

Key observation (and the whole point of the architecture): after a
ShareBackup recovery the *logical* network is byte-for-byte the
pre-failure fat-tree — same links, same routing tables, same paths —
because the backup switch inherited the failed switch's circuits and
impersonates it.  For flow-level simulation a failure + recovery is
therefore exactly equivalent to the element being down for
``recovery_time`` and then restored *in place*.  Flows pinned through
the element stall for the (sub-millisecond, Section 5.3) recovery window
and resume on their original paths; nothing is rerouted, so there is no
bandwidth loss and no path dilation — the properties of Table 3 emerge
from the model instead of being asserted.

The adapter asks the controller for the per-event recovery latency (so
control-plane policy — crosspoint vs MEMS, spare exhaustion — shows up
in simulated application performance) and schedules the matching
fail/restore pairs into a :class:`FluidSimulation` running on the
ShareBackup network's logical fat-tree with a :class:`StaticEcmpRouter`
(static, because ShareBackup never reroutes).

When the controller runs with ``degrade_to_reroute`` (chaos hardening),
the simulation uses a :class:`~repro.routing.fallback.FallbackRouter`
instead: still static ECMP while recovery succeeds, but the first slot
the controller degrades flips the fabric to the §2.2 global-optimal
rerouting baseline, so traffic through the dead slot keeps flowing on
surviving paths rather than stalling forever.
"""

from __future__ import annotations

from ..routing.fallback import FallbackRouter
from ..routing.router import Router
from ..routing.static import StaticEcmpRouter
from ..simulation.engine import FluidSimulation
from ..simulation.flow import CoflowSpec
from .controller import RecoveryReport, ShareBackupController
from .sharebackup import ShareBackupNetwork

__all__ = ["ShareBackupSimulation"]


class ShareBackupSimulation:
    """A fluid simulation of a ShareBackup network under failures."""

    def __init__(
        self,
        net: ShareBackupNetwork,
        trace: list[CoflowSpec],
        controller: ShareBackupController | None = None,
        horizon: float | None = None,
    ) -> None:
        self.net = net
        self.controller = controller or ShareBackupController(net)
        self.router: Router
        if self.controller.degrade_to_reroute:
            self.router = FallbackRouter(net.logical)
        else:
            self.router = StaticEcmpRouter(net.logical)
        self.sim = FluidSimulation(net.logical, self.router, trace, horizon=horizon)
        self.reports: list[RecoveryReport] = []

    # ------------------------------------------------------------------

    def inject_switch_failure(self, time: float, logical_switch: str) -> None:
        """Fail a switch at ``time``; the controller's recovery brings the
        (replaced) switch back after its recovery latency."""

        def fail_and_recover(sim: FluidSimulation) -> None:
            sim._mutate(lambda: sim.topo.fail_node(logical_switch))
            report = self.controller.handle_node_failure(logical_switch, now=time)
            self.reports.append(report)
            if report.fully_recovered:
                sim.schedule_action(
                    time + report.recovery_time,
                    lambda s: s._mutate(lambda: s.topo.restore_node(logical_switch)),
                    label=f"sharebackup-recovered:{logical_switch}",
                )
            elif report.degraded:
                self._activate_fallback(sim)
            # With no spare left (and no degradation) the slot stays dark
            # until repair — a fat-tree with a dead switch.

        self.sim.schedule_action(
            time, fail_and_recover, label=f"fail:{logical_switch}"
        )

    def inject_link_failure(
        self,
        time: float,
        link_id: int,
        true_faulty_interfaces: tuple[tuple[str, tuple], ...] = (),
    ) -> None:
        """Fail a logical link; both endpoint switches get replaced.

        The replacement repairs the link (whichever interface was at
        fault is now offline), so the logical link is restored after the
        recovery window.
        """
        link = self.net.logical.links[link_id]

        def fail_and_recover(sim: FluidSimulation) -> None:
            sim._mutate(lambda: sim.topo.fail_link(link_id))
            report = self.controller.handle_link_failure(
                self._interface_end(link.a, link.b),
                self._interface_end(link.b, link.a),
                now=time,
                true_faulty_interfaces=true_faulty_interfaces,
            )
            self.reports.append(report)
            if report.fully_recovered:
                sim.schedule_action(
                    time + report.recovery_time,
                    lambda s: s._mutate(lambda: s.topo.restore_link(link_id)),
                    label=f"sharebackup-recovered-link:{link_id}",
                )
            elif report.degraded:
                self._activate_fallback(sim)

        self.sim.schedule_action(time, fail_and_recover, label=f"fail-link:{link_id}")

    def _activate_fallback(self, sim: FluidSimulation) -> None:
        """A slot degraded to rerouting: flip the fabric's routing
        personality (inside ``_mutate`` so stalled flows repath now)."""
        if isinstance(self.router, FallbackRouter) and not self.router.degraded:
            sim._mutate(self.router.activate)

    def _interface_end(self, device: str, far: str) -> tuple[str, tuple]:
        """The (device, physical-interface) pair of the ``device`` side of
        the logical link ``device -- far``, resolved via the wiring maps."""
        tree = self.net.logical
        half = self.net.half
        node = tree.nodes[device]
        far_node = tree.nodes[far]
        if node.kind.value == "host":
            return (device, ("nic", 0))
        if node.kind.value == "edge":
            if far_node.kind.value == "host":
                # H.p.e.j hangs off layer-1 circuit j.
                j = int(far.split(".")[-1])
                return (device, ("host", j))
            from .impersonation import edge_uplink_interface

            return (
                device,
                ("up", edge_uplink_interface(node.index, far_node.index, half)),
            )
        if node.kind.value == "aggregation":
            if far_node.kind.value == "edge":
                from .impersonation import agg_downlink_interface

                return (
                    device,
                    ("down", agg_downlink_interface(node.index, far_node.index, half)),
                )
            # Aggregation a reaches core a*half + j on up-interface j.
            return (device, ("up", far_node.index % half))
        # Core side: interface is indexed by the far pod.
        return (device, ("pod", far_node.pod))

    # ------------------------------------------------------------------

    def run(self):
        result = self.sim.run()
        self.controller.run_pending_diagnoses()
        return result
