"""Offline failure diagnosis (paper Section 4.2, Figure 4).

After a link failure, ShareBackup replaces the switches on *both* sides
immediately (fast recovery cannot wait to find out which end is at
fault).  Diagnosis then runs in the background to find the "suspect
interface" that actually caused the failure, so that the healthy switch
can be returned to the spare pool — "we consume only one backup switch
at the faulty end".

Mechanics: the circuit switches of a layer in a pod are chained into a
ring through their side ports.  By reconfiguring circuits, a suspect
interface can be connected to up to three different partner interfaces:

* **configuration ①** — a partner on the *same* circuit switch: the
  port of an idle switch (a free spare, or the other offline suspect);
* **configuration ②** — through one side-port hop to the ring
  neighbour, reaching the suspect switch's *own* interface there (a
  different interface of the same switch);
* **configuration ③** — the same through the other ring direction.

A probe over a configured circuit succeeds iff both end interfaces are
healthy and every circuit switch on the path is up.  "A suspect
interface that has connectivity in at least one configuration is
redressed as healthy, so is the corresponding suspect switch."  When no
test partner with a healthy interface can be arranged ("both sides have
at least one healthy interface" violated), the suspect stays condemned —
the paper's conservative default.

Everything here touches only offline switches, free spares, and side
ports, so diagnosis "is completely independent of the functioning
network"; the tests assert that invariant by re-verifying fat-tree
equivalence during a diagnosis run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .circuit_switch import CircuitSwitch, CSPort
from .sharebackup import ShareBackupNetwork

__all__ = ["ProbeOutcome", "InterfaceVerdict", "LinkDiagnosis", "FailureDiagnosis"]


@dataclass(frozen=True)
class ProbeOutcome:
    """One configured test: who was probed against whom, and the result."""

    configuration: int  # 1, 2 or 3
    suspect: tuple[str, tuple]
    partner: tuple[str, tuple]
    passed: bool


@dataclass(frozen=True)
class InterfaceVerdict:
    """Diagnosis result for one suspect interface."""

    device: str
    interface: tuple
    healthy: bool
    probes: tuple[ProbeOutcome, ...]

    @property
    def tested(self) -> bool:
        return bool(self.probes)


@dataclass(frozen=True)
class LinkDiagnosis:
    """Joint verdict over the two ends of a failed link."""

    end_a: InterfaceVerdict
    end_b: Optional[InterfaceVerdict]  # None when that end is a host

    def exonerated_devices(self) -> list[str]:
        out = []
        for verdict in (self.end_a, self.end_b):
            if verdict is not None and verdict.healthy:
                out.append(verdict.device)
        return out

    def condemned_devices(self) -> list[str]:
        out = []
        for verdict in (self.end_a, self.end_b):
            if verdict is not None and not verdict.healthy:
                out.append(verdict.device)
        return out


class FailureDiagnosis:
    """Runs the three-configuration test procedure on a ShareBackup network."""

    def __init__(self, net: ShareBackupNetwork) -> None:
        self.net = net

    # ------------------------------------------------------------------

    def diagnose_link(
        self,
        end_a: tuple[str, tuple],
        end_b: Optional[tuple[str, tuple]],
        idle_devices: set[str],
    ) -> LinkDiagnosis:
        """Diagnose a failed link given both suspect (device, interface) ends.

        ``idle_devices``: physical switches safe to use as probe partners
        — the offline suspects themselves plus free spares of the groups
        involved.  ``end_b`` is ``None`` for host-attached links (hosts
        are in active service, so "the offline failure diagnosis is not
        supported between hosts and edge switches").
        """
        verdict_a = self._diagnose_interface(end_a, idle_devices)
        verdict_b = (
            self._diagnose_interface(end_b, idle_devices)
            if end_b is not None
            else None
        )
        return LinkDiagnosis(end_a=verdict_a, end_b=verdict_b)

    # ------------------------------------------------------------------

    def _diagnose_interface(
        self, suspect: tuple[str, tuple], idle_devices: set[str]
    ) -> InterfaceVerdict:
        device, iface = suspect
        cable = self.net._device_cable.get(suspect)
        if cable is None:
            return InterfaceVerdict(device, iface, healthy=False, probes=())
        home_cs = self.net.circuit_switches[cable.cs]

        probes: list[ProbeOutcome] = []

        # Configuration ①: partner on the same circuit switch.
        partner = self._same_cs_partner(home_cs, device, idle_devices)
        if partner is not None:
            partner_endpoint, _port = partner
            probes.append(
                ProbeOutcome(
                    1,
                    suspect,
                    partner_endpoint,
                    self._probe(suspect, partner_endpoint, (home_cs,)),
                )
            )

        # Configurations ② and ③: a partner on each ring neighbour,
        # reached through the side ports.  Edge/agg suspects find their
        # *own* next interface there (same port index — "on the same
        # switch" in Figure 4); core suspects, whose other interfaces
        # live in other pods, probe against an idle device of the
        # neighbouring group instead ("on different switches").
        for config, side_index in ((2, 1), (3, 0)):
            hop = self._ring_neighbor(
                home_cs, cable.port, side_index, device, idle_devices
            )
            if hop is None:
                continue
            neighbor_cs, partner_endpoint = hop
            probes.append(
                ProbeOutcome(
                    config,
                    suspect,
                    partner_endpoint,
                    self._probe(suspect, partner_endpoint, (home_cs, neighbor_cs)),
                )
            )

        healthy = any(p.passed for p in probes)
        return InterfaceVerdict(device, iface, healthy=healthy, probes=tuple(probes))

    # ------------------------------------------------------------------

    def _same_cs_partner(
        self, cs: CircuitSwitch, suspect_device: str, idle_devices: set[str]
    ) -> Optional[tuple[tuple[str, tuple], CSPort]]:
        """An idle device's interface on ``cs`` to probe against (config ①)."""
        candidates: list[tuple[tuple[str, tuple], CSPort]] = []
        for port, endpoint in sorted(cs._cables.items(), key=lambda kv: repr(kv[0])):
            kind, payload = endpoint
            if kind != "device":
                continue
            dev, iface = payload
            if dev == suspect_device or dev not in idle_devices:
                continue
            candidates.append(((dev, iface), port))
        # Prefer a partner whose interface is actually healthy — the real
        # controller cannot see fault state, but it *can* iterate partners
        # until one test setup is conclusive; trying them in order and
        # keeping the first healthy one models that iteration compactly.
        for candidate, port in candidates:
            if candidate not in self.net.interface_faults:
                return candidate, port
        return candidates[0] if candidates else None

    def _ring_neighbor(
        self,
        cs: CircuitSwitch,
        suspect_port: CSPort,
        side_index: int,
        suspect_device: str,
        idle_devices: set[str],
    ) -> Optional[tuple[CircuitSwitch, tuple[str, tuple]]]:
        """A ring neighbour in one direction plus a probe partner on it.

        Preference order: the suspect's own interface there (same port
        index — its interfaces are spread one per circuit switch of the
        layer), else an idle device's interface, healthy ones first.
        """
        side_kind = "ds" if suspect_port[0] == "d" else "us"
        side_cable = cs.cable((side_kind, side_index))
        if side_cable is None or side_cable[0] != "cs":
            return None
        neighbor_name, _neighbor_side = side_cable[1]
        neighbor = self.net.circuit_switches[neighbor_name]

        own = neighbor.cable(suspect_port)
        if own is not None and own[0] == "device" and own[1][0] == suspect_device:
            return neighbor, own[1]

        candidates: list[tuple[str, tuple]] = []
        for _port, endpoint in sorted(
            neighbor._cables.items(), key=lambda kv: repr(kv[0])
        ):
            kind, payload = endpoint
            if kind != "device":
                continue
            dev, _iface = payload
            if dev == suspect_device or dev not in idle_devices:
                continue
            candidates.append(payload)
        for candidate in candidates:
            if candidate not in self.net.interface_faults:
                return neighbor, candidate
        if candidates:
            return neighbor, candidates[0]
        return None

    def _probe(
        self,
        a: tuple[str, tuple],
        b: tuple[str, tuple],
        path_switches: tuple[CircuitSwitch, ...],
    ) -> bool:
        """Ground-truth outcome of a configured connectivity test.

        The controller configures the circuits, the two interfaces
        exchange test messages; the exchange succeeds iff both interfaces
        are fault-free and the circuit path is alive.  (The actual
        circuit configuration is transient — configure, test, restore —
        and only involves dark ports, so modelling its effect rather than
        mutating state keeps the production circuits untouched, which is
        also what the tests assert.)
        """
        if a in self.net.interface_faults or b in self.net.interface_faults:
            return False
        return all(cs.up for cs in path_switches)
