"""Software model of the small circuit switches ShareBackup is built from.

A circuit switch here is a ``(k/2+n+2) × (k/2+n+2)`` two-sided crossbar
(electrical crosspoint or 2D-MEMS optical — Table 2): physical-layer
device, no packet inspection, any *down-side* port can be internally
connected to any *up-side* port, and reconfiguration is near-instant
(70 ns crosspoint / 40 µs MEMS, Section 5.3).

Port naming:

* ``("d", i)`` — down-side device ports (hosts below a layer-1 switch,
  edge switches below a layer-2 switch, aggregation below layer-3);
  indices ``0..k/2-1`` carry regular devices, ``k/2..k/2+n-1`` backups.
* ``("u", i)`` — up-side device ports, same convention.
* ``("ds", s)`` / ``("us", s)``, ``s ∈ {0, 1}`` — the two side ports per
  side that chain the circuit switches of a layer into a ring for
  offline failure diagnosis (Figure 4).

The model tracks the *external* cabling (which device interface each
port is spliced to) separately from the *internal* configuration (which
port pairs are connected), because recovery only ever touches the
internal configuration — the paper's central trick is that no cable
moves when a backup switch comes online.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "CSPort",
    "Endpoint",
    "CircuitSwitch",
    "CircuitSwitchError",
    "CROSSPOINT_RECONFIG_SECONDS",
    "MEMS_RECONFIG_SECONDS",
]

#: Reconfiguration latencies from the paper (Section 5.3).
CROSSPOINT_RECONFIG_SECONDS: float = 70e-9
MEMS_RECONFIG_SECONDS: float = 40e-6

#: A port is a (kind, index) pair; see module docstring.
CSPort = tuple[str, int]

#: What a port's cable is spliced to: a device interface (device name +
#: interface key) or another circuit switch's side port.
Endpoint = tuple[str, tuple]


class CircuitSwitchError(Exception):
    """Illegal circuit operations (unknown port, double-connected port)."""


@dataclass
class CircuitSwitch:
    """One configurable crossbar.

    ``radix`` is the down-side device-port count (``k/2 + n``); two side
    ports per side are added on top, matching the paper's
    ``(k/2 + n + 2)``-port sizing.  ``up_radix`` lets the two sides
    differ, which the non-uniform failure-group extension (paper §6:
    "more backup on critical devices and less backup on unimportant
    ones") uses when adjacent layers carry different spare counts.
    """

    name: str
    radix: int
    reconfig_latency: float = CROSSPOINT_RECONFIG_SECONDS
    up: bool = True
    up_radix: Optional[int] = None

    _cables: dict[CSPort, Endpoint] = field(default_factory=dict, repr=False)
    _mapping: dict[CSPort, CSPort] = field(default_factory=dict, repr=False)
    reconfigurations: int = 0
    #: Crosspoints that can no longer move (hardware fault): any
    #: reconfiguration touching one of these ports fails.  Chaos
    #: injection sets this; a reboot does *not* clear it.
    stuck_ports: set[CSPort] = field(default_factory=set, repr=False)
    #: Optional chaos hook consulted once per reconfiguration request,
    #: before anything is applied.  It may raise
    #: :class:`CircuitSwitchError` (a transient reconfiguration failure)
    #: or flip ``self.up`` to False (a crash mid-recovery).
    fault_injector: Optional[Callable[["CircuitSwitch", dict], None]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.up_radix is None:
            self.up_radix = self.radix

    # ------------------------------------------------------------------
    # port inventory
    # ------------------------------------------------------------------

    def ports(self) -> list[CSPort]:
        device = [("d", i) for i in range(self.radix)] + [
            ("u", i) for i in range(self.up_radix)
        ]
        side = [("ds", 0), ("ds", 1), ("us", 0), ("us", 1)]
        return device + side

    def _check_port(self, port: CSPort) -> None:
        kind, index = port
        if kind == "d":
            if not 0 <= index < self.radix:
                raise CircuitSwitchError(f"{self.name}: no port {port}")
        elif kind == "u":
            if not 0 <= index < self.up_radix:
                raise CircuitSwitchError(f"{self.name}: no port {port}")
        elif kind in ("ds", "us"):
            if index not in (0, 1):
                raise CircuitSwitchError(f"{self.name}: no side port {port}")
        else:
            raise CircuitSwitchError(f"{self.name}: bad port kind {port}")

    @property
    def ports_per_side(self) -> int:
        """The paper's headline port count: ``k/2 + n + 2`` (larger side)."""
        return max(self.radix, self.up_radix) + 2

    # ------------------------------------------------------------------
    # external cabling (set once at build time)
    # ------------------------------------------------------------------

    def splice(self, port: CSPort, endpoint: Endpoint) -> None:
        """Attach the cable on ``port`` to ``endpoint`` (build-time only)."""
        self._check_port(port)
        if port in self._cables:
            raise CircuitSwitchError(f"{self.name}: port {port} already cabled")
        self._cables[port] = endpoint

    def cable(self, port: CSPort) -> Optional[Endpoint]:
        return self._cables.get(port)

    def port_of_endpoint(self, endpoint: Endpoint) -> Optional[CSPort]:
        for port, cabled in self._cables.items():
            if cabled == endpoint:
                return port
        return None

    def ports_of_device(self, device: str) -> list[CSPort]:
        """Every port whose cable lands on ``device`` (any interface)."""
        return [
            port
            for port, (kind, payload) in self._cables.items()
            if kind == "device" and payload[0] == device
        ]

    # ------------------------------------------------------------------
    # internal configuration
    # ------------------------------------------------------------------

    def connect(self, a: CSPort, b: CSPort) -> None:
        """Create the internal circuit ``a ↔ b`` (both must be free)."""
        self._check_port(a)
        self._check_port(b)
        if a == b:
            raise CircuitSwitchError(f"{self.name}: cannot loop port {a} to itself")
        for port in (a, b):
            if port in self._mapping:
                raise CircuitSwitchError(
                    f"{self.name}: port {port} already connected to "
                    f"{self._mapping[port]}"
                )
        self._mapping[a] = b
        self._mapping[b] = a

    def disconnect(self, port: CSPort) -> None:
        """Tear down the circuit on ``port`` (idempotent)."""
        peer = self._mapping.pop(port, None)
        if peer is not None:
            self._mapping.pop(peer, None)

    def peer(self, port: CSPort) -> Optional[CSPort]:
        """The port internally connected to ``port``, if any."""
        self._check_port(port)
        return self._mapping.get(port)

    def validate_reconfigure(self, changes: dict[CSPort, Optional[CSPort]]) -> None:
        """Raise exactly as :meth:`reconfigure` would, changing nothing.

        This is the *prepare* half of the controller's two-phase failover:
        every circuit switch of a failure group is validated before any of
        them is touched, so a stuck crosspoint, a down switch, or an
        injected transient fault aborts the whole failover cleanly instead
        of leaving the group half rewired.  The chaos fault injector is
        consulted here (once per reconfiguration request).
        """
        if not self.up:
            raise CircuitSwitchError(f"{self.name} is down; cannot reconfigure")
        for port, peer in changes.items():
            self._check_port(port)
            if peer is not None:
                self._check_port(peer)
        if self.fault_injector is not None:
            self.fault_injector(self, dict(changes))
            if not self.up:
                raise CircuitSwitchError(
                    f"{self.name} went down during reconfiguration"
                )
        touched = set(changes) | {p for p in changes.values() if p is not None}
        stuck = sorted(touched & self.stuck_ports)
        if stuck:
            raise CircuitSwitchError(
                f"{self.name}: crosspoint stuck at port(s) {stuck}"
            )

    def crash(self) -> None:
        """Power loss: the switch goes down and its configuration is wiped
        (a rebooted circuit switch must re-learn its intent from the
        controller — paper §5.1)."""
        self.up = False
        self._mapping.clear()

    def reconfigure(
        self,
        changes: dict[CSPort, Optional[CSPort]],
        preflighted: bool = False,
    ) -> float:
        """Apply a batch of circuit changes atomically; returns latency.

        ``{port: new_peer}`` — ``None`` tears the port's circuit down.
        Every mentioned port is first disconnected, then the new pairs are
        made, so swaps need no careful ordering by the caller.

        ``preflighted=True`` skips :meth:`validate_reconfigure` — for
        callers (the two-phase failover) that just validated the batch and
        must not consult the fault injector a second time.
        """
        if preflighted:
            if not self.up:
                raise CircuitSwitchError(f"{self.name} is down; cannot reconfigure")
        else:
            self.validate_reconfigure(changes)
        for port in list(changes):
            self._check_port(port)
            self.disconnect(port)
            peer = changes[port]
            if peer is not None:
                self.disconnect(peer)
        for port, peer in changes.items():
            if peer is not None and self._mapping.get(port) != peer:
                self.connect(port, peer)
        self.reconfigurations += 1
        return self.reconfig_latency

    def mapping(self) -> dict[CSPort, CSPort]:
        """A copy of the current internal configuration."""
        return dict(self._mapping)

    # ------------------------------------------------------------------

    def traverse(self, port: CSPort) -> Optional[Endpoint]:
        """Follow a signal entering at ``port``: internal circuit, then the
        cable on the far port.  ``None`` when the port is unconnected or
        the far port uncabled (light stops here)."""
        if not self.up:
            return None
        peer = self.peer(port)
        if peer is None:
            return None
        return self._cables.get(peer)

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        return (
            f"<CircuitSwitch {self.name} radix={self.radix} "
            f"circuits={len(self._mapping) // 2}{state}>"
        )
